"""The cluster router: shards x replicas behind one scheduler-shaped facade.

One :class:`GraphCluster` partitions a graph into component-disjoint
shards (:mod:`repro.cluster.partition`) and serves each through a
transport-agnostic :class:`~repro.cluster.backends.ShardBackend`
(:mod:`repro.cluster.backends`):

* ``backend="thread"`` (the default) keeps every shard's replica group
  in this process -- R :class:`~repro.db.GraphDB` sessions each behind a
  :class:`~repro.server.SharingScheduler`, the PR-4 deployment;
* ``backend="process"`` spawns one worker process per shard
  (:mod:`repro.cluster.worker`) and fans requests out over the JSON-lines
  protocol through pooled clients, so CPU-bound RTC evaluation runs on
  real cores instead of time-slicing one GIL.

On top of the backends the router implements the same *scheduler
surface* the :class:`~repro.server.QueryServer` front end drives
(``start`` / ``stop`` / ``submit`` / ``submit_update`` / ``stats``), so
:class:`ClusterRouter` is a thin :class:`~repro.server.QueryServer`
subclass speaking the existing JSON-lines protocol -- the
:class:`~repro.server.Client` needs no changes at all, and both backends
serve it identically.

Routing
-------
* **Queries fan out to shards and the pair-sets union.**  Over a
  component-disjoint partition the per-shard answers are disjoint and
  their union is exactly the single-session answer.  Shards whose label
  alphabet is disjoint from the query's are pruned
  (federated-SPARQL-style source selection); nullable queries are never
  pruned, because every shard contributes its reflexive pairs.
* **Edge-cut partitions activate the boundary join.**  When the
  partition's cut relation holds an edge whose label occurs in the
  query, the union is no longer the answer: satisfying paths may cross
  shards.  The router then runs a semi-naive join-until-fixpoint --
  each shard answers *partial* paths as ``(start, vertex, state)``
  triples at its boundary vertices
  (:func:`repro.rpq.partial.eval_partial_rpq`), the router advances
  them over the cut-edge relation with
  :class:`repro.relalg.BoundaryJoin`, and re-dispatches the arrivals to
  the owning shards until no new traversal state appears.  Queries
  whose alphabet misses every cut label keep the plain union path: no
  satisfying path can traverse a cut edge, so per-shard answers stay
  disjoint and complete.
* **Replica picking is body-affine** and happens *inside* the backend:
  a query's canonical closure-body key hashes to one replica per shard,
  so each replica's RTC cache serves a stable subset of closure bodies
  and stays hot; closure-free queries fall back to the least-loaded
  replica.  (In process mode the worker's backend does the picking; the
  affinity property is identical.)
* **Updates broadcast drain-then-apply.**  An edge change routes to the
  shard owning its endpoints (new vertices are assigned on first
  contact) and the owning backend applies it through *every* replica --
  each drains its in-flight batches, applies on its own graph copy, and
  drops its caches.  The other shards keep serving with hot caches
  throughout.  An edge whose endpoints live on two *different* shards
  belongs to no shard subgraph: it is recorded in (or removed from) the
  partition's cut relation at the router, atomically with the rest of
  the batch, and the boundary join picks it up on the next query.

The routing decision (closure-key extraction, a DNF walk) is memoised by
query text, so a serving workload's repeated queries route in O(1).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from os import PathLike
from pathlib import Path

from repro.cluster.backends import (
    InProcessBackend,
    ProcessBackend,
    ShardBackend,
    ShardReplica,
    aggregate_scheduler_stats,
    merge_futures,
)
from repro.bitset import PairBitmap, VertexInterner, alphabet_reachable_mask
from repro.cluster.partition import GraphPartition, partition_graph
from repro.core.cache import make_key_function
from repro.errors import (
    ClusterError,
    DeadlineExpiredError,
    GraphError,
    ReproError,
    ServerError,
    StorageError,
)
from repro.graph.io import load_edge_list
from repro.graph.multigraph import LabeledMultigraph
from repro.obs import get_registry
from repro.regex.ast import RegexNode
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse
from repro.relalg import BoundaryJoin, Relation, Scan
from repro.rpq.partial import CUT_COLUMNS, PARTIAL_COLUMNS
from repro.server import protocol
from repro.server.scheduler import closure_group_key
from repro.server.service import QueryServer, ServerConfig
from repro.storage.snapshot import check_persistable_edge
from repro.storage.wal import WriteAheadLog

__all__ = ["ClusterConfig", "GraphCluster", "ClusterRouter", "ShardReplica"]

#: Routing memo bound: past this many distinct query texts the memo is
#: dropped wholesale (serving workloads repeat a small query set).
_ROUTE_MEMO_LIMIT = 4096

#: The shard-backend transports a cluster can be built on.
BACKENDS = ("thread", "process")

# Router-side observability: the boundary join is the one engine phase
# that runs *at the router* (everything else is per-shard and publishes
# from the worker's process), so its metrics live here.
_join_rounds_total = get_registry().counter(
    "repro_join_rounds_total",
    "Boundary-join shard rounds run at the router.",
)
_join_cache_hits_total = get_registry().counter(
    "repro_join_cache_hits_total",
    "Boundary-join queries answered from the router's join cache.",
)
_phase_seconds = get_registry().counter(
    "repro_phase_seconds_total",
    "Wall seconds spent per engine/storage phase.",
    labels=("phase",),
)


@dataclass
class ClusterConfig:
    """Topology, transport and per-replica scheduler tunables."""

    shards: int = 4
    replicas: int = 1
    #: Worker threads *per replica scheduler*.
    workers: int = 2
    max_queue: int = 256
    batch_window: float = 0.005
    max_batch: int = 64
    engine_kwargs: dict = field(default_factory=dict)
    #: Shard transport: ``"thread"`` (in-process replica groups) or
    #: ``"process"`` (one worker process per shard; see
    #: :mod:`repro.cluster.backends`).
    backend: str = "thread"
    #: Process mode: pooled connections (= concurrent requests) per shard.
    pool_size: int = 8
    #: Process mode: directory for per-shard worker logs (None = no logs).
    worker_log_dir: str | PathLike | None = None
    #: Process mode: optional picklable ``loader(shard_id) -> graph``
    #: shipping shard graphs without an edge-list dump (required when the
    #: graph holds tokens the dump format cannot carry).  The loader must
    #: reproduce the exact shard subgraphs of this cluster's partition.
    shard_loader: object | None = None
    #: How :meth:`GraphCluster.open` partitions the graph:
    #: ``"component"`` (whole components, union merge), ``"edge-cut"``
    #: (balanced vertex ranges, boundary join over cut edges) or
    #: ``"auto"`` (component unless one component dominates).  See
    #: :func:`repro.cluster.partition.partition_graph`.
    partition_strategy: str = "component"
    #: Durable data directory (:mod:`repro.storage`).  Each shard gets
    #: ``<data_dir>/shard<N>`` (WAL + snapshots + RTC store, recovered on
    #: start) and the router keeps ``<data_dir>/router`` (vertex
    #: assignments, label supersets and cut edges accumulated by
    #: updates, replayed on start).  A restart over the same seed graph
    #: and the same data dir comes back with every acked update and
    #: every checkpointed closure.
    data_dir: str | PathLike | None = None
    #: Auto-checkpoint each shard after this many logged updates
    #: (None = checkpoints only via :meth:`GraphCluster.checkpoint`).
    checkpoint_every: int | None = None


class _MergeState:
    """Accumulator for one query's per-shard sub-futures.

    Shard answers are component-disjoint, so the merge is a pair-set
    union -- or, in counts-only mode (``want_pairs=False``), a plain
    sum: disjointness makes the sum of per-shard counts exactly the
    union's cardinality, and process shards can then skip serialising
    pair-sets nobody asked for.
    """

    __slots__ = (
        "lock",
        "expected",
        "done",
        "pairs",
        "count",
        "want_pairs",
        "elapsed",
        "error",
    )

    def __init__(self, expected: int, want_pairs: bool = True) -> None:
        self.lock = threading.Lock()
        self.expected = expected
        self.done = 0
        self.pairs: set = set()
        self.count = 0
        self.want_pairs = want_pairs
        self.elapsed = 0.0
        self.error: BaseException | None = None


class GraphCluster:
    """``shards x replicas`` sessions behind one scheduler-shaped facade.

    Construct over a ready :class:`~repro.cluster.GraphPartition` (or use
    :meth:`open` to load/partition in one step), then plug into a
    :class:`ClusterRouter` -- or drive ``submit`` / ``submit_update``
    directly for in-process use.  The shard transport is picked by
    ``config.backend``; everything above the backends (routing, pruning,
    merging, accounting) is transport-blind.
    """

    def __init__(
        self,
        partition: GraphPartition,
        engine: str = "rtc",
        config: ClusterConfig | None = None,
        start: bool = True,
    ) -> None:
        config = config or ClusterConfig()
        if config.replicas < 1:
            raise ClusterError(
                f"replicas must be >= 1, got {config.replicas}",
                code="cluster.topology",
            )
        if config.backend not in BACKENDS:
            raise ClusterError(
                f"unknown backend {config.backend!r}; expected one of "
                f"{', '.join(BACKENDS)}",
                code="cluster.unsupported",
            )
        self.partition = partition
        self.engine_name = engine.lower()
        self.config = config
        self.replicas = config.replicas
        self.backend_name = config.backend
        self._lock = threading.Lock()  # label sets, memo, edge estimates
        self._update_lock = threading.Lock()  # replica-consistent ordering
        self._backends: list[ShardBackend] = [
            self._make_backend(shard_id, shard_graph)
            for shard_id, shard_graph in enumerate(partition.shards)
        ]
        # Superset of each shard's label alphabet, used for pruning.
        # Only ever grows (updates add labels, removals leave them), so a
        # pruned shard provably cannot contribute to the query.
        self._labels: list[set] = [
            set(graph.labels()) for graph in partition.shards
        ]
        # Router-side durability: the routing state updates accumulate
        # (vertex assignments, label supersets, the cut relation) lives
        # above the shard WALs, so it gets its own append-only log,
        # replayed here -- before any request routes -- on every start.
        self._router_wal = None
        if config.data_dir is not None:
            self._recover_router_log(Path(config.data_dir) / "router")
        # Routing keys must agree with the backends' cache keying, or
        # body-affine replica picking hashes on different keys than the
        # caches share on.  Thread backends expose their live cache
        # mode's key function; process workers derive the same function
        # from the same engine_kwargs, so the kwargs fallback matches.
        first = self._backends[0]
        if isinstance(first, InProcessBackend):
            self._key_function = first.key_function
        else:
            self._key_function = make_key_function(
                config.engine_kwargs.get("cache_mode", "syntactic")
            )
        self._route_memo: dict[str, tuple] = {}
        # Queries answered at the router because every shard was pruned
        # (no label overlap anywhere); folded into the aggregate stats so
        # served traffic never disappears from the books.
        self._answered_without_fanout = 0
        # Boundary-join machinery (edge-cut partitions only): the join
        # loop blocks on shard rounds, so it runs on its own small
        # executor; results are cached by query text and invalidated by
        # the graph version counter every update bumps.
        self._join_executor: ThreadPoolExecutor | None = None
        self._join_cache: dict[str, tuple[int, set, float]] = {}
        self._graph_version = 0
        self._started = False
        self._stopped = False
        if start:
            self.start()

    def _make_backend(
        self, shard_id: int, shard_graph: LabeledMultigraph
    ) -> ShardBackend:
        config = self.config
        common = dict(
            engine=self.engine_name,
            replicas=config.replicas,
            workers=config.workers,
            max_queue=config.max_queue,
            batch_window=config.batch_window,
            max_batch=config.max_batch,
            engine_kwargs=config.engine_kwargs,
            start=False,
        )
        # Each shard owns <data_dir>/shard<N>; the seed graph is passed
        # alongside and ignored whenever the directory already holds
        # committed state (the backend/worker recovers instead).
        shard_dir = None
        if config.data_dir is not None:
            shard_dir = str(Path(config.data_dir) / f"shard{shard_id}")
        if config.backend == "thread":
            return InProcessBackend(
                shard_id,
                shard_graph,
                storage_dir=shard_dir,
                checkpoint_every=config.checkpoint_every,
                **common,
            )
        loader = None
        if config.shard_loader is not None:
            from functools import partial

            loader = partial(config.shard_loader, shard_id)
        log_path = None
        if config.worker_log_dir is not None:
            log_dir = Path(config.worker_log_dir)
            log_dir.mkdir(parents=True, exist_ok=True)
            log_path = str(log_dir / f"shard{shard_id}.log")
        return ProcessBackend(
            shard_id,
            shard_graph,
            pool_size=config.pool_size,
            loader=loader,
            log_path=log_path,
            data_dir=shard_dir,
            checkpoint_every=config.checkpoint_every,
            **common,
        )

    def _recover_router_log(self, router_dir: Path) -> None:
        """Open (and replay) the router's own durability log.

        Shard WALs make the *graphs* recoverable; what they cannot carry
        is the routing state the router accumulated from updates --
        which shard owns each update-assigned vertex, which labels each
        shard's superset grew, and which cross-shard edges entered (or
        left) the cut relation.  Those are appended here as ``route``
        records, one per committed update batch, and replayed over the
        freshly re-partitioned seed graph before any request routes.
        The log never compacts: route records are tiny, and a compaction
        point would need a consistent cross-shard cut of all WALs.

        Replay leans on the partition's idempotent primitives:
        ``assign`` is first-writer-wins (replay order == commit order),
        label sets only grow, and cut adds are guarded so a record that
        overlaps re-derived seed state cannot raise.
        """
        router_dir.mkdir(parents=True, exist_ok=True)
        self._router_wal = WriteAheadLog(
            router_dir / "routing.jsonl", start_lsn=0
        )
        for record in self._router_wal.records():
            if record.get("op") != "route":
                raise StorageError(
                    f"unknown router log record op {record.get('op')!r} "
                    f"at lsn {record.get('lsn')}"
                )
            for vertex, shard in record.get("assign", ()):
                self.partition.assign(vertex, shard)
            for shard, labels in record.get("labels", ()):
                self._labels[shard] |= set(labels)
            for source, label, target in record.get("cut_add", ()):
                if not self.partition.has_cut(source, label, target):
                    self.partition.record_cut(source, label, target)
            for source, label, target in record.get("cut_discard", ()):
                self.partition.discard_cut(source, label, target)

    # -- construction ----------------------------------------------------
    @classmethod
    def open(
        cls,
        source: LabeledMultigraph | str | PathLike | object,
        engine: str = "rtc",
        config: ClusterConfig | None = None,
        start: bool = True,
    ) -> "GraphCluster":
        """Load a graph (object, edge-list path, or edge triples), partition
        it into ``config.shards`` shards (``config.partition_strategy``
        picks how), and bring the cluster up."""
        config = config or ClusterConfig()
        if isinstance(source, LabeledMultigraph):
            graph = source
        elif isinstance(source, (str, PathLike, Path)):
            graph = load_edge_list(source)
        else:
            graph = LabeledMultigraph.from_edges(source)
        partition = partition_graph(
            graph, config.shards, strategy=config.partition_strategy
        )
        return cls(partition, engine=engine, config=config, start=start)

    @property
    def num_shards(self) -> int:
        return len(self._backends)

    def backend(self, shard: int) -> ShardBackend:
        """Direct access to one shard backend (tests and diagnostics)."""
        return self._backends[shard]

    def replica(self, shard: int, replica: int = 0) -> ShardReplica:
        """Direct access to one in-process replica (tests, diagnostics).

        Only meaningful on the thread backend; process-mode replicas
        live in the worker and are reachable through the protocol only.
        """
        backend = self._backends[shard]
        if not isinstance(backend, InProcessBackend):
            raise ClusterError(
                f"shard {shard} runs on the {self.backend_name!r} backend; "
                "its replicas are not in this process",
                code="cluster.unsupported",
                shards=(shard,),
            )
        return backend.replicas[replica]

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Start every shard backend (idempotent).

        Process workers spawn concurrently (``start`` is non-blocking)
        and are then awaited, so an N-shard cluster boots in roughly one
        worker's start-up time, not N of them.  If any shard fails to
        come up, every already-started backend is closed before the
        error propagates -- a failed constructor must not leave orphan
        worker processes running.
        """
        if self._started or self._stopped:
            return
        self._started = True
        try:
            for backend in self._backends:
                backend.start()
            for backend in self._backends:
                backend.wait_ready()
        except BaseException:
            self.stop()
            raise

    def stop(self) -> None:
        """Drain and close every shard backend."""
        if self._stopped:
            return
        self._stopped = True
        with self._lock:
            executor = self._join_executor
            self._join_executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        for backend in self._backends:
            backend.close()
        if self._router_wal is not None:
            self._router_wal.close()

    def checkpoint(self) -> list[dict]:
        """Commit a checkpoint on every shard backend; per-shard results.

        Each shard drains its replicas, rolls its snapshot + RTC store
        forward to its current LSN and compacts its WAL (see
        :meth:`repro.storage.ShardStorage.checkpoint`).  Shards
        checkpoint independently -- there is no cross-shard barrier, and
        none is needed: each shard's manifest covers exactly its own
        acked updates, and the router log replays against whatever LSN
        each shard recovered to.  Raises
        :class:`~repro.errors.ClusterError` (``cluster.unsupported``)
        when the cluster runs without a data dir.
        """
        if self._stopped:
            raise self._closed_error()
        return [backend.checkpoint() for backend in self._backends]

    # -- routing ---------------------------------------------------------
    def _route_info(self, text: str, node: RegexNode) -> tuple:
        """``(closure_key, labels, nullable, nfa)`` of a query, memoised.

        The compiled automaton rides along for the boundary-join path
        (the router advances shard-reported states over cut edges with
        the *same* state numbering the shards use --
        :func:`~repro.regex.nfa.compile_nfa` is deterministic per text).
        """
        with self._lock:
            info = self._route_memo.get(text)
        if info is not None:
            return info
        key = closure_group_key(node, self._key_function)
        nfa = compile_nfa(node)
        info = (key, frozenset(nfa.labels), nfa.nullable, nfa)
        with self._lock:
            if len(self._route_memo) >= _ROUTE_MEMO_LIMIT:
                self._route_memo.clear()
            self._route_memo[text] = info
        return info

    def _target_shards(self, labels: frozenset, nullable: bool) -> list[int]:
        """Shards that can contribute to a query (source selection).

        A non-nullable query's every satisfying path uses at least one
        edge, and all its edge labels come from the query alphabet -- so
        a shard sharing no label with the query answers with the empty
        set and is skipped.  Nullable queries contribute ``(v, v)`` for
        every vertex of every shard and are never pruned.
        """
        if nullable:
            return list(range(self.num_shards))
        with self._lock:
            return [
                shard
                for shard in range(self.num_shards)
                if not self._labels[shard].isdisjoint(labels)
            ]

    # -- queries ---------------------------------------------------------
    def submit(
        self,
        text: str,
        node: RegexNode | None = None,
        timeout: float | None = None,
        want_pairs: bool = True,
        trace: tuple | None = None,
    ) -> Future:
        """Admit one query cluster-wide; future of ``(pairs, elapsed)``.

        Fans out to every contributing shard backend and unions the
        pair-sets; ``elapsed`` is the slowest shard's engine time.
        With ``want_pairs=False`` the future resolves to
        ``(count, elapsed)`` instead and process shards answer with
        counts only, skipping the pair-set wire serialisation (the
        component-disjoint partition makes per-shard counts sum exactly
        to the union's size).  Admission is all-or-nothing: if any shard
        rejects, the already-admitted sub-queries are cancelled and the
        :class:`~repro.errors.AdmissionError` propagates.  Any shard
        failure (evaluation error, expired deadline) fails the whole
        query with that error.

        When the partition's cut relation holds an edge whose label is
        in the query alphabet, the union is not the answer and the
        boundary-join path runs instead (see the module docstring); it
        materialises the full pair union at the router, so counts-only
        requests are answered as ``len`` of that union -- per-shard
        counts may overlap across a cut and must not be summed.

        ``trace`` is the ``(tracer, parent_span_id)`` of this query's
        span when the request is traced: the router opens one ``shard``
        span per fan-out target (finished when that shard answers) and
        propagates the trace into each backend, so remote workers'
        span subtrees come back stitched under the right parent.
        """
        if self._stopped:
            raise self._closed_error()
        if node is None:
            node = parse(text)
        key, labels, nullable, nfa = self._route_info(text, node)

        if self.partition.has_cuts:
            relevant = [
                edge
                for edge in self.partition.cut_relation()
                if edge[1] in labels
            ]
            if relevant:
                return self._submit_boundary_join(
                    text, node, nfa, labels, nullable, relevant,
                    timeout=timeout, want_pairs=want_pairs, trace=trace,
                )

        targets = self._target_shards(labels, nullable)

        parent: Future = Future()
        if not targets:
            with self._lock:
                self._answered_without_fanout += 1
            parent.set_running_or_notify_cancel()
            parent.set_result((set() if want_pairs else 0, 0.0))
            return parent

        children: list[Future] = []
        try:
            for shard in targets:
                child_trace = None
                if trace is not None:
                    tracer, parent_id = trace
                    shard_span = tracer.begin(
                        "shard", parent=parent_id, shard=shard
                    )
                    child_trace = (tracer, shard_span.span_id)
                child = self._backends[shard].query(
                    text,
                    node,
                    key=key,
                    timeout=timeout,
                    want_pairs=want_pairs,
                    trace=child_trace,
                )
                if trace is not None:
                    child.add_done_callback(
                        lambda _future, tracer=tracer, span=shard_span: (
                            tracer.finish(span)
                        )
                    )
                children.append(child)
        except BaseException:
            # All-or-nothing admission: roll back what was admitted.
            for child in children:
                child.cancel()
            raise

        state = _MergeState(expected=len(children), want_pairs=want_pairs)
        for child in children:
            child.add_done_callback(
                lambda future, state=state, parent=parent: self._merge_child(
                    state, parent, future
                )
            )
        return parent

    def _merge_child(
        self, state: _MergeState, parent: Future, child: Future
    ) -> None:
        try:
            payload, elapsed = child.result()
        except (CancelledError, Exception) as error:  # noqa: BLE001  # repro: noqa[RPR701] -- fan-in callback: the first failure is stashed and delivered through the join future
            outcome: BaseException | None = error
        else:
            outcome = None
        with state.lock:
            if outcome is not None:
                if state.error is None:
                    state.error = outcome
            elif state.want_pairs:
                state.pairs |= payload
                if elapsed > state.elapsed:
                    state.elapsed = elapsed
            else:
                # Thread shards still hand over sets (free in-process);
                # process shards answer with bare counts.
                state.count += (
                    payload if isinstance(payload, int) else len(payload)
                )
                if elapsed > state.elapsed:
                    state.elapsed = elapsed
            state.done += 1
            finished = state.done == state.expected
        if not finished:
            return
        if not parent.set_running_or_notify_cancel():
            return  # the caller cancelled the aggregate; drop the result
        if state.error is not None:
            parent.set_exception(state.error)
        else:
            result = state.pairs if state.want_pairs else state.count
            parent.set_result((result, state.elapsed))

    # -- boundary join (edge-cut partitions) -----------------------------
    def _submit_boundary_join(
        self,
        text: str,
        node: RegexNode,
        nfa,
        labels: frozenset,
        nullable: bool,
        cuts: list[tuple],
        timeout: float | None,
        want_pairs: bool,
        trace: tuple | None = None,
    ) -> Future:
        """Admit one query on the boundary-join path; future of the
        same ``(pairs-or-count, elapsed)`` shape as :meth:`submit`."""
        with self._lock:
            cached = self._join_cache.get(text)
            version = self._graph_version
            if cached is not None and cached[0] == version:
                _version, pairs, elapsed = cached
                _join_cache_hits_total.inc()
                if trace is not None:
                    trace[0].record(
                        "join_cache_hit",
                        trace[1],
                        time.time(),  # repro: noqa[RPR601] -- span start is a wall-clock epoch (trace axis); the hit has zero duration
                        0.0,
                        version=version,
                        pairs=len(pairs),
                    )
                parent: Future = Future()
                parent.set_running_or_notify_cancel()
                parent.set_result(
                    (pairs.to_pairs() if want_pairs else pairs.count(), elapsed)
                )
                return parent
            if self._join_executor is None:
                self._join_executor = ThreadPoolExecutor(
                    max_workers=8, thread_name_prefix="repro-join"
                )
            executor = self._join_executor

        def run():
            pairs, elapsed = self._run_boundary_join(
                text, node, nfa, labels, nullable, cuts, timeout, version,
                trace=trace,
            )
            with self._lock:
                # Cache only results still describing the live graph: an
                # update that landed mid-join bumped the version.
                if self._graph_version == version:
                    self._join_cache[text] = (version, pairs, elapsed)
            # Materialise a fresh tuple set -- the cached bitmap stays
            # pristine, and counts-only callers never build tuples.
            return (pairs.to_pairs() if want_pairs else pairs.count(), elapsed)

        return executor.submit(run)

    def _run_boundary_join(
        self,
        text: str,
        node: RegexNode,
        nfa,
        labels: frozenset,
        nullable: bool,
        cuts: list[tuple],
        timeout: float | None,
        version: int,
        trace: tuple | None = None,
    ) -> tuple[PairBitmap, float]:
        """The semi-naive join-until-fixpoint over the cut-edge relation.

        Round 0 asks every contributing shard for its *initial* partial
        paths (local traversals from its own candidate starts); the
        router then alternates two phases until nothing new appears:

        * **expand** (router-local): advance every not-yet-expanded
          boundary triple over the cut relation with
          :class:`~repro.relalg.BoundaryJoin`, recording ``(start,
          end)`` whenever an accepting state is entered, and re-expand
          arrivals that land on another cut source (cut-cut chains)
          within the same phase;
        * **dispatch** (shard rounds): send arrivals the owning shard
          has not continued yet back as *frontier* triples; the shard
          traverses them locally and reports any new boundary touches.

        Triples live in a finite ``starts x vertices x states`` space
        and both the ``expanded`` and ``dispatched`` sets only grow, so
        the fixpoint terminates.  ``elapsed`` sums the slowest shard of
        each round (the critical path a real deployment would wait on).
        """
        deadline = None if timeout is None else time.monotonic() + timeout

        def remaining() -> float | None:
            if deadline is None:
                return None
            left = deadline - time.monotonic()
            if left <= 0:
                raise DeadlineExpiredError(
                    f"boundary join for {text!r} exceeded its {timeout}s "
                    "deadline"
                )
            return left

        cut_scan = Scan(Relation(CUT_COLUMNS, cuts), "Cuts")
        cut_sources = {edge[0] for edge in cuts}
        accepting = nfa.accepts
        shard_of = self.partition.shard_of
        # Boundary set per shard: the cut sources it owns -- the only
        # vertices whose visited triples the router can extend.
        boundary_by_shard: dict[int, set] = {}
        for source, _label, _target in cuts:
            shard = shard_of(source)
            if shard is not None:
                boundary_by_shard.setdefault(shard, set()).add(source)

        # Accepted pairs accumulate as bitmap rows over a router-local
        # interner: round unions are per-row ORs, and the join cache
        # stores the bitmap (counts answer via bit_count, tuple sets
        # materialise per caller).
        pairs = PairBitmap(interner=VertexInterner())
        rounds_elapsed = 0.0
        round_number = 0
        expanded: set = set()    # cut expansion ran for this triple
        dispatched: set = set()  # a shard locally continued this triple

        def run_round(frontiers: dict) -> set:
            """One shard round; unions accepts into ``pairs``, returns
            the reported boundary triples."""
            nonlocal rounds_elapsed, round_number
            budget = remaining()
            round_span = None
            if trace is not None:
                round_span = trace[0].begin(
                    "join_round",
                    parent=trace[1],
                    round=round_number,
                    shards=len(frontiers),
                    frontier=sum(
                        len(frontier) if frontier else 0
                        for frontier in frontiers.values()
                    ),
                )
            round_number += 1
            round_started = time.monotonic()
            try:
                children = {
                    shard: self._backends[shard].partial_query(
                        text,
                        node,
                        boundary=boundary_by_shard.get(shard, ()),
                        frontier=frontier,
                        timeout=budget,
                        trace=(
                            (trace[0], round_span.span_id)
                            if round_span is not None
                            else None
                        ),
                    )
                    for shard, frontier in frontiers.items()
                }
                rows: set = set()
                round_elapsed = 0.0
                for shard, child in sorted(children.items()):
                    accepts, shard_rows, elapsed = child.result(timeout=budget)
                    pairs.update_pairs(accepts)
                    rows.update(shard_rows)
                    round_elapsed = max(round_elapsed, elapsed)
                rounds_elapsed += round_elapsed
            except BaseException as error:
                if round_span is not None:
                    trace[0].finish(round_span, error=type(error).__name__)
                raise
            finally:
                _join_rounds_total.inc()
                _phase_seconds.inc(
                    time.monotonic() - round_started, phase="join"
                )
            if round_span is not None:
                trace[0].finish(round_span, rows=len(rows))
            return rows

        def absorb(rows: set) -> set:
            """Shard-reported rows: locally continued already, so mark
            dispatched; queue the ones at cut sources for expansion."""
            fresh = set()
            for triple in rows:
                dispatched.add(triple)
                if triple[1] in cut_sources and triple not in expanded:
                    fresh.add(triple)
            return fresh

        # A path may *begin* at a cut source: seed (u, u, s0) for every
        # start state.  Expansion-only -- the local continuation from a
        # start state is exactly what round 0 covers (or is provably
        # empty when the shard has no matching first-label edge).
        to_expand: set = set()
        for source in cut_sources:
            for state in nfa.start:
                triple = (source, source, state)
                dispatched.add(triple)
                to_expand.add(triple)

        targets = self._target_shards(labels, nullable)
        if targets:
            to_expand |= absorb(
                run_round({shard: None for shard in targets})
            )

        with self._lock:
            shard_labels = [set(label_set) for label_set in self._labels]

        while True:
            frontier_by_shard: dict[int, set] = {}
            while to_expand:
                expanded |= to_expand
                arrivals = BoundaryJoin(
                    Scan(Relation(PARTIAL_COLUMNS, to_expand), "P"),
                    cut_scan,
                    nfa,
                ).evaluate()
                to_expand = set()
                for triple in arrivals.rows:
                    start, vertex, state = triple
                    if state in accepting:
                        pairs.add_pair(start, vertex)
                    if vertex in cut_sources and triple not in expanded:
                        to_expand.add(triple)
                    if triple in dispatched:
                        continue
                    dispatched.add(triple)
                    shard = shard_of(vertex)
                    if shard is None:
                        continue  # cut targets are always owned; safety
                    if not nullable and shard_labels[shard].isdisjoint(labels):
                        continue  # local continuation provably empty
                    frontier_by_shard.setdefault(shard, set()).add(triple)
            if not frontier_by_shard:
                break
            to_expand = absorb(run_round(frontier_by_shard))

        return pairs, rounds_elapsed

    # -- updates ---------------------------------------------------------
    def submit_update(self, add=(), remove=(), trace: tuple | None = None) -> Future:
        """Admit a streaming edge change; future of ``None``.

        Each edge routes to the shard owning its endpoints; the owning
        backend then applies the change through **every** replica
        (drain-then-apply on each, caches dropped on each), so all
        copies converge before the future resolves.  Unaffected shards
        keep serving with hot caches.  Edges with brand-new endpoints
        are assigned to the currently smallest shard.  Edges whose
        endpoints live on two *different* shards belong to no shard
        subgraph: an add records the edge in the partition's cut
        relation (the boundary join serves it from the next query on),
        a remove deletes it from there; a remove of a cross-shard edge
        that was never recorded raises :class:`~repro.errors.ClusterError`
        (``cluster.unknown_edge``), and a duplicate cross-shard add
        raises :class:`~repro.errors.GraphError`, mirroring the
        multigraph's duplicate-edge contract.

        Routing is two-phase: every edge of the request is validated and
        routed *before* any partition state mutates or any backend sees
        the job, so a request rejected at routing time (unknown edges,
        duplicate cuts) leaves no phantom vertex assignments, label-set
        entries or cut-relation rows behind.  A request that routes but
        then fails to *apply* (e.g. a duplicate edge) does keep its
        routing state: assignments must commit before the
        (asynchronous) apply so that concurrent updates naming the same
        new vertices route to the same shard -- releasing them on
        failure could split a component across shards.  Backends admit
        updates with blocking semantics (replica queues never
        half-accept an update, which is what keeps the copies
        identical), so this call can wait for queue slots; drive it
        from a worker thread (the router runs it in an executor), not
        from a latency-sensitive loop.
        """
        if self._stopped:
            raise self._closed_error()
        add = [tuple(edge) for edge in add]
        remove = [tuple(edge) for edge in remove]
        if not add and not remove:
            return merge_futures([])
        if self._router_wal is not None:
            # Durable clusters refuse non-persistable edges up front --
            # the route-record append in phase 2 (and the shard WAL
            # appends behind it) must not be able to fail after the
            # routing state has committed.
            for source, label, target in [*add, *remove]:
                check_persistable_edge(source, label, target)

        with self._update_lock:
            # Phase 1: route and validate against committed + pending
            # state; raises before anything is mutated.
            by_shard: dict[int, tuple[list, list]] = {}
            pending_assign: dict[object, int] = {}
            pending_labels: dict[int, set] = {}
            cut_adds: list[tuple] = []
            cut_removes: list[tuple] = []

            def owners(source: object, target: object) -> tuple:
                source_shard = pending_assign.get(source)
                if source_shard is None:
                    source_shard = self.partition.shard_of(source)
                target_shard = pending_assign.get(target)
                if target_shard is None:
                    target_shard = self.partition.shard_of(target)
                return source_shard, target_shard

            for source, label, target in add:
                source_shard, target_shard = owners(source, target)
                if (
                    source_shard is not None
                    and target_shard is not None
                    and source_shard != target_shard
                ):
                    edge = (source, label, target)
                    if self.partition.has_cut(*edge) or edge in cut_adds:
                        raise GraphError(
                            f"duplicate cross-shard edge {source!r} "
                            f"-{label}-> {target!r}"
                        )
                    cut_adds.append(edge)
                    continue
                shard = (
                    source_shard if source_shard is not None else target_shard
                )
                if shard is None:
                    shard = self._smallest_shard()
                pending_assign.setdefault(source, shard)
                pending_assign.setdefault(target, shard)
                by_shard.setdefault(shard, ([], []))[0].append(
                    (source, label, target)
                )
                pending_labels.setdefault(shard, set()).add(label)
            for source, label, target in remove:
                source_shard, target_shard = owners(source, target)
                if source_shard is None and target_shard is None:
                    raise ClusterError(
                        f"cannot remove edge ({source!r}, {label!r}, "
                        f"{target!r}): neither endpoint is in the cluster",
                        code="cluster.unknown_edge",
                        detail=[source, label, target],
                    )
                if (
                    source_shard is not None
                    and target_shard is not None
                    and source_shard != target_shard
                ):
                    edge = (source, label, target)
                    if not self.partition.has_cut(*edge) or edge in cut_removes:
                        raise ClusterError(
                            f"cannot remove edge ({source!r}, {label!r}, "
                            f"{target!r}): it crosses shards "
                            f"{source_shard} and {target_shard} but is not "
                            "a recorded cross-shard edge",
                            code="cluster.unknown_edge",
                            shards=(source_shard, target_shard),
                            detail=[source, label, target],
                        )
                    cut_removes.append(edge)
                    continue
                shard = (
                    source_shard if source_shard is not None else target_shard
                )
                by_shard.setdefault(shard, ([], []))[1].append(
                    (source, label, target)
                )

            # Phase 2: commit routing state (vertex assignments, label
            # supersets, the cut relation), invalidate the boundary-join
            # cache, then hand each owning backend its slice.  Backends
            # admit with blocking semantics under this lock, so
            # concurrent updates reach every replica of every shard in
            # one global order.
            new_assigns = [
                [vertex, shard]
                for vertex, shard in pending_assign.items()
                if self.partition.shard_of(vertex) is None
            ]
            for vertex, shard in pending_assign.items():
                self.partition.assign(vertex, shard)
            for edge in cut_adds:
                self.partition.record_cut(*edge)
            for edge in cut_removes:
                self.partition.discard_cut(*edge)
            with self._lock:
                for shard, labels in pending_labels.items():
                    self._labels[shard] |= labels
                self._graph_version += 1
                self._join_cache.clear()
            if self._router_wal is not None and (
                new_assigns or pending_labels or cut_adds or cut_removes
            ):
                # Logged after the in-memory commit but before any shard
                # sees (and shard-logs) its slice, so a crash can lose
                # an unacked batch but never leaves a shard-logged edge
                # without its routing record.
                self._router_wal.append(
                    {
                        "op": "route",
                        "assign": new_assigns,
                        "labels": [
                            [shard, sorted(labels, key=str)]
                            for shard, labels in sorted(pending_labels.items())
                        ],
                        "cut_add": [list(edge) for edge in cut_adds],
                        "cut_discard": [list(edge) for edge in cut_removes],
                    }
                )
            children = []
            for shard, (adds, removes) in sorted(by_shard.items()):
                child_trace = None
                if trace is not None:
                    tracer, parent_id = trace
                    shard_span = tracer.begin(
                        "shard_update",
                        parent=parent_id,
                        shard=shard,
                        add=len(adds),
                        remove=len(removes),
                    )
                    child_trace = (tracer, shard_span.span_id)
                child = self._backends[shard].update(
                    add=adds, remove=removes, trace=child_trace
                )
                if trace is not None:
                    child.add_done_callback(
                        lambda _future, tracer=tracer, span=shard_span: (
                            tracer.finish(span)
                        )
                    )
                children.append(child)

        return merge_futures(children)

    def _smallest_shard(self) -> int:
        sizes = [backend.edge_count() for backend in self._backends]
        return sizes.index(min(sizes))

    @staticmethod
    def _closed_error() -> ServerError:
        error = ServerError("cluster is shutting down")
        error.code = "closed"
        return error

    # -- watchers / reachability -----------------------------------------
    def watch(self, body: str) -> str:
        """Attach an incremental watcher for ``body`` on every replica."""
        normalised = parse(body).to_string()
        for backend in self._backends:
            backend.watch(body)
        return normalised

    def reaches(self, body: str, source: object, target: object) -> bool:
        """Streaming reachability probe: ``(source, target) in (body+)_G``.

        Over a component-disjoint partition only ``source``'s shard can
        contain a path, so the probe routes there; unknown sources probe
        every shard (and come back False when the vertex exists
        nowhere).  When a cut edge carries one of the body's labels a
        path may cross shards; :meth:`_reaches_with_cuts` answers that
        case with shard-local probes and bitmap prefilters before
        resorting to any fan-out.
        """
        if self.partition.has_cuts:
            closure = f"({body})+"
            _key, labels, _nullable, _nfa = self._route_info(
                closure, parse(closure)
            )
            relevant_cuts = [
                edge
                for edge in self.partition.cut_relation()
                if edge[1] in labels
            ]
            if relevant_cuts:
                return self._reaches_with_cuts(
                    body, closure, labels, relevant_cuts, source, target
                )
        shard = self.partition.shard_of(source)
        if shard is not None:
            return self._backends[shard].reaches(body, source, target)
        return any(
            backend.reaches(body, source, target)
            for backend in self._backends
        )

    def _reaches_with_cuts(
        self,
        body: str,
        closure: str,
        labels: frozenset,
        cuts: list[tuple],
        source: object,
        target: object,
    ) -> bool:
        """The cut-relevant membership probe, cheapest evidence first.

        1. A shard subgraph is a subgraph of ``G``, so ``source``'s own
           shard answering yes settles it without any fan-out.
        2. A cross-shard path must *leave* through a cut edge whose
           source is forward-reachable from ``source`` inside its shard,
           and *arrive* through one whose target reaches ``target``
           inside its shard (re-entries always land on cut targets).
           Both tests are label-union sweeps of the shard graphs'
           bitmap adjacency rows (:func:`alphabet_reachable_mask`) --
           an over-approximation of the RPQ, hence sound to prune on.
           Prefilters need the live shard graph, so process backends
           (``shard_graph`` is None) skip them.
        3. Only when neither side rules the pair out does the probe pay
           for the full ``(body)+`` boundary-join evaluation (served
           from the join cache when warm).
        """
        source_shard = self.partition.shard_of(source)
        target_shard = self.partition.shard_of(target)
        if source_shard is None or target_shard is None:
            # Unknown endpoints: nothing can reach them; stay faithful
            # to the membership semantics via the closure itself.
            pairs, _elapsed = self.submit(closure).result()
            return (source, target) in pairs
        if self._backends[source_shard].reaches(body, source, target):
            return True
        shard_of = self.partition.shard_of
        graph = self._backends[source_shard].shard_graph
        if graph is not None:
            mask = alphabet_reachable_mask(graph, labels, [source])
            id_of = graph.interner.id_of
            if not any(
                cut_id is not None and mask >> cut_id & 1
                for cut_source, _label, _cut_target in cuts
                if shard_of(cut_source) == source_shard
                for cut_id in (id_of(cut_source),)
            ):
                # No relevant cut edge is reachable from ``source``: a
                # satisfying path could never leave the shard, and the
                # shard itself already said no.
                return False
        graph = self._backends[target_shard].shard_graph
        if graph is not None:
            mask = alphabet_reachable_mask(
                graph, labels, [target], reverse=True
            )
            id_of = graph.interner.id_of
            if not any(
                cut_id is not None and mask >> cut_id & 1
                for _cut_source, _label, cut_target in cuts
                if shard_of(cut_target) == target_shard
                for cut_id in (id_of(cut_target),)
            ):
                # No cut-edge arrival can reach ``target`` in-shard: a
                # cross-shard path cannot end at it.
                return (
                    source_shard == target_shard
                    and self._backends[source_shard].reaches(
                        body, source, target
                    )
                )
        pairs, _elapsed = self.submit(closure).result()
        return (source, target) in pairs

    # -- statistics ------------------------------------------------------
    def _shard_docs(self) -> list[dict]:
        """One structured stats document per shard backend.

        Fetch once and pass to :meth:`stats` / :meth:`session_stats` /
        :meth:`describe` when emitting all three -- on the process
        backend every document is a wire round trip.
        """
        return [backend.stats() for backend in self._backends]

    def stats(self, docs: list[dict] | None = None) -> dict:
        """Aggregate scheduler-shaped statistics (QueryServer-compatible).

        Counters sum across all replicas of all shards; latency
        percentiles are computed over the *pooled* reservoirs (not
        averaged per-replica percentiles); QPS is the sum of per-replica
        rates, since the replicas serve concurrently.
        """
        docs = docs if docs is not None else self._shard_docs()
        stats_list = [
            replica["scheduler"] for doc in docs for replica in doc["replicas"]
        ]
        latencies = [
            value for doc in docs for value in doc["latency_values"]
        ]
        aggregate = aggregate_scheduler_stats(stats_list, latencies)
        # Rejections the process backends issued locally (their bound
        # trips before the worker ever sees the request).
        aggregate["rejected"] += sum(
            doc.get("local_rejected", 0) for doc in docs
        )
        with self._lock:
            answered = self._answered_without_fanout
        # Router-answered queries count as admitted *and* completed, so
        # the conservation law (admitted == completed + expired + failed
        # + cancelled + updates) keeps describing what clients observed.
        aggregate["admitted"] += answered
        aggregate["completed"] += answered
        aggregate["answered_without_fanout"] = answered
        return aggregate

    def session_stats(self, docs: list[dict] | None = None) -> dict:
        """Aggregate session statistics (the ``stats`` verb's ``session``)."""
        docs = docs if docs is not None else self._shard_docs()
        engines = [
            replica["session"] for doc in docs for replica in doc["replicas"]
        ]
        watchers: set = set()
        for stats in engines:
            watchers.update(stats["watchers"])
        cuts = self.partition.cut_relation()
        with self._lock:  # _labels mutates under concurrent updates
            all_labels = set().union(*self._labels)
        # Cut edges live in no shard subgraph; fold them (and their
        # labels) back in so the cluster totals match a single session.
        all_labels |= {edge[1] for edge in cuts}
        return {
            "engine": self.engine_name,
            "graph": {
                "vertices": sum(doc["graph"]["vertices"] for doc in docs),
                "edges": sum(doc["graph"]["edges"] for doc in docs) + len(cuts),
                "labels": len(all_labels),
            },
            "queries_evaluated": sum(s["queries_evaluated"] for s in engines),
            "total_time": sum(s["total_time"] for s in engines),
            "shared_pairs": sum(s["shared_pairs"] for s in engines),
            "watchers": sorted(watchers),
        }

    def describe(self, docs: list[dict] | None = None) -> dict:
        """Topology plus per-shard replica summaries (``stats``' cluster doc)."""
        docs = docs if docs is not None else self._shard_docs()
        shards = []
        for doc in docs:
            replicas = []
            for replica_doc in doc["replicas"]:
                scheduler_stats = replica_doc["scheduler"]
                summary = {
                    "replica": replica_doc["replica"],
                    "completed": scheduler_stats["completed"],
                    "updates": scheduler_stats["updates"],
                    "in_flight": scheduler_stats["in_flight"],
                    "queue_depth": scheduler_stats["queue_depth"],
                }
                if "cache" in scheduler_stats:
                    summary["cache_hits"] = scheduler_stats["cache"]["hits"]
                    summary["cache_misses"] = scheduler_stats["cache"]["misses"]
                replicas.append(summary)
            entry = {
                "shard": doc["shard"],
                "vertices": doc["graph"]["vertices"],
                "edges": doc["graph"]["edges"],
                "labels": doc["graph"]["labels"],
                "replicas": replicas,
            }
            if "worker" in doc:
                entry["worker"] = doc["worker"]
            if "storage" in doc:
                entry["storage"] = doc["storage"]
            shards.append(entry)
        document = {
            "shards": self.num_shards,
            "replicas": self.replicas,
            "engine": self.engine_name,
            "backend": self.backend_name,
            "cut_edges": len(self.partition.cut_relation()),
            "per_shard": shards,
        }
        if self.config.data_dir is not None:
            document["storage"] = {
                "data_dir": str(self.config.data_dir),
                "router_lsn": (
                    self._router_wal.last_lsn
                    if self._router_wal is not None
                    else 0
                ),
                "checkpoint_every": self.config.checkpoint_every,
            }
        return document

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else (
            "running" if self._started else "created"
        )
        return (
            f"GraphCluster(shards={self.num_shards}, "
            f"replicas={self.replicas}, engine={self.engine_name!r}, "
            f"backend={self.backend_name!r}, {state})"
        )


class ClusterRouter(QueryServer):
    """The cluster's JSON-lines front end -- a :class:`QueryServer` whose
    scheduler is a whole :class:`GraphCluster`.

    The wire protocol, the :class:`~repro.server.Client`, admission
    errors and per-request deadlines are all inherited unchanged; only
    ``stats`` (cluster-wide aggregation plus topology), ``watch``
    (broadcast) and ``reaches`` (shard-routed) are specialised.
    """

    def __init__(
        self, cluster: GraphCluster, config: ServerConfig | None = None
    ) -> None:
        self.cluster = cluster
        # The cluster plays both roles: the scheduler surface (submit /
        # submit_update / stats) and the session surface the base
        # ``watch`` / ``reaches`` handlers drive through ``self.db``.
        super().__init__(db=cluster, config=config, scheduler=cluster)

    async def _op_query(self, request_id, request) -> dict:
        # Warm the routing memo off the event loop: _route_info walks
        # the query's DNF and compiles its NFA, which is exactly the
        # work the single-node scheduler defers to its dispatcher
        # thread.  The base handler then routes from the memo in O(1).
        queries = request.get("queries")
        if queries is None and isinstance(request.get("query"), str):
            queries = [request["query"]]
        if isinstance(queries, list) and queries and all(
            isinstance(query, str) for query in queries
        ):
            # Dict membership is GIL-atomic, so peeking without the
            # cluster lock is safe; a concurrent memo clear only costs
            # one on-loop recompute.  Already-memoised texts (the steady
            # state of a serving workload) skip the executor hop.
            missing = [
                text
                for text in queries
                if text not in self.cluster._route_memo
            ]
            if missing:
                def warm() -> None:
                    for text in missing:
                        try:
                            self.cluster._route_info(text, parse(text))
                        except ReproError:
                            # Warm-up only: the base handler re-routes
                            # and reports the real error to the client.
                            # Genuine bugs propagate.
                            return
                await self._in_executor(warm)
        return await super()._op_query(request_id, request)

    def _submit_query(self, text, node, timeout, include_pairs, trace=None):
        # Forward the client's pairs/counts intent: counts-only requests
        # let process shards answer without serialising pair-sets.  The
        # trace rides along so each fan-out target gets a ``shard`` span
        # and remote workers' subtrees stitch back under it.
        return self.cluster.submit(
            text, node, timeout=timeout, want_pairs=include_pairs, trace=trace
        )

    async def _op_update(self, request_id, request) -> dict:
        add = self._edge_list(request.get("add", ()), "add")
        remove = self._edge_list(request.get("remove", ()), "remove")
        if not add and not remove:
            raise protocol.ProtocolError(
                "'update' op needs 'add' and/or 'remove' edges"
            )
        tracer, parent, root_span, echo = self._begin_trace(request)
        started = time.monotonic()
        trace = (tracer, parent) if tracer is not None else None
        # submit_update admits to every replica with blocking semantics
        # (so the copies never diverge on a full queue) -- keep that
        # potential wait off the event loop.
        future = await self._in_executor(
            lambda: self.cluster.submit_update(
                add=add, remove=remove, trace=trace
            )
        )
        await asyncio.wrap_future(future)
        if tracer is None:
            return protocol.ok_response(
                request_id, added=len(add), removed=len(remove)
            )
        await self._finish_trace(
            tracer,
            root_span,
            [f"update(+{len(add)},-{len(remove)})"],
            started,
        )
        if not echo:
            return protocol.ok_response(
                request_id, added=len(add), removed=len(remove)
            )
        return protocol.ok_response(
            request_id,
            added=len(add),
            removed=len(remove),
            trace=tracer.to_wire(),
        )

    async def _op_stats(self, request_id, request) -> dict:
        def collect() -> dict:
            # One stats document per shard, fetched once -- on the
            # process backend each document is a wire round trip.
            docs = self.cluster._shard_docs()
            return {
                "scheduler": self.cluster.stats(docs),
                "session": self.cluster.session_stats(docs),
                "cluster": self.cluster.describe(docs),
            }

        stats = await self._in_executor(collect)
        stats["server"] = {
            "address": list(self.address),
            "connections": self._connections,
            "version": protocol.PROTOCOL_VERSION,
        }
        return protocol.ok_response(request_id, stats=stats)

    # ``watch`` and ``reaches`` are inherited: the base handlers call
    # self.db.watch / self.db.reaches, and GraphCluster implements both
    # with GraphDB's signatures (broadcast / shard-routed).
