"""The sharded, replicated serving layer over the PR-3 substrate.

One :class:`GraphCluster` owns ``shards x replicas`` independent
:class:`~repro.db.GraphDB` sessions, each fronted by its own
:class:`~repro.server.SharingScheduler` (worker pool, micro-batching,
admission control) -- the single-node serving stack, instantiated once
per replica.  On top of that it implements the same *scheduler surface*
the :class:`~repro.server.QueryServer` front end drives (``start`` /
``stop`` / ``submit`` / ``submit_update`` / ``stats``), so
:class:`ClusterRouter` is a thin :class:`~repro.server.QueryServer`
subclass speaking the existing JSON-lines protocol -- the
:class:`~repro.server.Client` needs no changes at all.

Routing
-------
* **Queries fan out to shards and the pair-sets union.**  The partition
  is component-disjoint (:mod:`repro.cluster.partition`), so per-shard
  answers are disjoint and their union is exactly the single-session
  answer.  Shards whose label alphabet is disjoint from the query's are
  pruned (federated-SPARQL-style source selection); nullable queries are
  never pruned, because every shard contributes its reflexive pairs.
* **Replica picking is body-affine.**  A query's canonical closure-body
  key (the same :func:`~repro.server.scheduler.closure_group_key` the
  scheduler batches by) hashes to one replica per shard, so each
  replica's RTC cache serves a stable subset of closure bodies and stays
  hot; closure-free queries fall back to the least-loaded replica.
* **Updates broadcast drain-then-apply.**  An edge change routes to the
  shard owning its endpoints (new vertices are assigned on first
  contact; cross-shard edges raise
  :class:`~repro.errors.ClusterError`) and is applied through *every*
  replica's scheduler -- each drains its in-flight batches, applies on
  its own graph copy, and drops its caches.  The other shards keep
  serving with hot caches throughout, which is the cluster's headline
  win over a single session under a streaming-update load.

The routing decision (closure-key extraction, a DNF walk) is memoised by
query text, so a serving workload's repeated queries route in O(1).
"""

from __future__ import annotations

import asyncio
import threading
import zlib
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass, field
from os import PathLike
from pathlib import Path

from repro.cluster.partition import GraphPartition, partition_graph
from repro.core.cache import make_key_function
from repro.db.session import GraphDB
from repro.errors import ClusterError, ServerError
from repro.graph.io import load_edge_list
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import RegexNode
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse
from repro.server import protocol
from repro.server.metrics import percentile
from repro.server.scheduler import SharingScheduler, closure_group_key
from repro.server.service import QueryServer, ServerConfig

__all__ = ["ClusterConfig", "GraphCluster", "ClusterRouter", "ShardReplica"]

#: Routing memo bound: past this many distinct query texts the memo is
#: dropped wholesale (serving workloads repeat a small query set).
_ROUTE_MEMO_LIMIT = 4096


@dataclass
class ClusterConfig:
    """Topology and per-replica scheduler tunables of one cluster."""

    shards: int = 4
    replicas: int = 1
    #: Worker threads *per replica scheduler*.
    workers: int = 2
    max_queue: int = 256
    batch_window: float = 0.005
    max_batch: int = 64
    engine_kwargs: dict = field(default_factory=dict)


@dataclass
class ShardReplica:
    """One replica: its own session, scheduler, and load counter."""

    shard_id: int
    replica_id: int
    db: GraphDB
    scheduler: SharingScheduler
    in_flight: int = 0

    @property
    def name(self) -> str:
        return f"shard{self.shard_id}/replica{self.replica_id}"


class _MergeState:
    """Accumulator for one query's per-shard sub-futures."""

    __slots__ = ("lock", "expected", "done", "pairs", "elapsed", "error")

    def __init__(self, expected: int) -> None:
        self.lock = threading.Lock()
        self.expected = expected
        self.done = 0
        self.pairs: set = set()
        self.elapsed = 0.0
        self.error: BaseException | None = None


class GraphCluster:
    """``shards x replicas`` sessions behind one scheduler-shaped facade.

    Construct over a ready :class:`~repro.cluster.GraphPartition` (or use
    :meth:`open` to load/partition in one step), then plug into a
    :class:`ClusterRouter` -- or drive ``submit`` / ``submit_update``
    directly for in-process use.
    """

    def __init__(
        self,
        partition: GraphPartition,
        engine: str = "rtc",
        config: ClusterConfig | None = None,
        start: bool = True,
    ) -> None:
        config = config or ClusterConfig()
        if config.replicas < 1:
            raise ClusterError(f"replicas must be >= 1, got {config.replicas}")
        self.partition = partition
        self.engine_name = engine.lower()
        self.config = config
        self.replicas = config.replicas
        self._lock = threading.Lock()  # replica loads, label sets, memo
        self._update_lock = threading.Lock()  # replica-consistent ordering
        self._shards: list[list[ShardReplica]] = []
        for shard_id, shard_graph in enumerate(partition.shards):
            group = []
            for replica_id in range(config.replicas):
                graph = shard_graph if replica_id == 0 else shard_graph.copy()
                db = GraphDB.open(graph, engine=engine, **config.engine_kwargs)
                scheduler = SharingScheduler(
                    db,
                    workers=config.workers,
                    max_queue=config.max_queue,
                    batch_window=config.batch_window,
                    max_batch=config.max_batch,
                    engine_kwargs=config.engine_kwargs,
                    start=False,
                )
                group.append(ShardReplica(shard_id, replica_id, db, scheduler))
            self._shards.append(group)
        # Superset of each shard's label alphabet, used for pruning.
        # Only ever grows (updates add labels, removals leave them), so a
        # pruned shard provably cannot contribute to the query.
        self._labels: list[set] = [
            set(graph.labels()) for graph in partition.shards
        ]
        reference = self._shards[0][0].scheduler.shared_cache
        self._key_function = make_key_function(
            reference.mode if reference is not None else "syntactic"
        )
        self._route_memo: dict[str, tuple[str, frozenset, bool]] = {}
        # Queries answered at the router because every shard was pruned
        # (no label overlap anywhere); folded into the aggregate stats so
        # served traffic never disappears from the books.
        self._answered_without_fanout = 0
        self._started = False
        self._stopped = False
        if start:
            self.start()

    # -- construction ----------------------------------------------------
    @classmethod
    def open(
        cls,
        source: LabeledMultigraph | str | PathLike | object,
        engine: str = "rtc",
        config: ClusterConfig | None = None,
        start: bool = True,
    ) -> "GraphCluster":
        """Load a graph (object, edge-list path, or edge triples), partition
        it into ``config.shards`` shards, and bring the cluster up."""
        config = config or ClusterConfig()
        if isinstance(source, LabeledMultigraph):
            graph = source
        elif isinstance(source, (str, PathLike, Path)):
            graph = load_edge_list(source)
        else:
            graph = LabeledMultigraph.from_edges(source)
        partition = partition_graph(graph, config.shards)
        return cls(partition, engine=engine, config=config, start=start)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def replica(self, shard: int, replica: int = 0) -> ShardReplica:
        """Direct access to one replica (tests and diagnostics)."""
        return self._shards[shard][replica]

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Start every replica's scheduler (idempotent)."""
        if self._started or self._stopped:
            return
        self._started = True
        for group in self._shards:
            for replica in group:
                replica.scheduler.start()

    def stop(self) -> None:
        """Drain and stop every scheduler, then close the sessions."""
        if self._stopped:
            return
        self._stopped = True
        for group in self._shards:
            for replica in group:
                replica.scheduler.stop()
        for group in self._shards:
            for replica in group:
                replica.db.close()

    # -- routing ---------------------------------------------------------
    def _route_info(self, text: str, node: RegexNode) -> tuple[str, frozenset, bool]:
        """``(closure_key, labels, nullable)`` of a query, memoised by text."""
        with self._lock:
            info = self._route_memo.get(text)
        if info is not None:
            return info
        key = closure_group_key(node, self._key_function)
        nfa = compile_nfa(node)
        info = (key, frozenset(nfa.labels), nfa.nullable)
        with self._lock:
            if len(self._route_memo) >= _ROUTE_MEMO_LIMIT:
                self._route_memo.clear()
            self._route_memo[text] = info
        return info

    def _target_shards(self, labels: frozenset, nullable: bool) -> list[int]:
        """Shards that can contribute to a query (source selection).

        A non-nullable query's every satisfying path uses at least one
        edge, and all its edge labels come from the query alphabet -- so
        a shard sharing no label with the query answers with the empty
        set and is skipped.  Nullable queries contribute ``(v, v)`` for
        every vertex of every shard and are never pruned.
        """
        if nullable:
            return list(range(self.num_shards))
        with self._lock:
            return [
                shard
                for shard in range(self.num_shards)
                if not self._labels[shard].isdisjoint(labels)
            ]

    def _pick_replica(self, group: list[ShardReplica], key: str) -> ShardReplica:
        """Body-affine replica choice; least-loaded for closure-free keys."""
        if len(group) == 1:
            return group[0]
        if key:
            # crc32 keeps the body -> replica mapping stable across runs
            # (hash() is seed-randomised), so a body's RTC lives on one
            # replica per shard and its cache stays hot.
            return group[zlib.crc32(key.encode("utf-8")) % len(group)]
        with self._lock:
            return min(group, key=lambda replica: replica.in_flight)

    def _release(self, replica: ShardReplica) -> None:
        with self._lock:
            replica.in_flight -= 1

    # -- queries ---------------------------------------------------------
    def submit(
        self,
        text: str,
        node: RegexNode | None = None,
        timeout: float | None = None,
    ) -> Future:
        """Admit one query cluster-wide; future of ``(pairs, elapsed)``.

        Fans out to one replica of every contributing shard and unions
        the pair-sets; ``elapsed`` is the slowest shard's engine time.
        Admission is all-or-nothing: if any shard's queue is full the
        already-admitted sub-queries are cancelled and the
        :class:`~repro.errors.AdmissionError` propagates.  Any shard
        failure (evaluation error, expired deadline) fails the whole
        query with that error.
        """
        if self._stopped:
            raise self._closed_error()
        if node is None:
            node = parse(text)
        key, labels, nullable = self._route_info(text, node)
        targets = self._target_shards(labels, nullable)

        parent: Future = Future()
        if not targets:
            with self._lock:
                self._answered_without_fanout += 1
            parent.set_running_or_notify_cancel()
            parent.set_result((set(), 0.0))
            return parent

        children: list[Future] = []
        try:
            for shard in targets:
                replica = self._pick_replica(self._shards[shard], key)
                child = replica.scheduler.submit(text, node, timeout=timeout)
                with self._lock:
                    replica.in_flight += 1
                child.add_done_callback(
                    lambda _future, replica=replica: self._release(replica)
                )
                children.append(child)
        except BaseException:
            # All-or-nothing admission: roll back what was admitted.
            for child in children:
                child.cancel()
            raise

        state = _MergeState(expected=len(children))
        for child in children:
            child.add_done_callback(
                lambda future, state=state, parent=parent: self._merge_child(
                    state, parent, future
                )
            )
        return parent

    def _merge_child(
        self, state: _MergeState, parent: Future, child: Future
    ) -> None:
        try:
            pairs, elapsed = child.result()
        except (CancelledError, Exception) as error:  # noqa: BLE001
            outcome: BaseException | None = error
        else:
            outcome = None
        with state.lock:
            if outcome is not None:
                if state.error is None:
                    state.error = outcome
            else:
                state.pairs |= pairs
                if elapsed > state.elapsed:
                    state.elapsed = elapsed
            state.done += 1
            finished = state.done == state.expected
        if not finished:
            return
        if not parent.set_running_or_notify_cancel():
            return  # the caller cancelled the aggregate; drop the result
        if state.error is not None:
            parent.set_exception(state.error)
        else:
            parent.set_result((state.pairs, state.elapsed))

    # -- updates ---------------------------------------------------------
    def submit_update(self, add=(), remove=()) -> Future:
        """Admit a streaming edge change; future of ``None``.

        Each edge routes to the shard owning its endpoints; the change is
        then applied through **every** replica scheduler of the affected
        shards (drain-then-apply on each, caches dropped on each), so all
        copies converge before the future resolves.  Unaffected shards
        keep serving with hot caches.  Edges between two existing shards
        raise :class:`~repro.errors.ClusterError`; edges with brand-new
        endpoints are assigned to the currently smallest shard.

        Routing is two-phase: every edge of the request is validated and
        routed *before* any partition state mutates or any replica sees
        the job, so a request rejected at routing time (cross-shard or
        unknown edges) leaves no phantom vertex assignments or label-set
        entries behind.  A request that routes but then fails to *apply*
        (e.g. a duplicate edge) does keep its routing state: assignments
        must commit before the (asynchronous) apply so that concurrent
        updates naming the same new vertices route to the same shard --
        releasing them on failure could split a component across shards.
        The cost is conservative: a vertex assigned by a failed update
        routes to its assigned shard forever, so a later edge tying it
        to another shard is over-rejected with ClusterError even though
        the vertex materialised nowhere.  The per-replica
        broadcast admits with ``block=True`` -- replica queues never
        half-accept an update, which is what keeps the copies identical
        -- so this call can wait for a queue slot; drive it from a
        worker thread (the router runs it in an executor), not from a
        latency-sensitive loop.
        """
        if self._stopped:
            raise self._closed_error()
        add = [tuple(edge) for edge in add]
        remove = [tuple(edge) for edge in remove]
        parent: Future = Future()
        if not add and not remove:
            parent.set_running_or_notify_cancel()
            parent.set_result(None)
            return parent

        with self._update_lock:
            # Phase 1: route and validate against committed + pending
            # state; raises before anything is mutated.
            by_shard: dict[int, tuple[list, list]] = {}
            pending_assign: dict[object, int] = {}
            pending_labels: dict[int, set] = {}

            def resolve(source: object, target: object) -> int | None:
                source_shard = pending_assign.get(source)
                if source_shard is None:
                    source_shard = self.partition.shard_of(source)
                target_shard = pending_assign.get(target)
                if target_shard is None:
                    target_shard = self.partition.shard_of(target)
                if source_shard is not None and target_shard is not None:
                    if source_shard != target_shard:
                        raise ClusterError(
                            f"edge ({source!r} -> {target!r}) crosses shards "
                            f"{source_shard} and {target_shard}; cross-shard "
                            "edges require re-partitioning and are not "
                            "supported"
                        )
                    return source_shard
                return source_shard if source_shard is not None else target_shard

            for source, label, target in add:
                shard = resolve(source, target)
                if shard is None:
                    shard = self._smallest_shard()
                pending_assign.setdefault(source, shard)
                pending_assign.setdefault(target, shard)
                by_shard.setdefault(shard, ([], []))[0].append(
                    (source, label, target)
                )
                pending_labels.setdefault(shard, set()).add(label)
            for source, label, target in remove:
                shard = resolve(source, target)
                if shard is None:
                    raise ClusterError(
                        f"cannot remove edge ({source!r}, {label!r}, "
                        f"{target!r}): neither endpoint is in the cluster"
                    )
                by_shard.setdefault(shard, ([], []))[1].append(
                    (source, label, target)
                )

            # Phase 2: commit routing state, then broadcast.  Blocking
            # admission means every replica accepts the job (or the
            # whole cluster is shutting down), never a half-applied mix.
            for vertex, shard in pending_assign.items():
                self.partition.assign(vertex, shard)
            with self._lock:
                for shard, labels in pending_labels.items():
                    self._labels[shard] |= labels
            children = [
                replica.scheduler.submit_update(
                    add=adds, remove=removes, block=True
                )
                for shard, (adds, removes) in sorted(by_shard.items())
                for replica in self._shards[shard]
            ]

        state = _MergeState(expected=len(children))
        for child in children:
            child.add_done_callback(
                lambda future, state=state, parent=parent: self._merge_update(
                    state, parent, future
                )
            )
        return parent

    def _smallest_shard(self) -> int:
        sizes = [group[0].db.graph.num_edges for group in self._shards]
        return sizes.index(min(sizes))

    def _merge_update(
        self, state: _MergeState, parent: Future, child: Future
    ) -> None:
        try:
            child.result()
        except (CancelledError, Exception) as error:  # noqa: BLE001
            outcome: BaseException | None = error
        else:
            outcome = None
        with state.lock:
            if outcome is not None and state.error is None:
                state.error = outcome
            state.done += 1
            finished = state.done == state.expected
        if not finished:
            return
        if not parent.set_running_or_notify_cancel():
            return
        if state.error is not None:
            parent.set_exception(state.error)
        else:
            parent.set_result(None)

    @staticmethod
    def _closed_error() -> ServerError:
        error = ServerError("cluster is shutting down")
        error.code = "closed"
        return error

    # -- watchers / reachability -----------------------------------------
    def watch(self, body: str) -> str:
        """Attach an incremental watcher for ``body`` on every replica."""
        normalised = parse(body).to_string()
        for group in self._shards:
            for replica in group:
                replica.db.watch(body)
        return normalised

    def reaches(self, body: str, source: object, target: object) -> bool:
        """Streaming reachability probe, routed to the owning shard.

        Components never span shards, so only ``source``'s shard can
        contain a path; unknown sources probe every shard (and come back
        False when the vertex exists nowhere).
        """
        shard = self.partition.shard_of(source)
        if shard is not None:
            return self._shards[shard][0].db.reaches(body, source, target)
        return any(
            group[0].db.reaches(body, source, target) for group in self._shards
        )

    # -- statistics ------------------------------------------------------
    def stats(self) -> dict:
        """Aggregate scheduler-shaped statistics (QueryServer-compatible).

        Counters sum across all replicas; latency percentiles are
        computed over the *pooled* reservoirs (not averaged per-replica
        percentiles); QPS is the sum of per-replica rates, since the
        replicas serve concurrently.
        """
        stats_list = [
            replica.scheduler.stats()
            for group in self._shards
            for replica in group
        ]
        latencies: list[float] = []
        for group in self._shards:
            for replica in group:
                latencies.extend(replica.scheduler.metrics.latency_values())
        total = {
            key: sum(stats[key] for stats in stats_list)
            for key in (
                "admitted",
                "rejected",
                "expired",
                "failed",
                "cancelled",
                "completed",
                "updates",
                "in_flight",
                "batches",
                "queue_depth",
                "workers",
            )
        }
        batches = total["batches"]
        batched_queries = sum(
            stats["mean_batch_size"] * stats["batches"] for stats in stats_list
        )
        with self._lock:
            answered = self._answered_without_fanout
        # Router-answered queries count as admitted *and* completed, so
        # the conservation law (admitted == completed + expired + failed
        # + cancelled + updates) keeps describing what clients observed.
        total["admitted"] += answered
        total["completed"] += answered
        aggregate = {
            "uptime": max(stats["uptime"] for stats in stats_list),
            **total,
            "answered_without_fanout": answered,
            "qps": sum(stats["qps"] for stats in stats_list),
            "mean_batch_size": batched_queries / batches if batches else 0.0,
            "max_batch_size": max(
                stats["max_batch_size"] for stats in stats_list
            ),
            "latency": {
                "window": len(latencies),
                "mean": sum(latencies) / len(latencies) if latencies else 0.0,
                "p50": percentile(latencies, 0.50),
                "p95": percentile(latencies, 0.95),
                "p99": percentile(latencies, 0.99),
            },
        }
        caches = [stats["cache"] for stats in stats_list if "cache" in stats]
        if caches:
            hits = sum(cache["hits"] for cache in caches)
            misses = sum(cache["misses"] for cache in caches)
            aggregate["cache"] = {
                "mode": caches[0]["mode"],
                "hits": hits,
                "misses": misses,
                "entries": sum(cache["entries"] for cache in caches),
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            }
        return aggregate

    def session_stats(self) -> dict:
        """Aggregate session statistics (the ``stats`` verb's ``session``)."""
        primaries = [group[0].db.stats() for group in self._shards]
        engines = [
            replica.db.stats()
            for group in self._shards
            for replica in group
        ]
        watchers: set = set()
        for stats in engines:
            watchers.update(stats["watchers"])
        with self._lock:  # _labels mutates under concurrent updates
            all_labels = set().union(*self._labels)
        return {
            "engine": self.engine_name,
            "graph": {
                "vertices": sum(s["graph"]["vertices"] for s in primaries),
                "edges": sum(s["graph"]["edges"] for s in primaries),
                "labels": len(all_labels),
            },
            "queries_evaluated": sum(s["queries_evaluated"] for s in engines),
            "total_time": sum(s["total_time"] for s in engines),
            "shared_pairs": sum(s["shared_pairs"] for s in engines),
            "watchers": sorted(watchers),
        }

    def describe(self) -> dict:
        """Topology plus per-shard replica summaries (``stats``' cluster doc)."""
        partition_stats = self.partition.stats()
        shards = []
        for group, shard_stats in zip(self._shards, partition_stats["shards"]):
            replicas = []
            for replica in group:
                scheduler_stats = replica.scheduler.stats()
                summary = {
                    "replica": replica.replica_id,
                    "completed": scheduler_stats["completed"],
                    "updates": scheduler_stats["updates"],
                    "in_flight": scheduler_stats["in_flight"],
                    "queue_depth": scheduler_stats["queue_depth"],
                }
                if "cache" in scheduler_stats:
                    summary["cache_hits"] = scheduler_stats["cache"]["hits"]
                    summary["cache_misses"] = scheduler_stats["cache"]["misses"]
                replicas.append(summary)
            shards.append({**shard_stats, "replicas": replicas})
        return {
            "shards": self.num_shards,
            "replicas": self.replicas,
            "engine": self.engine_name,
            "per_shard": shards,
        }

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else (
            "running" if self._started else "created"
        )
        return (
            f"GraphCluster(shards={self.num_shards}, "
            f"replicas={self.replicas}, engine={self.engine_name!r}, {state})"
        )


class ClusterRouter(QueryServer):
    """The cluster's JSON-lines front end -- a :class:`QueryServer` whose
    scheduler is a whole :class:`GraphCluster`.

    The wire protocol, the :class:`~repro.server.Client`, admission
    errors and per-request deadlines are all inherited unchanged; only
    ``stats`` (cluster-wide aggregation plus topology), ``watch``
    (broadcast) and ``reaches`` (shard-routed) are specialised.
    """

    def __init__(
        self, cluster: GraphCluster, config: ServerConfig | None = None
    ) -> None:
        self.cluster = cluster
        # The cluster plays both roles: the scheduler surface (submit /
        # submit_update / stats) and the session surface the base
        # ``watch`` / ``reaches`` handlers drive through ``self.db``.
        super().__init__(db=cluster, config=config, scheduler=cluster)

    async def _op_query(self, request_id, request) -> dict:
        # Warm the routing memo off the event loop: _route_info walks
        # the query's DNF and compiles its NFA, which is exactly the
        # work the single-node scheduler defers to its dispatcher
        # thread.  The base handler then routes from the memo in O(1).
        queries = request.get("queries")
        if queries is None and isinstance(request.get("query"), str):
            queries = [request["query"]]
        if isinstance(queries, list) and queries and all(
            isinstance(query, str) for query in queries
        ):
            # Dict membership is GIL-atomic, so peeking without the
            # cluster lock is safe; a concurrent memo clear only costs
            # one on-loop recompute.  Already-memoised texts (the steady
            # state of a serving workload) skip the executor hop.
            missing = [
                text
                for text in queries
                if text not in self.cluster._route_memo
            ]
            if missing:
                def warm() -> None:
                    for text in missing:
                        try:
                            self.cluster._route_info(text, parse(text))
                        except Exception:  # noqa: BLE001 -- base reports
                            return
                await self._in_executor(warm)
        return await super()._op_query(request_id, request)

    async def _op_update(self, request_id, request) -> dict:
        add = self._edge_list(request.get("add", ()), "add")
        remove = self._edge_list(request.get("remove", ()), "remove")
        if not add and not remove:
            raise protocol.ProtocolError(
                "'update' op needs 'add' and/or 'remove' edges"
            )
        # submit_update admits to every replica with block=True (so the
        # copies never diverge on a full queue) -- keep that potential
        # wait off the event loop.
        future = await self._in_executor(
            lambda: self.cluster.submit_update(add=add, remove=remove)
        )
        await asyncio.wrap_future(future)
        return protocol.ok_response(
            request_id, added=len(add), removed=len(remove)
        )

    async def _op_stats(self, request_id, request) -> dict:
        def collect() -> dict:
            return {
                "scheduler": self.cluster.stats(),
                "session": self.cluster.session_stats(),
                "cluster": self.cluster.describe(),
            }

        stats = await self._in_executor(collect)
        stats["server"] = {
            "address": list(self.address),
            "connections": self._connections,
            "version": protocol.PROTOCOL_VERSION,
        }
        return protocol.ok_response(request_id, stats=stats)

    # ``watch`` and ``reaches`` are inherited: the base handlers call
    # self.db.watch / self.db.reaches, and GraphCluster implements both
    # with GraphDB's signatures (broadcast / shard-routed).
