"""Transport-agnostic shard backends: the layer between router and shard.

The cluster's router (:class:`~repro.cluster.GraphCluster`) does not talk
to sessions or sockets directly any more -- it talks to one
:class:`ShardBackend` per shard, a small transport-agnostic surface
(``query`` / ``update`` / ``stats`` / ``drain`` / ``close``) with two
implementations:

:class:`InProcessBackend`
    The PR-4 deployment, behaviour-preserving: R replicated
    :class:`~repro.db.GraphDB` sessions, each behind its own
    :class:`~repro.server.SharingScheduler`, living in the router's
    process.  Queries pick a replica body-affinely (the query's
    canonical closure-body key hashes to one replica, so each replica's
    RTC cache serves a stable subset of bodies), closure-free queries go
    least-loaded, and updates broadcast drain-then-apply to every
    replica with blocking admission so the copies never diverge.

:class:`ProcessBackend`
    The same shard served from a separate OS process: the backend spawns
    one worker (:mod:`repro.cluster.worker`) hosting an
    :class:`InProcessBackend` behind a JSON-lines
    :class:`~repro.server.QueryServer`, ships the shard graph to it via
    a :mod:`repro.graph.io` edge-list dump (or a spawn-time loader
    callable), and fans requests out through a pooled
    :class:`~repro.server.ClientPool`.  CPU-bound evaluation then runs
    on the worker's cores, outside the router's GIL -- the piece that
    turns the cluster's scaling story from update isolation into true
    multi-core scale-out.

Both backends expose identical semantics; the identity suite in
``tests/cluster/test_backends.py`` gates them against each other and
against a single session.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import zlib
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.core.cache import make_key_function
from repro.db.session import GraphDB
from repro.errors import AdmissionError, ClusterError, ServerError
from repro.graph.multigraph import LabeledMultigraph
from repro.obs import activate, get_registry
from repro.regex.ast import RegexNode
from repro.regex.parser import parse
from repro.server.metrics import percentile
from repro.server.scheduler import SharingScheduler, closure_group_key

__all__ = [
    "ShardBackend",
    "ShardReplica",
    "InProcessBackend",
    "ProcessBackend",
    "aggregate_scheduler_stats",
    "merge_futures",
]

#: Per-backend bound on the query-key memo (mirrors the router's).
_KEY_MEMO_LIMIT = 4096

#: When set, process workers without an explicit log path log into this
#: directory (one file per spawn) -- CI exports it and uploads the
#: directory as an artifact on failure.
_ENV_LOG_DIR = "REPRO_CLUSTER_LOG_DIR"


_log_sequence = itertools.count()


def _default_log_path(shard_id: int) -> str | None:
    directory = os.environ.get(_ENV_LOG_DIR)
    if not directory:
        return None
    Path(directory).mkdir(parents=True, exist_ok=True)
    sequence = next(_log_sequence)
    return str(
        Path(directory) / f"shard{shard_id}-{os.getpid()}-{sequence}.log"
    )

#: Scheduler counters summed verbatim when aggregating replica stats.
_COUNTER_KEYS = (
    "admitted",
    "rejected",
    "expired",
    "failed",
    "cancelled",
    "completed",
    "updates",
    "in_flight",
    "batches",
    "queue_depth",
    "workers",
)


@dataclass
class ShardReplica:
    """One replica: its own session, scheduler, and load counter."""

    shard_id: int
    replica_id: int
    db: GraphDB
    scheduler: SharingScheduler
    in_flight: int = 0

    @property
    def name(self) -> str:
        return f"shard{self.shard_id}/replica{self.replica_id}"


def aggregate_scheduler_stats(stats_list: list[dict], latencies: list[float]) -> dict:
    """Scheduler-shaped aggregate of per-replica scheduler statistics.

    Counters sum; QPS sums (replicas serve concurrently); the mean batch
    size is the batch-count-weighted mean; latency percentiles come from
    the *pooled* raw reservoirs, never from averaging per-replica
    percentiles.  Shared by the router's cluster-wide ``stats`` and the
    shard workers' per-shard ``stats`` verb.

    An empty ``stats_list`` (a backend probed before any replica came
    up) aggregates to zeros with ``None`` latency quantiles rather than
    raising -- the same null-safety contract as an idle
    :meth:`~repro.server.metrics.ServerMetrics.snapshot`.
    """
    if not stats_list:
        return {
            "uptime": 0.0,
            **{key: 0 for key in _COUNTER_KEYS},
            "qps": 0.0,
            "mean_batch_size": 0.0,
            "max_batch_size": 0,
            "latency": {
                "window": len(latencies),
                "mean": sum(latencies) / len(latencies) if latencies else None,
                "p50": percentile(latencies, 0.50),
                "p95": percentile(latencies, 0.95),
                "p99": percentile(latencies, 0.99),
            },
        }
    total = {
        key: sum(stats[key] for stats in stats_list) for key in _COUNTER_KEYS
    }
    batches = total["batches"]
    batched_queries = sum(
        stats["mean_batch_size"] * stats["batches"] for stats in stats_list
    )
    aggregate = {
        "uptime": max(stats["uptime"] for stats in stats_list),
        **total,
        "qps": sum(stats["qps"] for stats in stats_list),
        "mean_batch_size": batched_queries / batches if batches else 0.0,
        "max_batch_size": max(stats["max_batch_size"] for stats in stats_list),
        "latency": {
            "window": len(latencies),
            "mean": sum(latencies) / len(latencies) if latencies else None,
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
        },
    }
    caches = [stats["cache"] for stats in stats_list if "cache" in stats]
    if caches:
        hits = sum(cache["hits"] for cache in caches)
        misses = sum(cache["misses"] for cache in caches)
        aggregate["cache"] = {
            "mode": caches[0]["mode"],
            "hits": hits,
            "misses": misses,
            "entries": sum(cache["entries"] for cache in caches),
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }
    return aggregate


def merge_futures(children: list[Future]) -> Future:
    """One parent future resolving when every child has (None result).

    The first child error (or cancellation) becomes the parent's
    exception once all children are accounted for -- the update-broadcast
    merge shape shared by backends and router.
    """
    parent: Future = Future()
    if not children:
        parent.set_running_or_notify_cancel()
        parent.set_result(None)
        return parent
    lock = threading.Lock()
    state = {"done": 0, "error": None}

    def on_done(child: Future) -> None:
        try:
            child.result()
        except (CancelledError, Exception) as error:  # noqa: BLE001  # repro: noqa[RPR701] -- fan-in callback: the first failure is stashed and delivered through the merged future
            outcome: BaseException | None = error
        else:
            outcome = None
        with lock:
            if outcome is not None and state["error"] is None:
                state["error"] = outcome
            state["done"] += 1
            finished = state["done"] == len(children)
        if not finished:
            return
        if not parent.set_running_or_notify_cancel():
            return
        if state["error"] is not None:
            parent.set_exception(state["error"])
        else:
            parent.set_result(None)

    for child in children:
        child.add_done_callback(on_done)
    return parent


class ShardBackend:
    """The transport-agnostic surface one shard presents to the router.

    ``query``/``update`` admit work and return
    :class:`concurrent.futures.Future` objects; ``stats`` returns the
    structured shard document (per-replica scheduler/session stats,
    pooled latency values, live graph counts) the router aggregates;
    ``drain`` waits for in-flight work; ``close`` releases everything.
    ``start`` may be deferred (``wait_ready`` blocks until the shard
    actually serves -- meaningful for process workers that boot
    asynchronously).
    """

    shard_id: int

    def start(self) -> None:
        raise NotImplementedError

    def wait_ready(self, timeout: float | None = None) -> None:
        """Block until the shard serves (default: started == ready)."""

    def query(
        self,
        text: str,
        node: RegexNode | None = None,
        *,
        key: str | None = None,
        timeout: float | None = None,
        want_pairs: bool = True,
        trace: tuple | None = None,
    ) -> Future:
        """Admit one query; future of ``(pairs, engine_elapsed)``.

        ``want_pairs=False`` lets a remote backend answer with a bare
        count instead of a pair-set (in-process backends may keep
        returning the set -- it is free); the router's merge accepts
        both.  ``trace`` is the router's ``(tracer, parent_span_id)``
        when the request is traced: in-process backends record straight
        into the tracer, process backends propagate the trace over the
        wire and absorb the worker's span subtree into it.
        """
        raise NotImplementedError

    def partial_query(
        self,
        text: str,
        node: RegexNode | None = None,
        *,
        boundary,
        frontier=None,
        timeout: float | None = None,
        trace: tuple | None = None,
    ) -> Future:
        """Admit one shard-local partial evaluation (edge-cut path).

        Future of ``(accepts, boundary_rows, elapsed)``: the locally
        complete ``(start, end)`` pairs, the ``(start, vertex, state)``
        boundary triples for the router's cut-edge join, and the shard's
        evaluation time.  ``frontier=None`` is the initial round (the
        shard traverses from its own candidate starts); otherwise the
        triples are continuations arriving over cut edges.  See
        :func:`repro.rpq.partial.eval_partial_rpq`.
        """
        raise NotImplementedError

    def update(self, add=(), remove=(), trace: tuple | None = None) -> Future:
        """Admit an edge change to every replica; future of ``None``."""
        raise NotImplementedError

    def metrics_text(self) -> str:
        """This shard's metrics registry in Prometheus text format.

        In-process shards share the router's registry; process shards
        fetch the worker's registry over the ``metrics`` wire verb.
        """
        raise NotImplementedError

    def watch(self, body: str) -> None:
        """Attach an incremental watcher for ``body`` on every replica."""
        raise NotImplementedError

    def reaches(self, body: str, source: object, target: object) -> bool:
        """One streaming reachability probe against this shard."""
        raise NotImplementedError

    @property
    def shard_graph(self):
        """The live shard multigraph when co-located, else ``None``.

        The router's cut-relevant ``reaches`` fast path sweeps its
        bitmap adjacency rows as a reachability prefilter; process
        shards (graph in another address space) return ``None`` and the
        router skips the prefilter rather than round-tripping.
        """
        return None

    def stats(self) -> dict:
        """The structured shard document (see class docstring)."""
        raise NotImplementedError

    def checkpoint(self) -> dict:
        """Commit this shard's durable checkpoint (snapshot + RTC store).

        Only meaningful on storage-backed shards; others raise
        :class:`~repro.errors.ClusterError` (``cluster.unsupported``).
        """
        raise NotImplementedError

    def edge_count(self) -> int:
        """Live (or best-effort) edge count, for smallest-shard routing."""
        raise NotImplementedError

    def drain(self) -> None:
        """Wait until currently admitted work has finished."""
        raise NotImplementedError

    def close(self) -> None:
        """Stop serving and release sessions/processes (idempotent)."""
        raise NotImplementedError


class InProcessBackend(ShardBackend):
    """One shard's replica group living in the router's process.

    Also doubles as the scheduler *and* session surface of a
    :class:`~repro.server.QueryServer` (``submit`` / ``submit_update`` /
    ``scheduler_stats`` / ``watch`` / ``reaches``), which is exactly how
    the process-mode worker serves it over the wire
    (:class:`~repro.cluster.worker.ShardWorkerServer`).
    """

    def __init__(
        self,
        shard_id: int,
        graph: LabeledMultigraph | None,
        engine: str = "rtc",
        replicas: int = 1,
        workers: int = 2,
        max_queue: int = 256,
        batch_window: float = 0.005,
        max_batch: int = 64,
        engine_kwargs: dict | None = None,
        storage_dir: str | None = None,
        checkpoint_every: int | None = None,
        start: bool = False,
    ) -> None:
        if replicas < 1:
            raise ClusterError(
                f"replicas must be >= 1, got {replicas}",
                code="cluster.topology",
            )
        self.shard_id = shard_id
        self.engine_name = engine.lower()
        engine_kwargs = dict(engine_kwargs or {})
        # Durable shards: the primary replica's session owns the shard's
        # WAL + snapshots; recovery (when the directory holds state)
        # replaces the seed graph *before* any replica is built, so a
        # restarted shard serves the recovered graph from its first
        # request.  Sibling replicas are warmed from the same RTC store.
        self._storage = None
        if storage_dir is not None:
            from repro.storage.recovery import ShardStorage

            self._storage = ShardStorage(storage_dir)
            if self._storage.has_state():
                graph = self._storage.recover().graph
        if graph is None:
            raise ClusterError(
                "InProcessBackend needs a shard graph or a storage_dir "
                "holding recoverable state",
                code="cluster.topology",
                shards=(shard_id,),
            )
        self.replicas: list[ShardReplica] = []
        for replica_id in range(replicas):
            replica_graph = graph if replica_id == 0 else graph.copy()
            db = GraphDB.open(
                replica_graph,
                engine=engine,
                storage=self._storage if replica_id == 0 else None,
                checkpoint_every=checkpoint_every if replica_id == 0 else None,
                **engine_kwargs,
            )
            if self._storage is not None and replica_id > 0:
                self._storage.install(db)
            scheduler = SharingScheduler(
                db,
                workers=workers,
                max_queue=max_queue,
                batch_window=batch_window,
                max_batch=max_batch,
                engine_kwargs=engine_kwargs,
                start=False,
            )
            self.replicas.append(ShardReplica(shard_id, replica_id, db, scheduler))
        reference = self.replicas[0].scheduler.shared_cache
        #: The closure-body key function, derived from the live shared
        #: cache's actual mode (the router aligns its routing keys with
        #: this, so affinity hashing and cache keying cannot disagree).
        self.key_function = make_key_function(
            reference.mode if reference is not None else "syntactic"
        )
        self._lock = threading.Lock()  # in_flight counters + key memo
        # Replica-consistent update ordering: concurrent updates reach
        # every replica queue in one global order, so the copies of this
        # shard's graph never diverge.
        self._update_lock = threading.Lock()
        self._key_memo: dict[str, str] = {}
        self._nfa_memo: dict[str, object] = {}
        self._partial_executor: ThreadPoolExecutor | None = None
        self._started = False
        self._closed = False
        if start:
            self.start()

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        if self._started or self._closed:
            return
        self._started = True
        for replica in self.replicas:
            replica.scheduler.start()

    # ``stop`` aliases ``close`` so the backend satisfies QueryServer's
    # scheduler surface (the worker front end calls scheduler.stop()).
    def stop(self) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Swap the executor out under the lock (its lazy creation in
        # _run_partial races with close), but shut it down outside --
        # in-flight partials take self._lock for their NFA memo.
        with self._lock:
            executor, self._partial_executor = self._partial_executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        for replica in self.replicas:
            replica.scheduler.stop()
        for replica in self.replicas:
            replica.db.close()

    def drain(self) -> None:
        for replica in self.replicas:
            replica.scheduler.drain()

    # -- routing key ------------------------------------------------------
    def route_key(self, text: str, node: RegexNode | None = None) -> str:
        """The query's closure-body batching key, memoised by text."""
        with self._lock:
            key = self._key_memo.get(text)
        if key is not None:
            return key
        if node is None:
            node = parse(text)
        key = closure_group_key(node, self.key_function)
        with self._lock:
            if len(self._key_memo) >= _KEY_MEMO_LIMIT:
                self._key_memo.clear()
            self._key_memo[text] = key
        return key

    def _pick_replica(self, key: str) -> ShardReplica:
        """Body-affine replica choice; least-loaded for closure-free keys."""
        group = self.replicas
        if len(group) == 1:
            return group[0]
        if key:
            # crc32 keeps the body -> replica mapping stable across runs
            # (hash() is seed-randomised), so a body's RTC lives on one
            # replica per shard and its cache stays hot.
            return group[zlib.crc32(key.encode("utf-8")) % len(group)]
        with self._lock:
            return min(group, key=lambda replica: replica.in_flight)

    def _release(self, replica: ShardReplica) -> None:
        with self._lock:
            replica.in_flight -= 1

    # -- backend surface --------------------------------------------------
    def query(
        self,
        text: str,
        node: RegexNode | None = None,
        *,
        key: str | None = None,
        timeout: float | None = None,
        want_pairs: bool = True,
        trace: tuple | None = None,
    ) -> Future:
        # want_pairs is a wire-cost hint; in-process pair-sets travel by
        # reference, so the set is returned either way.
        if node is None:
            node = parse(text)
        if key is None:
            key = self.route_key(text, node)
        replica = self._pick_replica(key)
        future = replica.scheduler.submit(text, node, timeout=timeout, trace=trace)
        with self._lock:
            replica.in_flight += 1
        future.add_done_callback(
            lambda _future, replica=replica: self._release(replica)
        )
        return future

    def _compiled_nfa(self, text: str, node: RegexNode | None):
        """The query automaton, memoised by text (bounded like the keys)."""
        from repro.regex.nfa import compile_nfa

        with self._lock:
            nfa = self._nfa_memo.get(text)
        if nfa is not None:
            return nfa
        if node is None:
            node = parse(text)
        nfa = compile_nfa(node)
        with self._lock:
            if len(self._nfa_memo) >= _KEY_MEMO_LIMIT:
                self._nfa_memo.clear()
            self._nfa_memo[text] = nfa
        return nfa

    def partial_query(
        self,
        text: str,
        node: RegexNode | None = None,
        *,
        boundary,
        frontier=None,
        timeout: float | None = None,
        trace: tuple | None = None,
    ) -> Future:
        # Partial evaluations bypass the scheduler (it batches whole
        # RegexNode queries, not automaton fragments) and run on a small
        # backend executor instead; the session lock inside
        # ``evaluate_partial`` still serialises them against updates.
        if self._closed:
            raise ProcessBackend._closed_error()
        nfa = self._compiled_nfa(text, node)
        boundary = frozenset(boundary)
        frontier = None if frontier is None else tuple(frontier)
        with self._lock:
            if self._partial_executor is None:
                self._partial_executor = ThreadPoolExecutor(
                    max_workers=max(2, len(self.replicas)),
                    thread_name_prefix=f"repro-partial{self.shard_id}",
                )
            executor = self._partial_executor
        replica = self._pick_replica("")

        def evaluate():
            started = time.perf_counter()
            if trace is not None:
                # The session's ``partial`` ambient span records into
                # the router's tracer under the join-round span.
                with activate(*trace):
                    accepts, rows = replica.db.evaluate_partial(
                        nfa, boundary, frontier
                    )
            else:
                accepts, rows = replica.db.evaluate_partial(
                    nfa, boundary, frontier
                )
            return accepts, rows, time.perf_counter() - started

        future = executor.submit(evaluate)
        with self._lock:
            replica.in_flight += 1
        future.add_done_callback(
            lambda _future, replica=replica: self._release(replica)
        )
        return future

    def update(self, add=(), remove=(), trace: tuple | None = None) -> Future:
        """Broadcast one edge change drain-then-apply to every replica.

        Admission is blocking on every replica queue (a half-accepted
        update would leave the copies diverged), and the update lock
        pins one global ordering across concurrent updates.  A traced
        update records each replica's drain/apply spans under the same
        parent (one subtree per replica).
        """
        with self._update_lock:
            children = [
                replica.scheduler.submit_update(
                    add=add, remove=remove, block=True, trace=trace
                )
                for replica in self.replicas
            ]
        return merge_futures(children)

    def watch(self, body: str) -> None:
        for replica in self.replicas:
            replica.db.watch(body)

    def reaches(self, body: str, source: object, target: object) -> bool:
        return self.replicas[0].db.reaches(body, source, target)

    @property
    def shard_graph(self):
        """The primary replica's live multigraph (co-located, shareable)."""
        return self.replicas[0].db.graph

    def checkpoint(self) -> dict:
        """Commit a shard checkpoint covering every replica's warm state.

        Drains first (so the snapshot reflects every acked update), then
        checkpoints the primary session with the sibling replicas as
        extra sources -- body-affine picking spreads the cached closures
        across replicas, and the merged store warms *all* of them on the
        next start.
        """
        if self._storage is None:
            raise ClusterError(
                f"shard {self.shard_id} has no storage attached",
                code="cluster.unsupported",
                shards=(self.shard_id,),
            )
        self.drain()
        primary = self.replicas[0]
        return primary.db.checkpoint(
            extra_sessions=[replica.db for replica in self.replicas[1:]]
        )

    def edge_count(self) -> int:
        return self.replicas[0].db.graph.num_edges

    def stats(self) -> dict:
        graph = self.replicas[0].db.graph
        latencies: list[float] = []
        replicas = []
        for replica in self.replicas:
            latencies.extend(replica.scheduler.metrics.latency_values())
            replicas.append(
                {
                    "replica": replica.replica_id,
                    "scheduler": replica.scheduler.stats(),
                    "session": replica.db.stats(),
                }
            )
        document = {
            "shard": self.shard_id,
            "backend": "thread",
            "graph": {
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "labels": graph.num_labels,
            },
            "replicas": replicas,
            "latency_values": latencies,
        }
        # Recovery/LSN info for the ``stats`` verb; the authoritative
        # copy lives in the primary session's stats, surfaced here so
        # routers and operators need not dig through the replica list.
        primary_session = replicas[0]["session"]
        if "storage" in primary_session:
            document["storage"] = primary_session["storage"]
        return document

    def metrics_text(self) -> str:
        """In-process shards publish into the process-wide registry."""
        return get_registry().render_prometheus()

    # -- QueryServer scheduler surface (the worker front end) -------------
    def submit(
        self,
        text: str,
        node: RegexNode | None = None,
        timeout: float | None = None,
        trace: tuple | None = None,
    ) -> Future:
        return self.query(text, node, timeout=timeout, trace=trace)

    def submit_update(self, add=(), remove=(), trace: tuple | None = None) -> Future:
        return self.update(add=add, remove=remove, trace=trace)

    def scheduler_stats(self) -> dict:
        """Aggregated scheduler-shaped stats (the worker's ``stats`` verb)."""
        doc = self.stats()
        return aggregate_scheduler_stats(
            [replica["scheduler"] for replica in doc["replicas"]],
            doc["latency_values"],
        )

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "running" if self._started else "created"
        )
        return (
            f"InProcessBackend(shard={self.shard_id}, "
            f"replicas={len(self.replicas)}, {state})"
        )


class ProcessBackend(ShardBackend):
    """One shard served by a dedicated worker process.

    ``start`` dumps the shard graph to an edge-list file (or defers to a
    picklable ``loader`` callable), spawns
    :func:`repro.cluster.worker.worker_main` in a fresh ``spawn``
    process, and records the ephemeral address the worker reports back.
    Requests then travel over the ordinary JSON-lines protocol through a
    :class:`~repro.server.ClientPool` -- queries on a small thread pool
    (one thread per pooled connection, so a lease never blocks), updates
    on a dedicated single-threaded lane whose one connection preserves
    the router's update admission order end to end.

    Admission control mirrors the thread backend: beyond
    ``max_queue + pool_size`` requests in flight toward the worker, new
    queries are rejected locally with
    :class:`~repro.errors.AdmissionError` instead of queueing without
    bound.  Updates are never rejected (replica copies must converge),
    only serialised.

    ``close`` is graceful: pending work drains, the pool closes, the
    worker gets ``SIGTERM`` (its server shuts down cleanly, see
    :meth:`~repro.server.QueryServer.run`), and only an unresponsive
    worker is killed.
    """

    #: Seconds to wait for the worker to report its bound address.
    ready_timeout = 60.0
    #: Seconds to wait after SIGTERM before killing the worker.
    terminate_timeout = 10.0

    def __init__(
        self,
        shard_id: int,
        graph: LabeledMultigraph | None,
        engine: str = "rtc",
        replicas: int = 1,
        workers: int = 2,
        max_queue: int = 256,
        batch_window: float = 0.005,
        max_batch: int = 64,
        engine_kwargs: dict | None = None,
        pool_size: int = 8,
        loader=None,
        log_path: str | None = None,
        data_dir: str | None = None,
        checkpoint_every: int | None = None,
        start: bool = False,
    ) -> None:
        if graph is None and loader is None and data_dir is None:
            raise ClusterError(
                "ProcessBackend needs a shard graph to dump, a loader "
                "callable, or a data_dir holding recoverable state",
                code="cluster.unsupported",
                shards=(shard_id,),
            )
        self.shard_id = shard_id
        self.engine_name = engine.lower()
        self._graph = graph
        self._loader = loader
        self._spec_kwargs = {
            "engine": engine,
            "replicas": replicas,
            "workers": workers,
            "max_queue": max_queue,
            "batch_window": batch_window,
            "max_batch": max_batch,
            "engine_kwargs": dict(engine_kwargs or {}),
            "data_dir": data_dir,
            "checkpoint_every": checkpoint_every,
        }
        self._pool_size = max(1, pool_size)
        self._max_pending = max_queue + self._pool_size
        self._log_path = (
            log_path if log_path is not None else _default_log_path(shard_id)
        )
        self._pending = 0
        self._rejected = 0  # local admission rejections (stats parity)
        self._lock = threading.Lock()
        self._ready_lock = threading.Lock()  # serialises spawn/wait_ready
        self._process = None
        self._ready_conn = None
        self._graph_path: str | None = None
        self._address: tuple[str, int] | None = None
        self._pool = None
        self._executor: ThreadPoolExecutor | None = None
        self._update_executor: ThreadPoolExecutor | None = None
        self._update_client = None
        # Best-effort live edge count: seeded from the dumped graph,
        # adjusted as updates succeed (the authoritative graph lives in
        # the worker; a wire round trip per routing decision would be
        # absurd, and smallest-shard placement only needs a heuristic).
        self._edge_estimate = graph.num_edges if graph is not None else 0
        self._closed = False
        if start:
            self.start()
            self.wait_ready()

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker (non-blocking; pair with :meth:`wait_ready`).

        Not itself thread-safe -- call from one thread (the router's
        ``start``), or rely on :meth:`wait_ready`, which serialises the
        spawn internally.
        """
        if self._process is not None or self._closed:
            return
        import multiprocessing
        import tempfile

        from repro.cluster.worker import WorkerSpec, worker_main
        from repro.graph.io import dump_edge_list

        # A restart against a data dir with committed state needs no
        # graph handoff at all: the worker recovers from disk.  The seed
        # dump happens only for the first (empty-directory) spawn.
        recovering = False
        if self._spec_kwargs.get("data_dir") is not None:
            from repro.storage.recovery import has_state

            recovering = has_state(self._spec_kwargs["data_dir"])
        if self._loader is None and self._graph is not None and not recovering:
            handle, path = tempfile.mkstemp(
                prefix=f"repro-shard{self.shard_id}-", suffix=".edges"
            )
            os.close(handle)
            self._graph_path = path
            try:
                dump_edge_list(self._graph, path)
            except BaseException:
                os.unlink(path)
                self._graph_path = None
                raise
        isolated = []
        if self._graph is not None:
            isolated = [
                vertex
                for vertex in self._graph.vertices()
                if not self._graph.out_degree(vertex)
                and not self._graph.in_degree(vertex)
            ]
        spec = WorkerSpec(
            shard_id=self.shard_id,
            graph_path=self._graph_path,
            loader=self._loader,
            isolated_vertices=isolated,
            log_path=self._log_path,
            **self._spec_kwargs,
        )
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe(duplex=False)
        self._ready_conn = parent_conn
        self._process = context.Process(
            target=worker_main,
            args=(spec, child_conn),
            name=f"repro-shard{self.shard_id}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def wait_ready(self, timeout: float | None = None) -> None:
        """Block until the worker reports its bound address (or fail).

        Safe to call from several threads; the first caller consumes the
        ready pipe, later ones return as soon as the address is known.
        """
        with self._ready_lock:
            self._wait_ready_locked(timeout)

    def _wait_ready_locked(self, timeout: float | None) -> None:
        if self._address is not None or self._closed:
            return
        if self._process is None:
            self.start()
        timeout = self.ready_timeout if timeout is None else timeout
        failure: str | None = None
        if not self._ready_conn.poll(timeout):
            failure = f"no ready message within {timeout}s"
        else:
            try:
                message = self._ready_conn.recv()
            except (EOFError, OSError):
                failure = "worker exited before reporting an address"
            else:
                if message[0] == "ready":
                    _tag, host, port = message
                    self._address = (host, port)
                else:
                    failure = message[1]
        self._ready_conn.close()
        self._ready_conn = None
        if failure is not None:
            self.close()
            raise ClusterError(
                f"shard {self.shard_id} worker failed to start: {failure}"
                + (f" (worker log: {self._log_path})" if self._log_path else ""),
                code="cluster.worker_start",
                shards=(self.shard_id,),
            )
        from repro.server.pool import ClientPool

        self._pool = ClientPool(*self._address, size=self._pool_size)
        self._executor = ThreadPoolExecutor(
            max_workers=self._pool_size,
            thread_name_prefix=f"repro-shard{self.shard_id}",
        )
        self._update_executor = ThreadPoolExecutor(
            max_workers=1,
            thread_name_prefix=f"repro-shard{self.shard_id}-upd",
        )

    @property
    def address(self) -> tuple[str, int]:
        """The worker's ``(host, port)`` (after :meth:`wait_ready`)."""
        if self._address is None:
            raise ClusterError(
                f"shard {self.shard_id} worker is not ready",
                code="cluster.worker_start",
                shards=(self.shard_id,),
            )
        return self._address

    @property
    def pid(self) -> int | None:
        return self._process.pid if self._process is not None else None

    def _ensure_ready(self) -> None:
        if self._closed:
            raise self._closed_error()
        if self._address is None:
            self.wait_ready()

    @staticmethod
    def _closed_error() -> ServerError:
        error = ServerError("shard backend is closed")
        error.code = "closed"
        return error

    # -- backend surface --------------------------------------------------
    def query(
        self,
        text: str,
        node: RegexNode | None = None,
        *,
        key: str | None = None,
        timeout: float | None = None,
        want_pairs: bool = True,
        trace: tuple | None = None,
    ) -> Future:
        # ``node`` and ``key`` are router-side artifacts; the worker
        # re-derives both from the text (its own memo makes that O(1)
        # in the serving steady state).
        self._ensure_ready()
        with self._lock:
            if self._pending >= self._max_pending:
                self._rejected += 1
                raise AdmissionError(queue_depth=self._pending)
            self._pending += 1
        try:
            future = self._executor.submit(
                self._remote_query, text, timeout, want_pairs, trace
            )
        except BaseException:
            with self._lock:
                self._pending -= 1
            raise
        future.add_done_callback(self._release_pending)
        return future

    def _release_pending(self, _future: Future) -> None:
        with self._lock:
            self._pending -= 1

    @staticmethod
    def _wire_trace(trace: tuple | None) -> dict | None:
        """The propagated form of a router trace: ``{"id", "parent"}``."""
        if trace is None:
            return None
        tracer, parent = trace
        wire = {"id": tracer.trace_id}
        if parent is not None:
            wire["parent"] = parent
        return wire

    @staticmethod
    def _absorb_trace(trace: tuple | None, response: dict) -> None:
        """Stitch the worker's span subtree into the router's tracer."""
        if trace is None:
            return
        remote = response.get("trace")
        if isinstance(remote, dict):
            trace[0].absorb(remote.get("spans") or ())

    def _remote_query(
        self,
        text: str,
        timeout: float | None,
        want_pairs: bool,
        trace: tuple | None = None,
    ):
        with self._pool.lease() as client:
            results, response = client.query_call(
                [text],
                timeout=timeout,
                pairs=want_pairs,
                trace=self._wire_trace(trace),
                enc="packed",
            )
        self._absorb_trace(trace, response)
        result = results[0]
        # Counts-only answers carry no pair-set; the router's merge
        # sums the counts (shard answers are component-disjoint).
        payload = result.pairs if want_pairs else result.count
        return payload, result.time

    def partial_query(
        self,
        text: str,
        node: RegexNode | None = None,
        *,
        boundary,
        frontier=None,
        timeout: float | None = None,
        trace: tuple | None = None,
    ) -> Future:
        # Same local admission as ``query``: partial rounds compete for
        # the same worker capacity.
        self._ensure_ready()
        boundary = sorted(boundary, key=str)
        frontier = (
            None
            if frontier is None
            else [list(triple) for triple in frontier]
        )
        with self._lock:
            if self._pending >= self._max_pending:
                self._rejected += 1
                raise AdmissionError(queue_depth=self._pending)
            self._pending += 1
        try:
            future = self._executor.submit(
                self._remote_partial, text, boundary, frontier, timeout, trace
            )
        except BaseException:
            with self._lock:
                self._pending -= 1
            raise
        future.add_done_callback(self._release_pending)
        return future

    def _remote_partial(self, text, boundary, frontier, timeout, trace=None):
        from repro.server import protocol

        payload = {
            "query": text,
            "mode": "partial",
            "boundary": boundary,
            # Ask the worker for packed rows; round answers on closure
            # bodies are exactly the payloads the encoding collapses.
            "enc": "packed",
        }
        if frontier is not None:
            # Ship the dispatch frontier packed too (same hex-row form
            # the worker answers with).
            payload["frontier"] = protocol.rows_to_wire(
                [tuple(triple) for triple in frontier], enc="packed"
            )
        if timeout is not None:
            payload["timeout"] = timeout
        wire_trace = self._wire_trace(trace)
        if wire_trace is not None:
            payload["trace"] = wire_trace
        with self._pool.lease() as client:
            response = client.call("query", **payload)
        self._absorb_trace(trace, response)
        partial = response["partial"]
        return (
            protocol.wire_to_pairs(partial["accepts"]),
            protocol.wire_to_rows(partial["boundary"]),
            partial["time"],
        )

    def update(self, add=(), remove=(), trace: tuple | None = None) -> Future:
        """One edge change through the single-connection update lane.

        The dedicated lane (one thread, one connection) makes the wire
        order equal the call order, so the router's update lock keeps
        its cross-replica ordering guarantee across the process hop.
        """
        self._ensure_ready()
        add = [list(edge) for edge in add]
        remove = [list(edge) for edge in remove]
        wire_trace = self._wire_trace(trace)

        def apply() -> None:
            client = self._lease_update_client()
            response = client.update(add=add, remove=remove, trace=wire_trace)
            self._absorb_trace(trace, response)
            with self._lock:
                self._edge_estimate += len(add) - len(remove)

        # Updates join the pending accounting (so drain() waits for the
        # update lane too) but are exempt from the admission bound:
        # rejecting an update could leave replica copies diverged.
        with self._lock:
            self._pending += 1
        try:
            future = self._update_executor.submit(apply)
        except BaseException:
            with self._lock:
                self._pending -= 1
            raise
        future.add_done_callback(self._release_pending)
        return future

    def _lease_update_client(self):
        """The lane's long-lived client, redialled after poisoning."""
        from repro.server.client import Client

        client = self._update_client
        if client is None or client.broken or client.closed:
            if client is not None:
                client.close()
            client = Client(*self.address)
            self._update_client = client
        return client

    def watch(self, body: str) -> None:
        self._ensure_ready()
        with self._pool.lease() as client:
            client.watch(body)

    def reaches(self, body: str, source: object, target: object) -> bool:
        self._ensure_ready()
        with self._pool.lease() as client:
            return client.reaches(body, source, target)

    def checkpoint(self) -> dict:
        """Ask the worker to commit a shard checkpoint (wire verb)."""
        self._ensure_ready()
        with self._pool.lease() as client:
            return client.call("checkpoint")["checkpoint"]

    def metrics_text(self) -> str:
        """The worker process's registry, over the ``metrics`` verb."""
        self._ensure_ready()
        with self._pool.lease() as client:
            return client.metrics()

    def edge_count(self) -> int:
        with self._lock:
            return self._edge_estimate

    def stats(self) -> dict:
        """The worker's structured shard document, fetched over the wire."""
        self._ensure_ready()
        with self._pool.lease() as client:
            document = client.call("stats", shard=True)["stats"]["shard"]
        document["backend"] = "process"
        document["worker"] = {"pid": self.pid, "address": list(self.address)}
        with self._lock:
            # The worker never saw locally rejected requests; the router
            # folds this into the aggregate so thread/process stats agree.
            document["local_rejected"] = self._rejected
        return document

    def drain(self) -> None:
        """Wait until every locally admitted request has completed."""
        while True:
            with self._lock:
                if self._pending == 0:
                    return
            time.sleep(0.001)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
        if self._update_executor is not None:
            self._update_executor.shutdown(wait=True, cancel_futures=True)
        if self._update_client is not None:
            self._update_client.close()
            self._update_client = None
        if self._pool is not None:
            self._pool.close()
        if self._ready_conn is not None:
            self._ready_conn.close()
            self._ready_conn = None
        if self._process is not None and self._process.is_alive():
            self._process.terminate()  # SIGTERM -> graceful server stop
            self._process.join(timeout=self.terminate_timeout)
            if self._process.is_alive():
                self._process.kill()
                self._process.join(timeout=5)
        if self._process is not None:
            self._process = None
        if self._graph_path is not None:
            try:
                os.unlink(self._graph_path)
            except OSError:
                pass
            self._graph_path = None

    def __repr__(self) -> str:
        if self._closed:
            state = "closed"
        elif self._address is not None:
            state = f"serving on {self._address[0]}:{self._address[1]}"
        else:
            state = "spawning" if self._process is not None else "created"
        return f"ProcessBackend(shard={self.shard_id}, pid={self.pid}, {state})"
