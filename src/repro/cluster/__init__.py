"""``repro.cluster`` -- a sharded, replicated RPQ serving layer.

Scales the single-node :mod:`repro.server` stack out: one graph is
partitioned into shards (:func:`partition_graph` -- component-disjoint
by default, or ``strategy="edge-cut"`` for graphs a single giant
component would otherwise pin to one shard; the router then joins
per-shard partial paths over the partition's cut-edge relation), each
shard is served through a
transport-agnostic :class:`ShardBackend` -- either an in-process group
of R replicated :class:`~repro.db.GraphDB` sessions with their own
sharing-aware schedulers (``backend="thread"``), or a dedicated worker
process per shard for true multi-core scale-out
(``backend="process"``, :mod:`repro.cluster.worker`) -- and a
:class:`ClusterRouter` speaks the existing JSON-lines protocol over the
:class:`GraphCluster` router, so the unchanged
:class:`~repro.server.Client` talks to a cluster exactly as it talks to
one server.

>>> from repro.cluster import ClusterConfig, ClusterRouter, GraphCluster
>>> from repro.server import Client, ServerThread
>>> from repro.graph import paper_figure1_graph
>>> cluster = GraphCluster.open(
...     paper_figure1_graph(), config=ClusterConfig(shards=2, replicas=2)
... )
>>> with ServerThread(ClusterRouter(cluster)) as handle:
...     with Client(*handle.address) as client:
...         sorted(client.query("d.(b.c)+.c").pairs)
[(7, 3), (7, 5)]
"""

from repro.cluster.backends import (
    InProcessBackend,
    ProcessBackend,
    ShardBackend,
    ShardReplica,
)
from repro.cluster.partition import (
    PARTITION_STRATEGIES,
    GraphPartition,
    partition_graph,
    weakly_connected_components,
)
from repro.cluster.service import (
    ClusterConfig,
    ClusterRouter,
    GraphCluster,
)

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "GraphCluster",
    "GraphPartition",
    "InProcessBackend",
    "ProcessBackend",
    "ShardBackend",
    "ShardReplica",
    "partition_graph",
    "weakly_connected_components",
    "PARTITION_STRATEGIES",
]
