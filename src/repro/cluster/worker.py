"""The process-mode shard worker: one shard served from its own process.

:func:`worker_main` is the ``spawn`` entry point
:class:`~repro.cluster.backends.ProcessBackend` launches.  It

1. loads the shard graph -- from the edge-list dump the backend wrote
   (:mod:`repro.graph.io`) or from a picklable spawn-time ``loader``
   callable -- and re-adds the isolated vertices an edge-list cannot
   carry (nullable queries need their reflexive pairs);
2. builds an :class:`~repro.cluster.backends.InProcessBackend` over it
   (the same replica group, body-affine picking and drain-then-apply
   update broadcast as thread mode -- process mode changes the
   transport, never the semantics);
3. serves it over the ordinary JSON-lines protocol with
   :class:`ShardWorkerServer`, reports the bound ephemeral address back
   through the ready pipe, and runs until ``SIGTERM`` shuts it down
   gracefully (listener closed, schedulers drained, sessions closed).

Workers optionally log to a per-shard file (``log_path``); CI captures
those files as an artifact when a process-backend job fails.

The worker speaks the unchanged wire protocol -- any
:class:`~repro.server.Client` can talk to a shard worker directly --
plus two extensions: ``{"op": "stats", "shard": true}`` adds the
structured per-replica shard document the router's stats aggregation
pools (raw latency reservoirs included, so cluster-wide percentiles
stay percentiles of the pooled values, not averages of averages); and
``{"op": "query", "query": ..., "mode": "partial", "boundary": [...],
"frontier": [[start, vertex, state], ...]}`` answers one shard-local
partial evaluation for the router's boundary join (see
:func:`repro.rpq.partial.eval_partial_rpq`) with a ``partial``
response object instead of ``results``.
"""

from __future__ import annotations

import asyncio
import logging
import sys
import time
from dataclasses import dataclass, field

from repro.cluster.backends import InProcessBackend, aggregate_scheduler_stats
from repro.errors import ReproError
from repro.server import protocol
from repro.server.service import QueryServer, ServerConfig

__all__ = ["WorkerSpec", "ShardWorkerServer", "worker_main"]


@dataclass
class WorkerSpec:
    """Everything a spawned worker needs (must stay picklable)."""

    shard_id: int
    #: Edge-list dump of the shard graph; ignored when ``loader`` is set.
    graph_path: str | None = None
    #: Picklable zero-argument callable returning the shard graph --
    #: the escape hatch for graphs an edge-list dump cannot carry
    #: (see :func:`repro.graph.io.format_edge_lines`'s token rules).
    loader: object | None = None
    #: Degree-0 vertices of the shard (edge lists only carry edges).
    isolated_vertices: list = field(default_factory=list)
    engine: str = "rtc"
    replicas: int = 1
    workers: int = 2
    max_queue: int = 256
    batch_window: float = 0.005
    max_batch: int = 64
    engine_kwargs: dict = field(default_factory=dict)
    host: str = "127.0.0.1"
    log_path: str | None = None
    #: Durable data directory (WAL + snapshots + RTC store).  When it
    #: holds committed state the worker *recovers* from it -- replaying
    #: snapshot + WAL before reporting ready -- and the graph handoff
    #: fields above are ignored.
    data_dir: str | None = None
    #: Auto-checkpoint after this many logged updates (None = manual).
    checkpoint_every: int | None = None


class ShardWorkerServer(QueryServer):
    """A :class:`QueryServer` whose scheduler *and* session surface is
    one :class:`~repro.cluster.backends.InProcessBackend`.

    The base handlers drive the backend directly (``submit`` /
    ``submit_update`` / ``watch`` / ``reaches``); only ``stats`` is
    specialised (shard-document extension) and ``query``/``update`` keep
    their blocking steps off the event loop, mirroring
    :class:`~repro.cluster.ClusterRouter`.
    """

    def __init__(
        self, backend: InProcessBackend, config: ServerConfig | None = None
    ) -> None:
        self.backend = backend
        super().__init__(db=backend, config=config, scheduler=backend)
        # The base ``checkpoint`` verb routes to self.db.checkpoint --
        # here that *is* the backend's drain-then-commit, no override
        # needed.

    async def _op_query(self, request_id, request) -> dict:
        if request.get("mode") == "partial":
            return await self._op_partial_query(request_id, request)
        # Warm the backend's closure-key memo off the loop: first
        # contact with a query text walks its DNF, which must not stall
        # the socket multiplexer.
        queries = request.get("queries")
        if queries is None and isinstance(request.get("query"), str):
            queries = [request["query"]]
        if isinstance(queries, list) and queries and all(
            isinstance(query, str) for query in queries
        ):
            missing = [
                text
                for text in queries
                if text not in self.backend._key_memo
            ]
            if missing:

                def warm() -> None:
                    for text in missing:
                        try:
                            self.backend.route_key(text)
                        except ReproError:
                            # Warm-up only: the base handler re-parses
                            # and reports the real error to the client.
                            # Genuine bugs propagate.
                            return

                await self._in_executor(warm)
        return await super()._op_query(request_id, request)

    async def _op_partial_query(self, request_id, request) -> dict:
        """The ``mode: "partial"`` query extension (boundary-join path)."""
        text = request.get("query")
        if not isinstance(text, str):
            raise protocol.ProtocolError(
                "partial-mode 'query' op needs a single 'query' string"
            )
        boundary = request.get("boundary", [])
        if not isinstance(boundary, list):
            raise protocol.ProtocolError("'boundary' must be a vertex list")
        frontier = request.get("frontier")
        if isinstance(frontier, dict):
            # Packed frontier: the router ships its dispatch rows as hex
            # bitmaps too; the decoder is the ordinary polymorphic one.
            frontier = protocol.wire_to_rows(frontier)
        elif frontier is not None:
            if not isinstance(frontier, list) or not all(
                isinstance(triple, list) and len(triple) == 3
                for triple in frontier
            ):
                raise protocol.ProtocolError(
                    "'frontier' must be a list of [start, vertex, state] triples"
                )
            frontier = [tuple(triple) for triple in frontier]
        enc = request.get("enc")
        timeout = request.get("timeout")
        # A propagated router trace joins here: the backend activates it
        # around the evaluation, the session records its ``partial``
        # span into it, and the subtree ships back for the router's
        # join-round span to adopt.
        tracer, parent, root_span, echo = self._begin_trace(request)
        trace = (tracer, parent) if tracer is not None else None
        # Admission + NFA compilation happen off the loop (first contact
        # with a text compiles its automaton), like the key warm-up.
        future = await self._in_executor(
            lambda: self.backend.partial_query(
                text,
                boundary=boundary,
                frontier=frontier,
                timeout=timeout,
                trace=trace,
            )
        )
        accepts, rows, elapsed = await asyncio.wrap_future(future)
        payload = {
            "accepts": protocol.pairs_to_wire(accepts, enc=enc),
            "boundary": protocol.rows_to_wire(rows, enc=enc),
            "time": elapsed,
        }
        if tracer is None:
            return protocol.ok_response(request_id, partial=payload)
        if root_span is not None:
            tracer.finish(root_span)
        if not echo:
            return protocol.ok_response(request_id, partial=payload)
        return protocol.ok_response(
            request_id, partial=payload, trace=tracer.to_wire()
        )

    async def _op_update(self, request_id, request) -> dict:
        add = self._edge_list(request.get("add", ()), "add")
        remove = self._edge_list(request.get("remove", ()), "remove")
        if not add and not remove:
            raise protocol.ProtocolError(
                "'update' op needs 'add' and/or 'remove' edges"
            )
        tracer, parent, root_span, echo = self._begin_trace(request)
        started = time.monotonic()
        trace = (tracer, parent) if tracer is not None else None
        # Blocking admission to every replica queue -- off the loop.
        future = await self._in_executor(
            lambda: self.backend.update(add=add, remove=remove, trace=trace)
        )
        await asyncio.wrap_future(future)
        if tracer is None:
            return protocol.ok_response(
                request_id, added=len(add), removed=len(remove)
            )
        await self._finish_trace(
            tracer,
            root_span,
            [f"update(+{len(add)},-{len(remove)})"],
            started,
        )
        if not echo:
            return protocol.ok_response(
                request_id, added=len(add), removed=len(remove)
            )
        return protocol.ok_response(
            request_id,
            added=len(add),
            removed=len(remove),
            trace=tracer.to_wire(),
        )

    async def _op_stats(self, request_id, request) -> dict:
        def collect() -> tuple[dict, dict]:
            document = self.backend.stats()
            scheduler = aggregate_scheduler_stats(
                [replica["scheduler"] for replica in document["replicas"]],
                document["latency_values"],
            )
            return document, scheduler

        document, scheduler = await self._in_executor(collect)
        stats = {
            "server": {
                "address": list(self.address),
                "connections": self._connections,
                "version": protocol.PROTOCOL_VERSION,
            },
            "scheduler": scheduler,
            "session": document["replicas"][0]["session"],
        }
        if request.get("shard"):
            stats["shard"] = document
        return protocol.ok_response(request_id, stats=stats)


def _configure_logging(spec: WorkerSpec) -> logging.Logger:
    logger = logging.getLogger(f"repro.cluster.worker.shard{spec.shard_id}")
    logger.setLevel(logging.INFO)
    if spec.log_path:
        handler = logging.FileHandler(spec.log_path, encoding="utf-8")
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s shard{} %(levelname)s %(message)s".format(
                    spec.shard_id
                )
            )
        )
        logger.addHandler(handler)
    return logger


def worker_main(spec: WorkerSpec, ready_conn) -> None:
    """Process entry point: serve one shard until SIGTERM.

    Reports ``("ready", host, port)`` or ``("error", message)`` through
    ``ready_conn`` exactly once, then serves until terminated.  Exits
    non-zero on startup failure or crash so the parent's ``exitcode``
    is meaningful.
    """
    logger = _configure_logging(spec)
    try:
        recovering = False
        if spec.data_dir is not None:
            from repro.storage.recovery import has_state

            recovering = has_state(spec.data_dir)
        if recovering:
            # Recovery happens inside InProcessBackend (snapshot + WAL
            # replay + warm RTC install) -- strictly before the ready
            # message, so a parent that saw "ready" talks to a shard
            # already caught up with its own log.
            graph = None
            logger.info(
                "shard %d recovering from %s", spec.shard_id, spec.data_dir
            )
        elif spec.loader is not None:
            graph = spec.loader()
        elif spec.graph_path is not None:
            from repro.graph.io import load_edge_list

            graph = load_edge_list(spec.graph_path)
        else:
            raise ValueError(
                f"shard {spec.shard_id}: no graph source and no recoverable "
                f"state in {spec.data_dir!r}"
            )
        if graph is not None:
            for vertex in spec.isolated_vertices:
                graph.add_vertex(vertex)
        backend = InProcessBackend(
            spec.shard_id,
            graph,
            engine=spec.engine,
            replicas=spec.replicas,
            workers=spec.workers,
            max_queue=spec.max_queue,
            batch_window=spec.batch_window,
            max_batch=spec.max_batch,
            engine_kwargs=spec.engine_kwargs,
            storage_dir=spec.data_dir,
            checkpoint_every=spec.checkpoint_every,
            start=False,
        )
        server = ShardWorkerServer(
            backend,
            ServerConfig(host=spec.host, port=0, default_timeout=None),
        )
    except BaseException as error:  # noqa: BLE001  # repro: noqa[RPR701] -- worker-process boundary: the failure is serialised to the parent over the ready pipe, then the process exits
        logger.exception("shard %d failed to start", spec.shard_id)
        ready_conn.send(("error", f"{type(error).__name__}: {error}"))
        ready_conn.close()
        sys.exit(1)

    def announce(address) -> None:
        host, port = address
        served = backend.replicas[0].db.graph
        logger.info(
            "serving shard %d (|V|=%d, |E|=%d, %d replicas x %d workers, "
            "engine=%s%s) on %s:%d",
            spec.shard_id,
            served.num_vertices,
            served.num_edges,
            spec.replicas,
            spec.workers,
            spec.engine,
            ", recovered" if recovering else "",
            host,
            port,
        )
        ready_conn.send(("ready", host, port))
        ready_conn.close()

    try:
        server.run(ready_callback=announce)
    except BaseException:  # noqa: BLE001  # repro: noqa[RPR701] -- worker-process boundary: the crash log is the artifact; the process exits 1 and the parent sees the dead socket
        logger.exception("shard %d crashed", spec.shard_id)
        sys.exit(1)
    logger.info("shard %d shut down cleanly", spec.shard_id)
