"""Partitioning one labeled multigraph into component-disjoint shards.

The cluster's correctness rule is simple: a satisfying path of any RPQ
stays inside one weakly-connected component of ``G`` (every step follows
an edge, in either direction never -- so the path's vertices are all
weakly connected to its start).  A partition that keeps every component
whole therefore makes the per-shard answers *disjoint* and their union
exactly the single-session answer -- no cross-shard joins, no duplicate
elimination beyond a set union.

:func:`partition_graph` computes the weakly-connected components and
bin-packs them onto ``num_shards`` shards greedily, largest (by edge
count) first onto the currently lightest shard.  The resulting
:class:`GraphPartition` keeps the ``vertex -> shard`` assignment so the
serving layer can route streaming updates to the owning shard, and can
``assign`` brand-new vertices as updates introduce them.

Graphs dominated by one giant component do not shard usefully at this
layer (the giant component lands on one shard); that is inherent to
component-disjoint partitioning, not to this implementation -- splitting
a component needs cross-shard path joins, which the roadmap leaves to a
future message-passing evaluator.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable

from repro.errors import ClusterError
from repro.graph.multigraph import LabeledMultigraph

__all__ = ["GraphPartition", "partition_graph", "weakly_connected_components"]


def weakly_connected_components(graph: LabeledMultigraph) -> list[list]:
    """The weakly-connected components of ``graph`` (isolated vertices too).

    Each component is a list of vertices; components are returned in a
    deterministic order (sorted by string form of their representative)
    so partitioning is reproducible across processes and hash seeds.
    """
    seen: set = set()
    components: list[list] = []
    for root in sorted(graph.vertices(), key=str):
        if root in seen:
            continue
        seen.add(root)
        component = [root]
        stack = [root]
        while stack:
            vertex = stack.pop()
            for _label, target in graph.out_edges(vertex):
                if target not in seen:
                    seen.add(target)
                    component.append(target)
                    stack.append(target)
            for _label, source in graph.in_edges(vertex):
                if source not in seen:
                    seen.add(source)
                    component.append(source)
                    stack.append(source)
        components.append(component)
    return components


class GraphPartition:
    """A component-disjoint split of one graph into shard subgraphs.

    Holds the shard subgraphs themselves plus the ``vertex -> shard``
    assignment used for routing.  The assignment is mutable (updates can
    introduce vertices) and internally locked, so the serving layer may
    route from multiple threads.
    """

    def __init__(self, shards: list[LabeledMultigraph], shard_of: dict) -> None:
        if not shards:
            raise ClusterError("a partition needs at least one shard")
        self.shards = shards
        self._shard_of = dict(shard_of)
        self._lock = threading.Lock()

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, vertex: object) -> int | None:
        """The shard owning ``vertex``, or None for an unknown vertex."""
        with self._lock:
            return self._shard_of.get(vertex)

    def assign(self, vertex: object, shard: int) -> int:
        """Record ``vertex`` as owned by ``shard`` (first assignment wins).

        Returns the effective shard, which may differ from the request
        when a concurrent router already assigned the vertex.
        """
        if not 0 <= shard < len(self.shards):
            raise ClusterError(
                f"shard {shard} is out of range for {len(self.shards)} shards"
            )
        with self._lock:
            return self._shard_of.setdefault(vertex, shard)

    def shard_for_edge(self, source: object, target: object) -> int | None:
        """The shard an edge between ``source`` and ``target`` belongs to.

        Returns None when both endpoints are new to the cluster (the
        caller picks a shard and :meth:`assign`\\ s them).  Raises
        :class:`~repro.errors.ClusterError` when the endpoints live on
        two *different* shards: adding that edge would merge two
        components across a shard boundary, which the component-disjoint
        topology cannot express without re-partitioning.
        """
        with self._lock:
            source_shard = self._shard_of.get(source)
            target_shard = self._shard_of.get(target)
        if source_shard is None and target_shard is None:
            return None
        if source_shard is None:
            return target_shard
        if target_shard is None:
            return source_shard
        if source_shard != target_shard:
            raise ClusterError(
                f"edge ({source!r} -> {target!r}) crosses shards "
                f"{source_shard} and {target_shard}; cross-shard edges "
                "require re-partitioning and are not supported"
            )
        return source_shard

    def stats(self) -> dict:
        """Per-shard size statistics (the ``stats`` verb's cluster section)."""
        return {
            "num_shards": self.num_shards,
            "shards": [
                {
                    "shard": index,
                    "vertices": graph.num_vertices,
                    "edges": graph.num_edges,
                    "labels": graph.num_labels,
                }
                for index, graph in enumerate(self.shards)
            ],
        }

    def __repr__(self) -> str:
        sizes = ", ".join(str(graph.num_edges) for graph in self.shards)
        return f"GraphPartition(shards={self.num_shards}, edges=[{sizes}])"


def partition_graph(
    graph: LabeledMultigraph, num_shards: int
) -> GraphPartition:
    """Split ``graph`` into ``num_shards`` component-disjoint subgraphs.

    Components are packed greedily by descending edge count onto the
    currently lightest shard, so shard edge counts stay balanced whenever
    the component size distribution allows it.  With fewer components
    than shards, the surplus shards hold empty graphs (they simply answer
    every query with the empty set).
    """
    if num_shards < 1:
        raise ClusterError(f"num_shards must be >= 1, got {num_shards}")

    components = weakly_connected_components(graph)

    def component_edges(component: Iterable) -> int:
        return sum(graph.out_degree(vertex) for vertex in component)

    weighted = sorted(
        ((component_edges(component), component) for component in components),
        key=lambda item: (-item[0], -len(item[1]), str(item[1][0])),
    )

    loads = [0] * num_shards
    shard_of: dict = {}
    for weight, component in weighted:
        shard = loads.index(min(loads))
        loads[shard] += weight
        for vertex in component:
            shard_of[vertex] = shard

    shards = [LabeledMultigraph() for _ in range(num_shards)]
    for vertex, shard in shard_of.items():
        shards[shard].add_vertex(vertex)
    for source, label, target in graph.edges():
        shards[shard_of[source]].add_edge(source, label, target)
    return GraphPartition(shards, shard_of)
