"""Partitioning one labeled multigraph into shard subgraphs.

Two strategies coexist:

``component`` (the default, and the fast path)
    The cluster's original correctness rule: a satisfying path of any
    RPQ stays inside one weakly-connected component of ``G`` (every step
    follows an edge, so the path's vertices are all weakly connected to
    its start).  A partition that keeps every component whole makes the
    per-shard answers *disjoint* and their union exactly the
    single-session answer -- no cross-shard joins, no duplicate
    elimination beyond a set union.  :func:`partition_graph` bin-packs
    the components greedily, largest (by edge count) first onto the
    currently lightest shard.

``edge-cut``
    Any partition is legal: vertices are assigned in balanced,
    BFS-contiguous ranges, same-shard edges land in the shard
    subgraphs, and edges whose endpoints live on two shards are recorded
    in the partition's explicit ``cut_edges`` relation instead of any
    subgraph.  The router compensates by joining per-shard partial paths
    over the cut relation (see :mod:`repro.rpq.partial` and
    :class:`repro.relalg.BoundaryJoin`); when the cut relation is empty
    the union merge applies unchanged.

``auto``
    ``component`` unless one component dominates (the heaviest shard
    would reach twice the ideal load), then ``edge-cut``.

The resulting :class:`GraphPartition` keeps the ``vertex -> shard``
assignment so the serving layer can route streaming updates to the
owning shard, can ``assign`` brand-new vertices as updates introduce
them, and tracks the cut relation as cross-shard edges come and go.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Iterable

from repro.errors import ClusterError, GraphError
from repro.graph.multigraph import LabeledMultigraph

__all__ = [
    "GraphPartition",
    "partition_graph",
    "weakly_connected_components",
    "PARTITION_STRATEGIES",
]

#: Recognised ``partition_graph`` strategies.
PARTITION_STRATEGIES = ("component", "edge-cut", "auto")


def weakly_connected_components(graph: LabeledMultigraph) -> list[list]:
    """The weakly-connected components of ``graph`` (isolated vertices too).

    Each component is a list of vertices; components are returned in a
    deterministic order (sorted by string form of their representative)
    so partitioning is reproducible across processes and hash seeds.
    """
    seen: set = set()
    components: list[list] = []
    for root in sorted(graph.vertices(), key=str):
        if root in seen:
            continue
        seen.add(root)
        component = [root]
        stack = [root]
        while stack:
            vertex = stack.pop()
            for _label, target in graph.out_edges(vertex):
                if target not in seen:
                    seen.add(target)
                    component.append(target)
                    stack.append(target)
            for _label, source in graph.in_edges(vertex):
                if source not in seen:
                    seen.add(source)
                    component.append(source)
                    stack.append(source)
        components.append(component)
    return components


class GraphPartition:
    """A split of one graph into shard subgraphs plus a cut relation.

    Holds the shard subgraphs themselves, the ``vertex -> shard``
    assignment used for routing, and the ``cut_edges`` relation: every
    ``(source, label, target)`` edge whose endpoints live on different
    shards.  Component-disjoint partitions simply have an empty cut
    relation.  Assignment and cut state are mutable (updates introduce
    vertices and cross-shard edges) and internally locked, so the
    serving layer may route from multiple threads.
    """

    def __init__(
        self,
        shards: list[LabeledMultigraph],
        shard_of: dict,
        cut_edges: Iterable[tuple] = (),
    ) -> None:
        if not shards:
            raise ClusterError(
                "a partition needs at least one shard",
                code="cluster.topology",
            )
        self.shards = shards
        self._shard_of = dict(shard_of)
        self._cut_edges = {tuple(edge) for edge in cut_edges}
        self._lock = threading.Lock()

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def has_cuts(self) -> bool:
        """True when at least one edge crosses a shard boundary."""
        with self._lock:
            return bool(self._cut_edges)

    def cut_relation(self) -> frozenset:
        """A snapshot of the cross-shard ``(source, label, target)`` edges."""
        with self._lock:
            return frozenset(self._cut_edges)

    def boundary_vertices(self, shard: int) -> frozenset:
        """The vertices of ``shard`` incident to at least one cut edge."""
        with self._lock:
            return frozenset(
                vertex
                for source, _label, target in self._cut_edges
                for vertex in (source, target)
                if self._shard_of.get(vertex) == shard
            )

    def record_cut(self, source: object, label: str, target: object) -> None:
        """Add one cross-shard edge to the cut relation.

        Raises :class:`~repro.errors.GraphError` on a duplicate, matching
        the multigraph's own duplicate-edge contract.
        """
        edge = (source, label, target)
        with self._lock:
            if edge in self._cut_edges:
                raise GraphError(
                    f"duplicate cross-shard edge {source!r} -{label}-> {target!r}"
                )
            self._cut_edges.add(edge)

    def discard_cut(self, source: object, label: str, target: object) -> bool:
        """Remove one cut edge; returns False when it was not recorded."""
        edge = (source, label, target)
        with self._lock:
            if edge not in self._cut_edges:
                return False
            self._cut_edges.remove(edge)
            return True

    def has_cut(self, source: object, label: str, target: object) -> bool:
        with self._lock:
            return (source, label, target) in self._cut_edges

    def shard_of(self, vertex: object) -> int | None:
        """The shard owning ``vertex``, or None for an unknown vertex."""
        with self._lock:
            return self._shard_of.get(vertex)

    def assign(self, vertex: object, shard: int) -> int:
        """Record ``vertex`` as owned by ``shard`` (first assignment wins).

        Returns the effective shard, which may differ from the request
        when a concurrent router already assigned the vertex.
        """
        if not 0 <= shard < len(self.shards):
            raise ClusterError(
                f"shard {shard} is out of range for {len(self.shards)} shards",
                code="cluster.topology",
                shards=(shard,),
            )
        with self._lock:
            return self._shard_of.setdefault(vertex, shard)

    def edge_owners(self, source: object, target: object) -> tuple:
        """The ``(source_shard, target_shard)`` owners of an edge's endpoints.

        Either entry is None for a vertex the cluster has not seen.
        """
        with self._lock:
            return (self._shard_of.get(source), self._shard_of.get(target))

    def shard_for_edge(self, source: object, target: object) -> int | None:
        """The single shard an edge between ``source`` and ``target`` lives on.

        Returns None when both endpoints are new to the cluster (the
        caller picks a shard and :meth:`assign`\\ s them) *and* when the
        endpoints live on two different shards -- a cross-shard edge
        belongs to no shard subgraph; it is recorded in the cut relation
        instead (use :meth:`edge_owners` to distinguish the two cases).
        """
        source_shard, target_shard = self.edge_owners(source, target)
        if source_shard is None and target_shard is None:
            return None
        if source_shard is None:
            return target_shard
        if target_shard is None:
            return source_shard
        if source_shard != target_shard:
            return None
        return source_shard

    def stats(self) -> dict:
        """Per-shard size statistics (the ``stats`` verb's cluster section)."""
        with self._lock:
            cut_count = len(self._cut_edges)
        return {
            "num_shards": self.num_shards,
            "cut_edges": cut_count,
            "shards": [
                {
                    "shard": index,
                    "vertices": graph.num_vertices,
                    "edges": graph.num_edges,
                    "labels": graph.num_labels,
                    "boundary": len(self.boundary_vertices(index)),
                }
                for index, graph in enumerate(self.shards)
            ],
        }

    def __repr__(self) -> str:
        sizes = ", ".join(str(graph.num_edges) for graph in self.shards)
        with self._lock:
            cuts = len(self._cut_edges)
        return (
            f"GraphPartition(shards={self.num_shards}, edges=[{sizes}], "
            f"cuts={cuts})"
        )


def _bfs_vertex_order(graph: LabeledMultigraph) -> list:
    """All vertices in deterministic BFS order, component by component.

    BFS contiguity keeps most edges inside a chunk when the order is
    sliced into ranges, which is what makes naive range assignment a
    reasonable edge-cut partitioner.
    """
    seen: set = set()
    order: list = []
    for root in sorted(graph.vertices(), key=str):
        if root in seen:
            continue
        seen.add(root)
        queue = deque([root])
        while queue:
            vertex = queue.popleft()
            order.append(vertex)
            neighbours = {target for _label, target in graph.out_edges(vertex)}
            neighbours.update(
                source for _label, source in graph.in_edges(vertex)
            )
            for neighbour in sorted(neighbours, key=str):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
    return order


def _partition_components(
    graph: LabeledMultigraph, num_shards: int
) -> GraphPartition:
    components = weakly_connected_components(graph)

    def component_edges(component: Iterable) -> int:
        return sum(graph.out_degree(vertex) for vertex in component)

    weighted = sorted(
        ((component_edges(component), component) for component in components),
        key=lambda item: (-item[0], -len(item[1]), str(item[1][0])),
    )

    loads = [0] * num_shards
    shard_of: dict = {}
    for weight, component in weighted:
        shard = loads.index(min(loads))
        loads[shard] += weight
        for vertex in component:
            shard_of[vertex] = shard

    shards = [LabeledMultigraph() for _ in range(num_shards)]
    for vertex, shard in shard_of.items():
        shards[shard].add_vertex(vertex)
    for source, label, target in graph.edges():
        shards[shard_of[source]].add_edge(source, label, target)
    return GraphPartition(shards, shard_of)


def _partition_edge_cut(
    graph: LabeledMultigraph, num_shards: int
) -> GraphPartition:
    order = _bfs_vertex_order(graph)
    total = len(order)
    base, extra = divmod(total, num_shards)

    shard_of: dict = {}
    cursor = 0
    for shard in range(num_shards):
        size = base + (1 if shard < extra else 0)
        for vertex in order[cursor : cursor + size]:
            shard_of[vertex] = shard
        cursor += size

    shards = [LabeledMultigraph() for _ in range(num_shards)]
    for vertex, shard in shard_of.items():
        shards[shard].add_vertex(vertex)
    cut_edges = []
    for source, label, target in graph.edges():
        source_shard = shard_of[source]
        if source_shard == shard_of[target]:
            shards[source_shard].add_edge(source, label, target)
        else:
            cut_edges.append((source, label, target))
    return GraphPartition(shards, shard_of, cut_edges)


def partition_graph(
    graph: LabeledMultigraph,
    num_shards: int,
    strategy: str = "component",
) -> GraphPartition:
    """Split ``graph`` into ``num_shards`` subgraphs.

    ``strategy`` selects how (underscores are accepted for hyphens):

    ``"component"``
        Whole weakly-connected components, packed greedily by descending
        edge count onto the currently lightest shard.  Shard answers are
        disjoint and union-mergeable; the cut relation is empty.  With
        fewer components than shards, the surplus shards hold empty
        graphs (they simply answer every query with the empty set).
    ``"edge-cut"``
        Balanced contiguous ranges of a deterministic BFS vertex order;
        cross-range edges land in the partition's ``cut_edges`` relation
        and the router joins partial paths over them.  This is what
        makes a single giant component shard at all.
    ``"auto"``
        ``"component"`` unless its heaviest shard would reach twice the
        ideal edge load, then ``"edge-cut"``.
    """
    if num_shards < 1:
        raise ClusterError(
            f"num_shards must be >= 1, got {num_shards}",
            code="cluster.topology",
        )
    strategy = str(strategy).replace("_", "-")
    if strategy not in PARTITION_STRATEGIES:
        raise ClusterError(
            f"unknown partition strategy {strategy!r}; expected one of "
            f"{', '.join(PARTITION_STRATEGIES)}",
            code="cluster.unsupported",
        )

    if strategy == "auto":
        candidate = _partition_components(graph, num_shards)
        if num_shards == 1 or graph.num_edges == 0:
            return candidate
        heaviest = max(shard.num_edges for shard in candidate.shards)
        ideal = graph.num_edges / num_shards
        # Strict: a single giant component on two shards sits exactly at
        # 2x ideal, and that is precisely the case edge-cut exists for.
        if heaviest < 2 * ideal:
            return candidate
        strategy = "edge-cut"

    if strategy == "component":
        return _partition_components(graph, num_shards)
    return _partition_edge_cut(graph, num_shards)
