"""Dataset generation: R-MAT synthetics and Table-IV real-data stand-ins.

Public surface:

* :func:`rmat_graph` / :func:`rmat_n` -- the paper's TrillionG-generated
  ``RMAT_N`` family, re-implemented from the R-MAT model;
* :data:`TABLE4_SPECS` and the per-dataset factories
  (:func:`yago2s_like`, :func:`robots_like`, :func:`advogato_like`,
  :func:`youtube_like`, :func:`load_standin`) -- synthetic graphs matching
  the published |V| / |E| / |Sigma| statistics of Table IV.
"""

from repro.datasets.rmat import (
    default_labels,
    rmat_component_graph,
    rmat_edges,
    rmat_graph,
    rmat_n,
)
from repro.datasets.standins import (
    TABLE4_SPECS,
    DatasetSpec,
    advogato_like,
    load_standin,
    make_standin,
    robots_like,
    yago2s_like,
    youtube_like,
)

__all__ = [
    "rmat_component_graph",
    "rmat_edges",
    "rmat_graph",
    "rmat_n",
    "default_labels",
    "DatasetSpec",
    "TABLE4_SPECS",
    "make_standin",
    "yago2s_like",
    "robots_like",
    "advogato_like",
    "youtube_like",
    "load_standin",
]
