"""Stand-ins for the paper's real datasets (Table IV).

The paper evaluates on four real graphs it downloaded (Yago2s, Robots,
Advogato, Youtube_Sampled).  The dumps are not redistributable and this
environment has no network access, so each dataset is replaced by a
synthetic graph matching the *published statistics* that the paper's
analysis keys on -- ``|V|``, ``|E|``, ``|Sigma|`` and hence the average
vertex degree per label ``|E| / (|V| |Sigma|)``:

========  ===========  ===========  =====  ======
dataset   |V|          |E|          |Σ|    degree
========  ===========  ===========  =====  ======
Yago2s    108,048,761  244,796,155  104    0.02
Robots    1,725        3,596        4      0.52
Advogato  6,541        51,127       3      2.61
Youtube   1,600        91,343       5      11.42
========  ===========  ===========  =====  ======

Robots, Advogato and Youtube are generated at the **published size**;
Yago2s is scaled down by a configurable factor (default 1/1000) because a
hundred-million-vertex graph is outside a pure-Python testbed -- what its
experiment demonstrates is the *degree-0.02 regime* where the average SCC
size of ``G_R`` is ~1.00 and RTCSharing's reduction buys nothing, and that
regime is preserved exactly (see DESIGN.md, substitutions).

Edges are drawn from the R-MAT model (skewed, like the real social/web
graphs) over the next power-of-two vertex grid and folded onto the target
vertex count; labels are uniform random, matching the paper's own
treatment of the unlabeled Youtube dump ("randomly added a label /
direction").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.rmat import DEFAULT_PROBABILITIES, default_labels, rmat_edges
from repro.errors import WorkloadError
from repro.graph.multigraph import LabeledMultigraph

__all__ = [
    "DatasetSpec",
    "TABLE4_SPECS",
    "make_standin",
    "yago2s_like",
    "robots_like",
    "advogato_like",
    "youtube_like",
    "load_standin",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one Table-IV dataset."""

    name: str
    num_vertices: int
    num_edges: int
    num_labels: int

    @property
    def degree(self) -> float:
        """Average vertex degree per label, the paper's key statistic."""
        return self.num_edges / (self.num_vertices * self.num_labels)

    def scaled(self, fraction: float) -> "DatasetSpec":
        """The same degree regime at ``fraction`` of the size."""
        return DatasetSpec(
            name=self.name,
            num_vertices=max(2, round(self.num_vertices * fraction)),
            num_edges=max(1, round(self.num_edges * fraction)),
            num_labels=self.num_labels,
        )


TABLE4_SPECS: dict[str, DatasetSpec] = {
    "yago2s": DatasetSpec("yago2s", 108_048_761, 244_796_155, 104),
    "robots": DatasetSpec("robots", 1_725, 3_596, 4),
    "advogato": DatasetSpec("advogato", 6_541, 51_127, 3),
    "youtube": DatasetSpec("youtube", 1_600, 91_343, 5),
}


def make_standin(spec: DatasetSpec, seed: int = 0, max_rounds: int = 64) -> LabeledMultigraph:
    """Generate a labeled multigraph matching ``spec``'s statistics.

    R-MAT pairs over the next power-of-two grid are folded modulo
    ``spec.num_vertices``; folding preserves the heavy-tailed degree
    skew while hitting the exact vertex count.
    """
    capacity = spec.num_vertices * spec.num_vertices * spec.num_labels
    if spec.num_edges > capacity:
        raise WorkloadError(
            f"{spec.name}: {spec.num_edges} labeled edges exceed the "
            f"{capacity}-triple capacity"
        )
    scale = max(1, int(np.ceil(np.log2(spec.num_vertices))))
    rng = np.random.default_rng(seed)
    labels = default_labels(spec.num_labels)

    graph = LabeledMultigraph()
    for vertex in range(spec.num_vertices):
        graph.add_vertex(vertex)

    remaining = spec.num_edges
    for _round in range(max_rounds):
        if remaining <= 0:
            break
        batch = max(remaining + remaining // 4 + 16, 64)
        pairs = rmat_edges(scale, batch, rng, DEFAULT_PROBABILITIES)
        pairs %= spec.num_vertices
        label_ids = rng.integers(0, spec.num_labels, size=batch)
        for (source, target), label_id in zip(pairs.tolist(), label_ids.tolist()):
            if remaining <= 0:
                break
            if graph.add_edge_if_absent(source, labels[label_id], target):
                remaining -= 1
    if remaining > 0:
        raise WorkloadError(
            f"{spec.name}: could not place {spec.num_edges} distinct edges"
        )
    return graph


def yago2s_like(fraction: float = 1 / 1000, seed: int = 0) -> LabeledMultigraph:
    """Yago2s stand-in at ``fraction`` of the published size (degree 0.02).

    The degree-0.02, avg-SCC-size-1.00 regime -- the paper's adversarial
    case for RTCSharing -- is preserved at any fraction.
    """
    return make_standin(TABLE4_SPECS["yago2s"].scaled(fraction), seed=seed)


def robots_like(seed: int = 0, fraction: float = 1.0) -> LabeledMultigraph:
    """Robots stand-in; published size (1725 V, 3596 E, 4 labels) by default.

    ``fraction`` scales |V| and |E| together, preserving the degree regime
    (used by the benchmarks to keep pure-Python runtimes feasible).
    """
    spec = TABLE4_SPECS["robots"]
    if fraction != 1.0:
        spec = spec.scaled(fraction)
    return make_standin(spec, seed=seed)


def advogato_like(seed: int = 0, fraction: float = 1.0) -> LabeledMultigraph:
    """Advogato stand-in; published size (6541 V, 51127 E, 3 labels) by default.

    ``fraction`` scales |V| and |E| together, preserving the 2.61
    degree-per-label regime the paper's analysis keys on.
    """
    spec = TABLE4_SPECS["advogato"]
    if fraction != 1.0:
        spec = spec.scaled(fraction)
    return make_standin(spec, seed=seed)


def youtube_like(seed: int = 0, fraction: float = 1.0) -> LabeledMultigraph:
    """Youtube_Sampled stand-in; published size (1600 V, 91343 E) by default.

    ``fraction`` scales |V| and |E| together, preserving the 11.42
    degree-per-label regime.
    """
    spec = TABLE4_SPECS["youtube"]
    if fraction != 1.0:
        spec = spec.scaled(fraction)
    return make_standin(spec, seed=seed)


_FACTORIES = {
    "yago2s": yago2s_like,
    "robots": robots_like,
    "advogato": advogato_like,
    "youtube": youtube_like,
}


def load_standin(name: str, seed: int = 0, **kwargs) -> LabeledMultigraph:
    """Load a Table-IV stand-in by dataset name (case-insensitive)."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown dataset {name!r}; expected one of {sorted(_FACTORIES)}"
        ) from None
    return factory(seed=seed, **kwargs)
