"""R-MAT synthetic graph generation (the paper's TrillionG stand-in).

The paper generates its synthetic graphs with TrillionG [18], a
trillion-scale implementation of the R-MAT recursive-matrix model [17],
then assigns a uniformly random label to every edge.  This module
re-implements the R-MAT model directly (numpy-vectorised: one quadrant
draw per adjacency-matrix bit for the whole edge batch at once) and the
same random labeling.

:func:`rmat_n` mirrors the paper's ``RMAT_N`` family: ``|V| = 2^scale``
vertices and ``2^{N+scale}`` edges over ``|Sigma| = 4`` labels, i.e. an
average vertex degree per label of ``2^{N-2}``.  The paper uses
``scale = 13``; the Python benchmarks default to smaller scales with the
*same degree sweep*, which is the variable Figs. 10-13 study (see
DESIGN.md, substitutions).

Duplicate ``(source, label, target)`` triples are dropped (the data model
requires distinct labels between a vertex pair); the generator oversamples
in rounds until the requested edge count is reached or the space is
saturated.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.graph.multigraph import LabeledMultigraph

__all__ = [
    "rmat_edges",
    "rmat_graph",
    "rmat_n",
    "rmat_component_graph",
    "rmat_connected_graph",
    "default_labels",
]

#: The classic R-MAT quadrant probabilities [17].
DEFAULT_PROBABILITIES = (0.57, 0.19, 0.19, 0.05)


def default_labels(num_labels: int) -> list[str]:
    """Label alphabet ``l0, l1, ...`` used by the synthetic datasets."""
    return [f"l{i}" for i in range(num_labels)]


def rmat_edges(
    scale: int,
    num_edges: int,
    rng: np.random.Generator,
    probabilities: tuple[float, float, float, float] = DEFAULT_PROBABILITIES,
) -> np.ndarray:
    """Sample ``num_edges`` R-MAT edges over ``2^scale`` vertices.

    Returns an ``(num_edges, 2)`` int64 array of (source, target) pairs,
    duplicates included (the caller dedups at the labeled-edge level).
    Each of the ``scale`` recursion levels picks one quadrant per edge:
    quadrant a keeps both coordinate bits 0, b sets the target bit,
    c the source bit, d both.
    """
    a, b, c, _d = probabilities
    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    thresholds = (a, a + b, a + b + c)
    for level in range(scale):
        draws = rng.random(num_edges)
        quadrant_b = (draws >= thresholds[0]) & (draws < thresholds[1])
        quadrant_c = (draws >= thresholds[1]) & (draws < thresholds[2])
        quadrant_d = draws >= thresholds[2]
        bit = np.int64(1 << level)
        targets += bit * (quadrant_b | quadrant_d)
        sources += bit * (quadrant_c | quadrant_d)
    return np.stack([sources, targets], axis=1)


def rmat_graph(
    scale: int,
    num_edges: int,
    num_labels: int,
    seed: int = 0,
    probabilities: tuple[float, float, float, float] = DEFAULT_PROBABILITIES,
    max_rounds: int = 16,
    include_all_vertices: bool = True,
) -> LabeledMultigraph:
    """An edge-labeled R-MAT multigraph with ``2^scale`` vertices.

    Labels are assigned uniformly at random (the paper's procedure for
    making TrillionG output edge-labeled).  Oversamples for up to
    ``max_rounds`` rounds to replace deduplicated triples; raises
    :class:`~repro.errors.WorkloadError` if the requested count cannot be
    reached (label space saturated).
    """
    if num_labels < 1:
        raise WorkloadError("num_labels must be >= 1")
    rng = np.random.default_rng(seed)
    labels = default_labels(num_labels)
    graph = LabeledMultigraph()
    if include_all_vertices:
        for vertex in range(1 << scale):
            graph.add_vertex(vertex)

    remaining = num_edges
    for _round in range(max_rounds):
        if remaining <= 0:
            break
        batch = max(remaining + remaining // 4 + 16, 64)
        pairs = rmat_edges(scale, batch, rng, probabilities)
        label_ids = rng.integers(0, num_labels, size=batch)
        for (source, target), label_id in zip(pairs.tolist(), label_ids.tolist()):
            if remaining <= 0:
                break
            if graph.add_edge_if_absent(source, labels[label_id], target):
                remaining -= 1
    if remaining > 0:
        raise WorkloadError(
            f"could not place {num_edges} distinct labeled edges in a "
            f"2^{scale}-vertex, {num_labels}-label R-MAT graph"
        )
    return graph


def rmat_component_graph(
    components: int,
    scale: int,
    edges_per_component: int | None = None,
    num_labels: int = 3,
    seed: int = 0,
) -> LabeledMultigraph:
    """``components`` disjoint R-MAT blocks in one graph (shared alphabet).

    The multi-tenant shape a sharded serving layer is built for: many
    independent subgraphs (one per tenant / data source / federation
    endpoint) behind one front end, all labeled from the *same* alphabet
    so one query means the same thing everywhere.  Block ``i`` occupies
    the vertex range ``[i * 2^scale, (i + 1) * 2^scale)``; blocks never
    share an edge, so :func:`~repro.cluster.partition_graph` can place
    them on shards independently.
    """
    if components < 1:
        raise WorkloadError("components must be >= 1")
    size = 1 << scale
    if edges_per_component is None:
        edges_per_component = 6 * size
    graph = LabeledMultigraph()
    for index in range(components):
        block = rmat_graph(
            scale, edges_per_component, num_labels, seed=seed + index
        )
        offset = index * size
        for vertex in block.vertices():
            graph.add_vertex(int(vertex) + offset)
        for source, label, target in block.edges():
            graph.add_edge(int(source) + offset, label, int(target) + offset)
    return graph


def rmat_connected_graph(
    scale: int,
    num_edges: int,
    num_labels: int = 3,
    seed: int = 0,
    bridge_label: str | None = None,
) -> LabeledMultigraph:
    """A single weakly-connected R-MAT graph (the giant-component shape).

    R-MAT sampling leaves satellite components and isolated vertices;
    chaining each component's deterministic representative (smallest by
    string form) to the next with a ``bridge_label`` edge makes the whole
    graph one WCC.  This is precisely the shape component-disjoint
    partitioning cannot spread over shards -- the edge-cut strategy's
    benchmark and test workload.
    """
    from repro.cluster.partition import weakly_connected_components

    graph = rmat_graph(scale, num_edges, num_labels, seed=seed)
    if bridge_label is None:
        bridge_label = default_labels(num_labels)[0]
    components = weakly_connected_components(graph)
    representatives = sorted(
        (min(component, key=str) for component in components), key=str
    )
    for left, right in zip(representatives, representatives[1:]):
        graph.add_edge_if_absent(left, bridge_label, right)
    return graph


def rmat_n(
    n: int,
    scale: int = 10,
    num_labels: int = 4,
    seed: int = 0,
) -> LabeledMultigraph:
    """The paper's ``RMAT_N``: ``2^scale`` vertices, ``2^{n+scale}`` edges.

    Average vertex degree per label is ``2^{n - log2(num_labels)}``
    (``2^{n-2}`` with the default 4 labels), matching the x-axis of
    Figs. 10-13.  The paper uses ``scale=13``; the default 10 keeps the
    sweep Python-feasible with identical degrees.
    """
    if n < 0:
        raise WorkloadError("n must be >= 0")
    return rmat_graph(scale, 1 << (n + scale), num_labels, seed=seed)
