"""Common-sub-query analysis across a multiple-RPQ set.

FullSharing's origin paper (Abul-Basher [8]) *finds* the common sub-query
of a query set before sharing it; our engines share opportunistically
through the cache.  This module makes the sharing structure explicit and
inspectable before execution:

* which closure bodies occur in the set, under syntactic or semantic
  (language-level) keys;
* how often each would be recomputed without sharing;
* a cost-model estimate of the work sharing saves.

Used by the linked-data example and the planner benchmarks; also a handy
workload-debugging tool ("why is nothing shared?" -> distinct Rs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cache import make_key_function
from repro.core.decompose import decompose_clause
from repro.core.dnf import to_dnf
from repro.core.planner import estimate_cost
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.parser import parse

__all__ = ["SharedBody", "SharingReport", "analyse_sharing"]


@dataclass(frozen=True)
class SharedBody:
    """One distinct closure body and where it occurs."""

    key: str
    representative: str  # a human-readable spelling of the body
    occurrences: int
    query_indexes: tuple[int, ...]
    estimated_cost: float

    @property
    def is_shared(self) -> bool:
        """True when at least two batch units would reuse this body."""
        return self.occurrences > 1

    @property
    def estimated_saving(self) -> float:
        """Cost-model estimate of the recomputation sharing avoids."""
        return self.estimated_cost * (self.occurrences - 1)


@dataclass
class SharingReport:
    """The sharing structure of a multiple-RPQ set."""

    bodies: list[SharedBody] = field(default_factory=list)
    num_queries: int = 0
    num_batch_units: int = 0

    @property
    def shared_bodies(self) -> list[SharedBody]:
        """Bodies occurring in more than one batch unit."""
        return [body for body in self.bodies if body.is_shared]

    @property
    def total_estimated_saving(self) -> float:
        """Summed cost-model saving across all shared bodies."""
        return sum(body.estimated_saving for body in self.bodies)

    def describe(self) -> str:
        """A short human-readable summary."""
        lines = [
            f"{self.num_queries} queries, {self.num_batch_units} batch units, "
            f"{len(self.bodies)} distinct closure bodies, "
            f"{len(self.shared_bodies)} shared"
        ]
        for body in sorted(
            self.bodies, key=lambda item: -item.estimated_saving
        ):
            marker = "*" if body.is_shared else " "
            lines.append(
                f" {marker} ({body.representative})+ x{body.occurrences} "
                f"in queries {list(body.query_indexes)}"
            )
        return "\n".join(lines)


def analyse_sharing(
    graph: LabeledMultigraph,
    queries,
    cache_mode: str = "syntactic",
) -> SharingReport:
    """Analyse which closure bodies a query set would share.

    ``cache_mode`` mirrors the engines: ``"semantic"`` identifies
    language-equal bodies spelled differently (they *would* share under a
    semantic cache), ``"syntactic"`` matches textual reuse only.  Nested
    closures are walked recursively, exactly as Algorithm 1 would visit
    them (the body of ``( (a)+ . b )+`` contributes both bodies).
    """
    key_function = make_key_function(cache_mode)
    found: dict[str, dict] = {}
    num_batch_units = 0

    def visit(node, query_index: int) -> None:
        nonlocal num_batch_units
        for clause in to_dnf(node):
            unit = decompose_clause(clause)
            num_batch_units += 1
            if unit.r is None:
                continue
            key = key_function(unit.r)
            entry = found.setdefault(
                key,
                {
                    "representative": unit.r.to_string(),
                    "occurrences": 0,
                    "queries": [],
                    "cost": estimate_cost(graph, unit.r),
                },
            )
            entry["occurrences"] += 1
            entry["queries"].append(query_index)
            # Recurse like Algorithm 1: Pre may hide more closures, and
            # the body itself may nest closures.
            visit_sub(unit.pre, query_index)
            visit_sub(unit.r, query_index)

    def visit_sub(node, query_index: int) -> None:
        from repro.regex.ast import contains_closure

        if contains_closure(node):
            visit(node, query_index)

    queries = list(queries)
    for query_index, query in enumerate(queries):
        visit(parse(query), query_index)

    bodies = [
        SharedBody(
            key=key,
            representative=entry["representative"],
            occurrences=entry["occurrences"],
            query_indexes=tuple(entry["queries"]),
            estimated_cost=entry["cost"],
        )
        for key, entry in found.items()
    ]
    return SharingReport(
        bodies=bodies,
        num_queries=len(queries),
        num_batch_units=num_batch_units,
    )
