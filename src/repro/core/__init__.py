"""Core of the reproduction: graph reduction, the RTC, and the engines.

Public surface:

* reductions: :func:`edge_level_reduce`, :func:`vertex_level_reduce`,
  :func:`reduce_graph`, :class:`ReductionResult`;
* the RTC: :class:`ReducedTransitiveClosure`, :func:`compute_rtc`;
* DNF machinery: :func:`to_dnf`, :class:`ClosureLiteral`,
  :func:`clause_to_regex`, :func:`decompose_clause`, :class:`BatchUnit`;
* Algorithm 2: :func:`eval_batch_unit`, :class:`BatchUnitOptions`;
* engines: :class:`RTCSharingEngine`, :class:`FullSharingEngine`,
  :class:`NoSharingEngine`, :func:`make_engine`;
* caches (:class:`RTCCache`, :class:`ClosureCache`), phase timing, the
  batch planner and reduction statistics.
"""

from repro.core.batch_unit import (
    BatchUnitOptions,
    apply_post,
    eval_batch_unit,
    join_pre_with_rtc,
)
from repro.core.cache import CacheStats, ClosureCache, RTCCache, SharedDataCache
from repro.core.decompose import BatchUnit, decompose_clause
from repro.core.dnf import ClosureLiteral, clause_to_regex, dnf_to_regex, to_dnf
from repro.core.explain import ClausePlan, QueryPlan, explain
from repro.core.incremental import IncrementalRTC
from repro.core.engines import (
    FullSharingEngine,
    NoSharingEngine,
    RPQEngine,
    RTCSharingEngine,
    make_engine,
)
from repro.core.planner import PlannedUnit, estimate_cost, plan_order
from repro.core.reduction import (
    ReductionResult,
    edge_level_reduce,
    reduce_graph,
    vertex_level_reduce,
)
from repro.core.rtc import ReducedTransitiveClosure, compute_rtc
from repro.core.serialize import (
    load_cache,
    load_rtc,
    rtc_from_dict,
    rtc_to_dict,
    save_cache,
    save_rtc,
)
from repro.core.sharing_analysis import SharedBody, SharingReport, analyse_sharing
from repro.core.stats import ReductionStats, reduction_stats
from repro.core.timing import (
    ALL_PHASES,
    PHASE_PRE_JOIN,
    PHASE_REMAINDER,
    PHASE_SHARED_DATA,
    PhaseTimer,
)

__all__ = [
    "edge_level_reduce",
    "vertex_level_reduce",
    "reduce_graph",
    "ReductionResult",
    "ReducedTransitiveClosure",
    "compute_rtc",
    "to_dnf",
    "ClosureLiteral",
    "clause_to_regex",
    "dnf_to_regex",
    "decompose_clause",
    "BatchUnit",
    "eval_batch_unit",
    "join_pre_with_rtc",
    "apply_post",
    "BatchUnitOptions",
    "RPQEngine",
    "NoSharingEngine",
    "FullSharingEngine",
    "RTCSharingEngine",
    "make_engine",
    "RTCCache",
    "ClosureCache",
    "SharedDataCache",
    "CacheStats",
    "PhaseTimer",
    "ALL_PHASES",
    "PHASE_SHARED_DATA",
    "PHASE_PRE_JOIN",
    "PHASE_REMAINDER",
    "PlannedUnit",
    "estimate_cost",
    "plan_order",
    "ReductionStats",
    "reduction_stats",
    "rtc_to_dict",
    "rtc_from_dict",
    "save_rtc",
    "load_rtc",
    "save_cache",
    "load_cache",
    "SharedBody",
    "SharingReport",
    "analyse_sharing",
    "IncrementalRTC",
    "explain",
    "QueryPlan",
    "ClausePlan",
]
