"""Disjunctive normal form of an RPQ, closures treated as literals.

RTCSharing (Algorithm 1, line 2) first converts the query to a logically
equivalent DNF, "treating each outermost Kleene closure as a literal"
[15].  A DNF here is a union of *clauses*; each clause is a concatenation
of literals, where a literal is either

* a single edge label, or
* an outermost Kleene closure ``B+`` / ``B*`` (:class:`ClosureLiteral`
  with an arbitrary body ``B``, which may itself contain anything).

Conversion rules (language-preserving, checked by property tests):

* ``A | B``      -> clauses(A) + clauses(B)
* ``A . B``      -> pairwise concatenation of clauses (distributivity)
* ``A+`` / ``A*``-> a single closure literal (left intact)
* ``A?``         -> the epsilon clause plus clauses(A)
* ``epsilon``    -> the empty clause ``()``

Clauses are deduplicated while preserving first-occurrence order, so a
query like ``(a|a).b`` yields one clause.  The number of clauses can grow
exponentially in pathological queries; :func:`to_dnf` accepts a
``max_clauses`` guard (default 4096) and raises rather than silently
truncating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError
from repro.regex.ast import (
    EPSILON,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
    Union,
    concat,
    union,
)

__all__ = ["ClosureLiteral", "Clause", "to_dnf", "clause_to_regex", "dnf_to_regex"]


@dataclass(frozen=True)
class ClosureLiteral:
    """An outermost Kleene closure kept opaque by the DNF conversion.

    ``kind`` is ``"+"`` or ``"*"``; ``body`` is the closed sub-expression
    ``R`` whose RTC the engine will share.
    """

    body: RegexNode
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("+", "*"):
            raise ValueError(f"closure kind must be '+' or '*', got {self.kind!r}")

    def to_regex(self) -> RegexNode:
        """Back to an AST node (``Plus`` or ``Star``)."""
        return Plus(self.body) if self.kind == "+" else Star(self.body)

    def __str__(self) -> str:
        return f"({self.body}){self.kind}"


# A clause is a tuple of literals; each literal is a Label or a ClosureLiteral.
Clause = tuple


def to_dnf(node: RegexNode, max_clauses: int = 4096) -> list[Clause]:
    """Convert an RPQ AST to its closure-literal DNF (list of clauses)."""

    def convert(expr: RegexNode) -> list[Clause]:
        if isinstance(expr, Epsilon):
            return [()]
        if isinstance(expr, Label):
            return [(expr,)]
        if isinstance(expr, (Plus, Star)):
            kind = "+" if isinstance(expr, Plus) else "*"
            return [(ClosureLiteral(body=expr.body, kind=kind),)]
        if isinstance(expr, Optional):
            return _dedup([()] + convert(expr.body))
        if isinstance(expr, Union):
            clauses: list[Clause] = []
            for alternative in expr.alternatives:
                clauses.extend(convert(alternative))
            return _dedup(clauses)
        if isinstance(expr, Concat):
            clauses = [()]
            for part in expr.parts:
                part_clauses = convert(part)
                clauses = [
                    left + right for left in clauses for right in part_clauses
                ]
                if len(clauses) > max_clauses:
                    raise EvaluationError(
                        f"DNF of query exceeds {max_clauses} clauses; "
                        "rewrite the query or raise max_clauses"
                    )
            return _dedup(clauses)
        raise TypeError(f"unknown regex node {expr!r}")

    clauses = convert(node)
    if len(clauses) > max_clauses:
        raise EvaluationError(
            f"DNF of query exceeds {max_clauses} clauses; "
            "rewrite the query or raise max_clauses"
        )
    return clauses


def _dedup(clauses: list[Clause]) -> list[Clause]:
    """Drop duplicate clauses, keeping first-occurrence order."""
    seen: set[Clause] = set()
    unique: list[Clause] = []
    for clause in clauses:
        if clause not in seen:
            seen.add(clause)
            unique.append(clause)
    return unique


def clause_to_regex(clause: Clause) -> RegexNode:
    """Rebuild the AST of one clause (used for EvalRPQwithoutKC)."""
    parts: list[RegexNode] = []
    for literal in clause:
        if isinstance(literal, ClosureLiteral):
            parts.append(literal.to_regex())
        else:
            parts.append(literal)
    if not parts:
        return EPSILON
    return concat(*parts)


def dnf_to_regex(clauses: list[Clause]) -> RegexNode:
    """Rebuild a single AST for the whole DNF (tests check language equality)."""
    if not clauses:
        raise ValueError("a DNF must have at least one clause")
    return union(*(clause_to_regex(clause) for clause in clauses))
