"""Batch-unit ordering -- the paper's "future work" optimisation.

Algorithm 1 evaluates the clauses of a multiple-RPQ set in the order given.
The paper notes ("we leave the optimization issue as a future work") that
ordering batch units can further help.  Two effects are worth capturing:

1. **Shared-data-first**: evaluating, consecutively, all batch units whose
   closure bodies share a cache key means the expensive ``Compute_RTC``
   happens at a predictable point and every later unit hits the cache.
   With an unordered schedule the cache achieves the same *total* work,
   but grouping minimises the *latency to each individual result* after
   the first unit of a group.
2. **Cheap-first**: estimating each unit's cost from label-frequency
   statistics and running cheap units first minimises average response
   time over the set (classic shortest-job-first).

:func:`plan_order` implements both, composable: group by closure key, order
groups (and closure-free units) by estimated cost.  :func:`estimate_cost`
is a deliberately simple selectivity product over the labels of the unit
-- enough to separate heavy closures from trivial lookups, cheap enough to
never dominate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache import make_key_function
from repro.core.decompose import BatchUnit, decompose_clause
from repro.core.dnf import to_dnf
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import RegexNode, iter_labels
from repro.regex.parser import parse

__all__ = ["PlannedUnit", "estimate_cost", "plan_order"]


@dataclass(frozen=True)
class PlannedUnit:
    """One schedulable unit: the query it came from plus its decomposition."""

    query_index: int
    clause_index: int
    unit: BatchUnit
    cost: float
    share_key: str | None  # cache key of the closure body, None if closure-free


def estimate_cost(graph: LabeledMultigraph, node: RegexNode) -> float:
    """A label-statistics cost proxy for evaluating ``node`` on ``graph``.

    The product of per-label edge counts approximates the worst-case
    intermediate size of the label joins; closures multiply by ``|V|`` to
    reflect the closure walk.  Only relative order matters.
    """
    cost = 1.0
    for label in iter_labels(node):
        cost *= max(1, graph.label_count(label))
    from repro.regex.ast import contains_closure  # local: avoid cycle at import

    if contains_closure(node):
        cost *= max(1, graph.num_vertices)
    return cost


def plan_order(
    graph: LabeledMultigraph,
    queries,
    cache_mode: str = "syntactic",
    group_shared: bool = True,
    cheap_first: bool = True,
) -> list[PlannedUnit]:
    """Decompose a multiple-RPQ set and order its batch units.

    Returns every clause of every query as a :class:`PlannedUnit` in
    execution order.  With both switches off, the original order is kept
    (a stable no-op plan for comparison benches).
    """
    key_function = make_key_function(cache_mode)
    planned: list[PlannedUnit] = []
    for query_index, query in enumerate(queries):
        node = parse(query)
        for clause_index, clause in enumerate(to_dnf(node)):
            unit = decompose_clause(clause)
            share_key = key_function(unit.r) if unit.r is not None else None
            unit_cost = estimate_cost(
                graph, unit.r if unit.r is not None else unit.post
            )
            planned.append(
                PlannedUnit(
                    query_index=query_index,
                    clause_index=clause_index,
                    unit=unit,
                    cost=unit_cost,
                    share_key=share_key,
                )
            )

    if not (group_shared or cheap_first):
        return planned

    # Group cost: cheapest unit of the group (the one that pays the
    # Compute_RTC; the rest hit the cache).
    group_cost: dict[str | None, float] = {}
    if group_shared:
        for item in planned:
            key = item.share_key
            if key is None:
                continue
            group_cost[key] = min(group_cost.get(key, item.cost), item.cost)

    def sort_key(item: PlannedUnit):
        primary = 0.0
        if cheap_first:
            primary = (
                group_cost.get(item.share_key, item.cost)
                if group_shared and item.share_key is not None
                else item.cost
            )
        group = item.share_key if group_shared and item.share_key is not None else (
            f"__solo_{item.query_index}_{item.clause_index}"
        )
        return (primary, group, item.query_index, item.clause_index)

    return sorted(planned, key=sort_key)
