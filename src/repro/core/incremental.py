"""Incremental RTC maintenance under edge insertions (streaming extension).

The paper's related work points at RPQ evaluation over *streaming* graphs
(Pacaci et al. [29]); its own pipeline is batch: any change to ``G``
invalidates ``R_G``, ``G_R`` and the RTC.  This module maintains all
three **incrementally** for a fixed closure body ``R`` while labeled
edges are inserted into ``G``:

1. **Delta of ``R_G``** -- a new edge ``(u, l, v)`` creates exactly the
   pairs ``starts(q) x ends(q')`` for every NFA transition ``q -l-> q'``,
   where ``ends(q')`` is a forward product-BFS from ``(v, q')`` and
   ``starts(q)`` a *backward* product-BFS from ``(u, q)`` over the
   reversed graph and reversed automaton.
2. **Delta of ``G_R``** -- insert the new pairs into the reduced graph.
3. **RTC update** -- for a pair that keeps the condensation acyclic, run
   the classic Italiano-style DAG closure insertion (every SCC reaching
   the source side absorbs the target side's closure).  A pair that
   closes a cycle merges SCCs; that (rare) case falls back to a full
   ``Compute_RTC``, and the fallback count is exposed so tests and
   benchmarks can see how often it happens.

Correctness contract (property-tested): after any insertion sequence,
:meth:`IncrementalRTC.snapshot` equals ``compute_rtc`` of a from-scratch
re-evaluation, pair for pair.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.core.rtc import ReducedTransitiveClosure, compute_rtc
from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.multigraph import LabeledMultigraph
from repro.graph.scc import Condensation
from repro.regex.ast import RegexNode
from repro.regex.nfa import LabelNFA, compile_nfa
from repro.regex.parser import parse
from repro.rpq.evaluate import eval_rpq, eval_rpq_from

__all__ = ["IncrementalRTC"]


def _reverse_delta(nfa: LabelNFA) -> dict[int, dict[str, set[int]]]:
    """``state -> label -> predecessor states`` of the automaton."""
    reverse: dict[int, dict[str, set[int]]] = {state: {} for state in nfa.delta}
    for state, row in nfa.delta.items():
        for label, targets in row.items():
            for target in targets:
                reverse.setdefault(target, {}).setdefault(label, set()).add(state)
    return reverse


class IncrementalRTC:
    """Maintain ``R_G``, ``G_R`` and the RTC of one ``R`` under insertions.

    >>> from repro.graph import LabeledMultigraph
    >>> g = LabeledMultigraph.from_edges([(0, "a", 1)])
    >>> inc = IncrementalRTC(g, "a")
    >>> inc.reaches(0, 1)
    True
    >>> inc.add_edge(1, "a", 0)   # closes a cycle
    >>> inc.reaches(1, 1)
    True
    """

    def __init__(self, graph: LabeledMultigraph, body: str | RegexNode) -> None:
        self.graph = graph
        self.body = parse(body)
        self._nfa = compile_nfa(self.body)
        self._reverse_nfa = _reverse_delta(self._nfa)
        self._gr = DiGraph.from_pairs(eval_rpq(graph, self._nfa))
        if self._nfa.nullable:
            for vertex in graph.vertices():
                self._gr.add_edge(vertex, vertex)
        # Mutable RTC state.
        self._scc_of: dict = {}
        self._members: dict[int, set] = {}
        self._closure: dict[int, set[int]] = {}
        self._rebuild()
        #: how many insertions were handled by full recomputation
        self.full_rebuilds = 0
        #: how many insertions were handled incrementally
        self.incremental_updates = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reaches(self, source: object, target: object) -> bool:
        """Membership test ``(source, target) in (R+)_G``."""
        source_id = self._scc_of.get(source)
        target_id = self._scc_of.get(target)
        if source_id is None or target_id is None:
            return False
        return target_id in self._closure[source_id]

    def plus_pairs(self) -> set[tuple[object, object]]:
        """Materialise ``(R+)_G`` (Theorem 1 expansion of current state)."""
        result: set[tuple[object, object]] = set()
        for source_id, targets in self._closure.items():
            source_members = self._members[source_id]
            for target_id in targets:
                for source in source_members:
                    for target in self._members[target_id]:
                        result.add((source, target))
        return result

    def snapshot(self) -> ReducedTransitiveClosure:
        """A frozen :class:`ReducedTransitiveClosure` of the current state."""
        members = {
            scc_id: tuple(sorted(vertices, key=str))
            for scc_id, vertices in self._members.items()
        }
        dag = DiGraph()
        for scc_id in members:
            dag.add_vertex(scc_id)
        for scc_id, targets in self._closure.items():
            for target in targets:
                dag.add_edge(scc_id, target)
        condensation = Condensation(
            scc_of=dict(self._scc_of), members=members, dag=dag
        )
        return ReducedTransitiveClosure(
            condensation=condensation,
            closure={k: frozenset(v) for k, v in self._closure.items()},
            num_gr_vertices=self._gr.num_vertices,
            num_gr_edges=self._gr.num_edges,
        )

    # ------------------------------------------------------------------
    # persistence (repro.storage)
    # ------------------------------------------------------------------
    def export_state(self) -> tuple[list[tuple[object, object]], ReducedTransitiveClosure]:
        """``(G_R edges, frozen RTC)`` -- everything a restart needs.

        Together with the graph and the body, this is the watcher's full
        state: :meth:`from_state` rebuilds an equivalent watcher without
        re-running ``eval_rpq``.  The update counters are *not* exported
        (a restored watcher starts its statistics at zero).
        """
        edges = sorted(self._gr.edges(), key=lambda pair: (str(pair[0]), str(pair[1])))
        return edges, self.snapshot()

    @classmethod
    def from_state(
        cls,
        graph: LabeledMultigraph,
        body: str | RegexNode,
        gr_edges: Iterable[tuple[object, object]],
        rtc: ReducedTransitiveClosure,
    ) -> "IncrementalRTC":
        """Rebuild a watcher from :meth:`export_state` output.

        ``graph`` must be the same graph the state was exported against
        (the caller -- :mod:`repro.storage.recovery` -- guarantees this by
        stamping the export with the WAL position it was valid at).  The
        expensive ``eval_rpq`` of ``__init__`` is skipped entirely; only
        the NFA is recompiled.
        """
        watcher = cls.__new__(cls)
        watcher.graph = graph
        watcher.body = parse(body)
        watcher._nfa = compile_nfa(watcher.body)
        watcher._reverse_nfa = _reverse_delta(watcher._nfa)
        watcher._gr = DiGraph()
        for source, target in gr_edges:
            watcher._gr.add_edge(source, target)
        watcher._scc_of = dict(rtc.condensation.scc_of)
        watcher._members = {
            scc_id: set(members)
            for scc_id, members in rtc.condensation.members.items()
        }
        watcher._closure = {
            scc_id: set(targets) for scc_id, targets in rtc.closure.items()
        }
        watcher.full_rebuilds = 0
        watcher.incremental_updates = 0
        return watcher

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_edge(self, source: object, label: str, target: object) -> None:
        """Insert ``e(source, label, target)`` into ``G`` and repair state."""
        new_vertices = [
            v for v in (source, target) if not self.graph.has_vertex(v)
        ]
        self.graph.add_edge(source, label, target)
        self.notify_edge_added(source, label, target, new_vertices)

    def notify_edge_added(
        self,
        source: object,
        label: str,
        target: object,
        new_vertices: Iterable[object] = (),
    ) -> None:
        """Repair state for an edge *already inserted* into the bound graph.

        The entry point for multi-watcher setups (``GraphDB.update``):
        the session mutates the shared graph once, then notifies every
        watcher.  ``new_vertices`` are the edge endpoints that did not
        exist before the insertion (they seed identity pairs when ``R``
        is nullable).
        """
        delta = self._rg_delta(source, label, target)
        if self._nfa.nullable:
            for vertex in new_vertices:
                delta.add((vertex, vertex))

        for pair in delta:
            if self._gr.add_edge(*pair):
                self._insert_reduced_edge(*pair)

    def remove_edge(self, source: object, label: str, target: object) -> None:
        """Delete ``e(source, label, target)`` from ``G`` and repair state.

        Deletion is fundamentally harder than insertion (a removed edge
        can invalidate arbitrarily many ``R_G`` pairs and split SCCs), so
        this path recomputes ``R_G``, ``G_R`` and the RTC from scratch --
        correct and simple; the rebuild is counted in
        :attr:`full_rebuilds`.  Insertion-heavy streams stay incremental.
        """
        if not self.graph.has_edge(source, label, target):
            raise GraphError(
                f"edge ({source!r}, {label!r}, {target!r}) is not in the graph"
            )
        self.graph.remove_edge(source, label, target)
        self.notify_graph_replaced()

    def notify_graph_replaced(self) -> None:
        """Recompute ``R_G``, ``G_R`` and the RTC from the current graph.

        Used after deletions or arbitrary external graph surgery; counted
        as a full rebuild.
        """
        self._gr = DiGraph.from_pairs(eval_rpq(self.graph, self._nfa))
        if self._nfa.nullable:
            for vertex in self.graph.vertices():
                self._gr.add_edge(vertex, vertex)
        self._rebuild()
        self.full_rebuilds += 1

    def _rg_delta(
        self, source: object, label: str, target: object
    ) -> set[tuple[object, object]]:
        """New ``R_G`` pairs created by the inserted graph edge."""
        delta: set[tuple[object, object]] = set()
        transitions = [
            (state, next_state)
            for state, row in self._nfa.delta.items()
            if label in row
            for next_state in row[label]
        ]
        if not transitions:
            return delta
        ends_cache: dict[int, set] = {}
        starts_cache: dict[int, set] = {}
        for state, next_state in transitions:
            ends = ends_cache.get(next_state)
            if ends is None:
                ends = self._forward_ends(target, next_state)
                ends_cache[next_state] = ends
            if not ends:
                continue
            starts = starts_cache.get(state)
            if starts is None:
                starts = self._backward_starts(source, state)
                starts_cache[state] = starts
            for start_vertex in starts:
                for end_vertex in ends:
                    delta.add((start_vertex, end_vertex))
        return delta

    def _forward_ends(self, vertex: object, state: int) -> set:
        """Vertices where acceptance is reached from ``(vertex, state)``."""
        ends: set = set()
        if state in self._nfa.accepts:
            ends.add(vertex)
        visited = {(vertex, state)}
        queue: deque = deque([(vertex, state)])
        delta = self._nfa.delta
        accepts = self._nfa.accepts
        while queue:
            current_vertex, current_state = queue.popleft()
            row = delta[current_state]
            if not row:
                continue
            out_map = self.graph.out_map(current_vertex)
            if not out_map:
                continue
            for edge_label in row.keys() & out_map.keys():
                for next_state in row[edge_label]:
                    for next_vertex in out_map[edge_label]:
                        pair = (next_vertex, next_state)
                        if pair in visited:
                            continue
                        visited.add(pair)
                        queue.append(pair)
                        if next_state in accepts:
                            ends.add(next_vertex)
        return ends

    def _backward_starts(self, vertex: object, state: int) -> set:
        """Start vertices whose traversal can sit at ``(vertex, state)``."""
        starts: set = set()
        start_states = self._nfa.start
        if state in start_states:
            starts.add(vertex)
        visited = {(vertex, state)}
        queue: deque = deque([(vertex, state)])
        reverse_nfa = self._reverse_nfa
        while queue:
            current_vertex, current_state = queue.popleft()
            rows = reverse_nfa.get(current_state)
            if not rows:
                continue
            for edge_label, previous_states in rows.items():
                for previous_vertex in self.graph.sources(
                    current_vertex, edge_label
                ):
                    for previous_state in previous_states:
                        pair = (previous_vertex, previous_state)
                        if pair in visited:
                            continue
                        visited.add(pair)
                        queue.append(pair)
                        if previous_state in start_states:
                            starts.add(previous_vertex)
        return starts

    # ------------------------------------------------------------------
    # reduced-graph / RTC repair
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Full Compute_RTC from the current ``G_R`` (the fallback path)."""
        rtc = compute_rtc(self._gr)
        self._scc_of = dict(rtc.condensation.scc_of)
        self._members = {
            scc_id: set(members)
            for scc_id, members in rtc.condensation.members.items()
        }
        self._closure = {
            scc_id: set(targets) for scc_id, targets in rtc.closure.items()
        }

    def _ensure_scc(self, vertex: object) -> int:
        scc_id = self._scc_of.get(vertex)
        if scc_id is not None:
            return scc_id
        scc_id = len(self._members)
        while scc_id in self._members:  # ids are dense, but stay safe
            scc_id += 1
        self._members[scc_id] = {vertex}
        self._closure[scc_id] = set()
        self._scc_of[vertex] = scc_id
        return scc_id

    def _insert_reduced_edge(self, source: object, target: object) -> None:
        """Repair the RTC for one new ``G_R`` edge."""
        source_id = self._ensure_scc(source)
        target_id = self._ensure_scc(target)

        if source_id == target_id:
            # Edge inside an SCC (or a self-loop): the SCC becomes/stays
            # cyclic, so it must reach itself.
            if source_id not in self._closure[source_id]:
                self._add_reach(source_id, source_id)
                self.incremental_updates += 1
            else:
                self.incremental_updates += 1
            return

        if source_id in self._closure[target_id]:
            # target side already reaches source side: this edge closes a
            # cycle and merges SCCs -- recompute (rare path).
            self._rebuild()
            self.full_rebuilds += 1
            return

        self._add_reach(source_id, target_id)
        self.incremental_updates += 1

    def _add_reach(self, source_id: int, target_id: int) -> None:
        """Italiano-style DAG closure insertion for ``source -> target``."""
        new_targets = {target_id} | self._closure[target_id]
        affected = [
            scc_id
            for scc_id, targets in self._closure.items()
            if scc_id == source_id or source_id in targets
        ]
        for scc_id in affected:
            self._closure[scc_id] |= new_targets
