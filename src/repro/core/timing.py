"""Phase timing for the paper's three-part cost breakdown (Figs. 11, 15).

The evaluation section splits query response time into:

* ``Shared_Data``    -- computing the shared structure (``R̄+_G`` for
  RTCSharing, ``R+_G`` for FullSharing), *excluding* the ``R_G``
  evaluation both methods perform identically;
* ``PreG_join_RTC``  -- the join of ``Pre_G`` with the shared closure
  (Eq. (7)-(9) for RTC; the plain hash join for Full);
* ``Remainder``      -- everything the methods do identically: computing
  ``Pre_G`` and ``R_G`` and the ``Post`` join (Eq. (10)).

:class:`PhaseTimer` accumulates wall-clock spans per phase.  Engines time
**leaf operations only** (never a recursive engine call), so recursion
attributes every span exactly once and the phase sums equal the total
evaluation time up to unattributed glue.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = [
    "PhaseTimer",
    "PHASE_SHARED_DATA",
    "PHASE_PRE_JOIN",
    "PHASE_REMAINDER",
    "ALL_PHASES",
]

PHASE_SHARED_DATA = "shared_data"
PHASE_PRE_JOIN = "pre_join_rtc"
PHASE_REMAINDER = "remainder"
ALL_PHASES = (PHASE_SHARED_DATA, PHASE_PRE_JOIN, PHASE_REMAINDER)


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self.times: dict[str, float] = {}

    @contextmanager
    def measure(self, phase: str):
        """Context manager adding the elapsed span to ``phase``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.times[phase] = self.times.get(phase, 0.0) + elapsed

    def get(self, phase: str) -> float:
        """Accumulated seconds of ``phase`` (0.0 when never measured)."""
        return self.times.get(phase, 0.0)

    def total(self) -> float:
        """Sum over all phases."""
        return sum(self.times.values())

    def reset(self) -> None:
        """Zero all accumulators."""
        self.times.clear()

    def snapshot(self) -> dict[str, float]:
        """A copy of the per-phase totals."""
        return dict(self.times)
