"""``explain(query)`` -- show how RTCSharing will evaluate a query.

A textual evaluation plan in the spirit of SQL ``EXPLAIN``: the DNF
clauses, each clause's ``(Pre, R, Type, Post)`` decomposition, the RTC
cache key and its current hit/miss status, the chosen ``Post`` fast path,
and the relational-algebra expression of the batch unit (Eq. (6)-(10)).

Purely *static*: nothing is evaluated and no RTC is computed, so
explaining a query is always cheap and side-effect-free (cache stats are
not touched either).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decompose import BatchUnit, decompose_clause
from repro.core.dnf import clause_to_regex, to_dnf
from repro.core.planner import estimate_cost
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import Epsilon, RegexNode
from repro.regex.parser import parse

__all__ = ["ClausePlan", "QueryPlan", "explain"]


@dataclass(frozen=True)
class ClausePlan:
    """The plan of one DNF clause."""

    clause: str
    pre: str | None
    r: str | None
    closure_type: str | None
    post: str | None
    post_strategy: str  # "epsilon" | "label-sequence" | "automaton" | "whole-clause"
    rtc_key: str | None
    rtc_cached: bool
    estimated_cost: float

    @property
    def is_batch_unit(self) -> bool:
        return self.closure_type is not None


@dataclass(frozen=True)
class QueryPlan:
    """The plan of a whole query: one entry per DNF clause."""

    query: str
    clauses: tuple[ClausePlan, ...]

    def describe(self) -> str:
        """Readable multi-line rendering (what the CLI prints)."""
        lines = [f"query: {self.query}", f"clauses: {len(self.clauses)}"]
        for index, plan in enumerate(self.clauses):
            lines.append(f"  clause {index}: {plan.clause}")
            if not plan.is_batch_unit:
                lines.append(
                    f"    EvalRPQwithoutKC via {plan.post_strategy} "
                    f"(est. cost {plan.estimated_cost:.0f})"
                )
                continue
            lines.append(f"    Pre  = {plan.pre}")
            lines.append(
                f"    R    = {plan.r}   [closure {plan.closure_type}, "
                f"RTC key {'HIT' if plan.rtc_cached else 'miss'}: {plan.rtc_key}]"
            )
            lines.append(f"    Post = {plan.post} via {plan.post_strategy}")
            lines.append(
                "    pipeline: Pre_G ⋈ SCC ⋈ R̄+_G ⋈ SCC ⋈ Post_G "
                f"(Eq. 6-10; est. cost {plan.estimated_cost:.0f})"
            )
        return "\n".join(lines)


def _post_strategy(unit: BatchUnit) -> str:
    if unit.type is None:
        if isinstance(unit.post, Epsilon):
            return "epsilon"
        if unit.post_labels:
            return "label-sequence"
        return "whole-clause"
    if isinstance(unit.post, Epsilon):
        return "epsilon"
    return "label-sequence"


def explain(
    graph: LabeledMultigraph,
    query: str | RegexNode,
    rtc_cache=None,
    cache_key=None,
    max_clauses: int = 4096,
) -> QueryPlan:
    """Build the static evaluation plan of ``query``.

    ``rtc_cache`` (an :class:`~repro.core.cache.RTCCache`) and its key
    function are optional; when given, each batch unit reports whether its
    RTC is already cached.  :meth:`RTCSharingEngine.explain` passes the
    engine's own cache.
    """
    node = parse(query)
    clause_plans: list[ClausePlan] = []
    for clause in to_dnf(node, max_clauses):
        unit = decompose_clause(clause)
        clause_text = clause_to_regex(clause).to_string()
        if unit.type is None:
            clause_plans.append(
                ClausePlan(
                    clause=clause_text,
                    pre=None,
                    r=None,
                    closure_type=None,
                    post=unit.post.to_string(),
                    post_strategy=_post_strategy(unit),
                    rtc_key=None,
                    rtc_cached=False,
                    estimated_cost=estimate_cost(graph, unit.post),
                )
            )
            continue
        key = None
        cached = False
        if rtc_cache is not None:
            key = rtc_cache.key_for(unit.r)
            cached = unit.r in rtc_cache
        elif cache_key is not None:
            key = cache_key(unit.r)
        clause_plans.append(
            ClausePlan(
                clause=clause_text,
                pre=unit.pre.to_string(),
                r=unit.r.to_string(),
                closure_type=unit.type,
                post=unit.post.to_string(),
                post_strategy=_post_strategy(unit),
                rtc_key=key,
                rtc_cached=cached,
                estimated_cost=estimate_cost(graph, unit.r),
            )
        )
    return QueryPlan(query=node.to_string(), clauses=tuple(clause_plans))
