"""The three multiple-RPQ evaluation engines the paper compares.

* :class:`RTCSharingEngine` -- Algorithms 1 + 2: DNF, batch units, the
  shared reduced transitive closure, and the useless/redundant-operation
  eliminations (the paper's contribution);
* :class:`FullSharingEngine` -- Abul-Basher [8]: shares the materialised
  closure ``R+_G`` between RPQs but joins it naively;
* :class:`NoSharingEngine` -- Yakovets-style [5] per-query automaton
  evaluation, sharing nothing.

All engines evaluate the same queries to the same result sets (cross-
checked by the test suite and asserted by the benchmark harness) and
expose the same metrics surface:

* ``timer``   -- per-phase wall-clock (:mod:`repro.core.timing`);
* ``counters``-- optional operation tallies (:mod:`repro.rpq.counters`);
* ``shared_data_size()`` -- pairs held in the shared structure (Fig. 12).

Engines are bound to one graph; caches persist across ``evaluate`` calls,
which is what "sharing among multiple RPQs" means operationally.
"""

from __future__ import annotations

import time
from collections import deque

from repro.bitset.pairbitmap import PairBitmap
from repro.core.batch_unit import (
    BatchUnitOptions,
    DEFAULT_OPTIONS,
    apply_post,
    apply_post_bits,
    join_pre_with_rtc,
    join_pre_with_rtc_bits,
)
from repro.core.cache import ClosureCache, RTCCache
from repro.core.decompose import BatchUnit, decompose_clause
from repro.core.dnf import to_dnf
from repro.core.rtc import ReducedTransitiveClosure, compute_rtc
from repro.core.timing import (
    PHASE_PRE_JOIN,
    PHASE_REMAINDER,
    PHASE_SHARED_DATA,
    PhaseTimer,
)
from repro.graph.digraph import DiGraph
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import Epsilon, RegexNode
from repro.regex.parser import parse
from repro.rpq.counters import OpCounters
from repro.rpq.evaluate import eval_rpq
from repro.rpq.label_join import eval_label_sequence
from repro.rpq.restricted import RestrictedEvaluator, as_label_sequence

__all__ = [
    "RPQEngine",
    "NoSharingEngine",
    "FullSharingEngine",
    "RTCSharingEngine",
    "make_engine",
]

Pairs = set  # set[tuple[vertex, vertex]]


class RPQEngine:
    """Common surface of the three evaluation methods.

    Subclasses implement :meth:`_evaluate_node`; this base class provides
    parsing, total-time accounting, batch evaluation and metric reset.

    ``simplify_queries=True`` runs the language-preserving rewriter of
    :mod:`repro.regex.simplify` on every incoming query before
    evaluation -- an opt-in extension (the paper evaluates queries as
    given); results are guaranteed unchanged.
    """

    #: Short method name used by the benchmark tables ("No", "Full", "RTC").
    name = "base"

    def __init__(
        self,
        graph: LabeledMultigraph,
        collect_counters: bool = False,
        strict_labels: bool = False,
        simplify_queries: bool = False,
    ) -> None:
        self.graph = graph
        self.timer = PhaseTimer()
        self.counters: OpCounters | None = OpCounters() if collect_counters else None
        self.strict_labels = strict_labels
        self.simplify_queries = simplify_queries
        self.total_time = 0.0
        self.queries_evaluated = 0

    # -- public API ----------------------------------------------------
    def evaluate(self, query: str | RegexNode) -> Pairs:
        """Evaluate one RPQ; returns the set of ``(start, end)`` pairs."""
        node = parse(query)
        if self.simplify_queries:
            from repro.regex.simplify import simplify

            node = simplify(node)
        start = time.perf_counter()
        result = self._evaluate_node(node)
        self.total_time += time.perf_counter() - start
        self.queries_evaluated += 1
        return result

    def evaluate_many(self, queries) -> list[Pairs]:
        """Evaluate a multiple-RPQ set sequentially (shared caches persist)."""
        return [self.evaluate(query) for query in queries]

    def shared_data_size(self) -> int:
        """Pairs currently held in the shared structure (0 for NoSharing)."""
        return 0

    def reset_metrics(self) -> None:
        """Zero timers/counters (caches are kept; use ``reset_cache``)."""
        self.timer.reset()
        self.total_time = 0.0
        self.queries_evaluated = 0
        if self.counters is not None:
            self.counters = OpCounters()

    def reset_cache(self) -> None:
        """Drop shared data so the next query recomputes it."""

    # -- to implement ----------------------------------------------------
    def _evaluate_node(self, node: RegexNode) -> Pairs:
        raise NotImplementedError


class NoSharingEngine(RPQEngine):
    """Evaluate every RPQ independently with the automaton evaluator [5].

    The Kleene closure is part of the query automaton, so every query
    re-walks the closure -- the repeated work the sharing methods avoid.
    """

    name = "No"

    def _evaluate_node(self, node: RegexNode) -> Pairs:
        with self.timer.measure(PHASE_REMAINDER):
            return eval_rpq(
                self.graph,
                node,
                counters=self.counters,
                strict_labels=self.strict_labels,
            )


class _SharingEngine(RPQEngine):
    """Common machinery of the two sharing methods.

    Both convert the query to DNF, decompose clauses into batch units,
    evaluate ``Pre`` recursively, and differ only in (a) what shared
    structure they build for the closure body ``R`` and (b) how they join
    ``Pre_G`` with it.
    """

    def __init__(
        self,
        graph: LabeledMultigraph,
        collect_counters: bool = False,
        strict_labels: bool = False,
        max_clauses: int = 4096,
        clause_evaluator: str = "auto",
        simplify_queries: bool = False,
    ) -> None:
        super().__init__(graph, collect_counters, strict_labels, simplify_queries)
        self.max_clauses = max_clauses
        if clause_evaluator not in ("auto", "automaton", "label-join"):
            raise ValueError(f"unknown clause evaluator {clause_evaluator!r}")
        self.clause_evaluator = clause_evaluator

    # -- shared skeleton (Algorithm 1) -----------------------------------
    def _evaluate_node(self, node: RegexNode) -> Pairs:
        # A single-clause result passes through unchanged, so a batch
        # unit's PairBitmap stays packed all the way to the caller (the
        # common case: most queries are one DNF clause).  Unions across
        # clauses stay bitmap-wise while both sides are bitmaps (same
        # graph interner, same id space) and only materialise when a
        # set-valued clause forces it.
        result: Pairs | PairBitmap | None = None
        for clause in to_dnf(node, self.max_clauses):
            unit = decompose_clause(clause)
            if unit.type is None:
                part = self._eval_without_closure(unit.post, unit.post_labels)
            else:
                part = self._eval_batch_unit(unit)
            if result is None:
                result = part
            elif isinstance(result, PairBitmap) and isinstance(part, PairBitmap):
                result |= part
            else:
                if isinstance(result, PairBitmap):
                    result = result.pairs
                if isinstance(part, PairBitmap):
                    part = part.pairs
                result |= part
        return set() if result is None else result

    def _eval_without_closure(self, post: RegexNode, labels: tuple) -> Pairs:
        """``EvalRPQwithoutKC`` (Algorithm 1 line 6)."""
        with self.timer.measure(PHASE_REMAINDER):
            use_join = self.clause_evaluator == "label-join" or (
                self.clause_evaluator == "auto" and len(labels) > 0
            )
            if use_join and not isinstance(post, Epsilon):
                sequence = as_label_sequence(post)
                if sequence:
                    return eval_label_sequence(
                        self.graph, sequence, counters=self.counters
                    )
            return eval_rpq(
                self.graph,
                post,
                counters=self.counters,
                strict_labels=self.strict_labels,
            )

    def _eval_pre(self, unit: BatchUnit) -> Pairs:
        """``Pre_G`` -- recursive engine call (Algorithm 1 line 8)."""
        if isinstance(unit.pre, Epsilon):
            with self.timer.measure(PHASE_REMAINDER):
                return self._identity_pre(unit)
        return self._evaluate_node(unit.pre)

    def _identity_pre(self, unit: BatchUnit) -> Pairs:
        """``Pre = epsilon``: the identity relation driving the closure.

        For ``R*`` the zero-repetition case makes *every* graph vertex a
        result start, so the identity spans ``V``.  For ``R+`` only
        vertices of ``V_R`` can start a satisfying path; the smaller
        identity is an engine-side useless-1 elimination that both
        sharing methods apply symmetrically.
        """
        if unit.type == "*":
            return {(vertex, vertex) for vertex in self.graph.vertices()}
        return {(vertex, vertex) for vertex in self._closure_vertices(unit.r)}

    def _post_evaluator(self, unit: BatchUnit) -> RestrictedEvaluator | None:
        if not unit.post_labels:
            return None
        return RestrictedEvaluator(unit.post)

    # -- to implement ----------------------------------------------------
    def _eval_batch_unit(self, unit: BatchUnit) -> Pairs:
        raise NotImplementedError

    def _closure_vertices(self, r: RegexNode):
        """Vertices of ``V_R`` (the edge-level reduced graph of ``R``)."""
        raise NotImplementedError


class RTCSharingEngine(_SharingEngine):
    """The paper's method: share the RTC, evaluate batch units optimised.

    Parameters
    ----------
    graph:
        The edge-labeled multigraph ``G``.
    cache_mode:
        ``"syntactic"`` (default) keys the RTC cache on the normalised
        query text; ``"semantic"`` keys on the minimal DFA so that
        language-equal closure bodies share one RTC (extension).
    options:
        :class:`BatchUnitOptions` ablation switches (all on by default).
    collect_counters:
        Tally operation counts into ``self.counters``.

    >>> from repro.graph import paper_figure1_graph
    >>> engine = RTCSharingEngine(paper_figure1_graph())
    >>> sorted(engine.evaluate("d.(b.c)+.c"))
    [(7, 3), (7, 5)]
    """

    name = "RTC"

    def __init__(
        self,
        graph: LabeledMultigraph,
        cache_mode: str = "syntactic",
        options: BatchUnitOptions = DEFAULT_OPTIONS,
        collect_counters: bool = False,
        strict_labels: bool = False,
        max_clauses: int = 4096,
        clause_evaluator: str = "auto",
        simplify_queries: bool = False,
    ) -> None:
        super().__init__(
            graph,
            collect_counters,
            strict_labels,
            max_clauses,
            clause_evaluator,
            simplify_queries,
        )
        self.rtc_cache = RTCCache(mode=cache_mode)
        self.options = options

    def rtc_for(self, r: str | RegexNode) -> ReducedTransitiveClosure:
        """The (cached) RTC of closure body ``R`` (Algorithm 1 lines 9-11).

        Goes through the cache's atomic
        :meth:`~repro.core.cache.SharedDataCache.get_or_compute`, so
        concurrent engines (the server's worker pool) missing on the same
        body build the RTC once and count one miss.
        """
        node = parse(r)

        def build() -> ReducedTransitiveClosure:
            # Line 10: R_G by recursive evaluation (time -> Remainder).
            rg_pairs = self._evaluate_node(node)
            # Line 11: Compute_RTC (time -> Shared_Data).
            with self.timer.measure(PHASE_SHARED_DATA):
                return compute_rtc(rg_pairs)

        _key, rtc = self.rtc_cache.get_or_compute(node, build)
        return rtc

    def explain(self, query: str | RegexNode):
        """Static evaluation plan of ``query`` against this engine's cache.

        Returns a :class:`~repro.core.explain.QueryPlan`; nothing is
        evaluated and the cache is not touched.
        """
        from repro.core.explain import explain

        return explain(
            self.graph, query, rtc_cache=self.rtc_cache, max_clauses=self.max_clauses
        )

    def reaches(self, r: str | RegexNode, source: object, target: object) -> bool:
        """Extension: answer ``(source, target) in (R+)_G`` from the RTC.

        A reachability query on ``G_R`` (related work, Section VI), free
        once the RTC is cached.
        """
        return self.rtc_for(r).reaches(source, target)

    def _closure_vertices(self, r: RegexNode):
        return self.rtc_for(r).condensation.scc_of.keys()

    def _eval_batch_unit(self, unit: BatchUnit) -> Pairs:
        rtc = self.rtc_for(unit.r)
        pre_pairs = self._eval_pre(unit)
        post = self._post_evaluator(unit)
        seed = pre_pairs if unit.type == "*" else ()
        if self.counters is None:
            # Bit-parallel pipeline: the waste eliminations are structural,
            # so ablation runs (counters attached) keep the set pipeline.
            with self.timer.measure(PHASE_PRE_JOIN):
                joined = join_pre_with_rtc_bits(
                    pre_pairs, rtc, self.graph.interner, seed=seed
                )
            with self.timer.measure(PHASE_REMAINDER):
                return apply_post_bits(self.graph, joined, post)
        with self.timer.measure(PHASE_PRE_JOIN):
            joined_set = join_pre_with_rtc(
                pre_pairs,
                rtc,
                seed=seed,
                options=self.options,
                counters=self.counters,
            )
        with self.timer.measure(PHASE_REMAINDER):
            return apply_post(self.graph, joined_set, post, self.counters)

    def shared_data_size(self) -> int:
        return self.rtc_cache.total_shared_pairs()

    def reset_cache(self) -> None:
        self.rtc_cache.clear()


class FullSharingEngine(_SharingEngine):
    """Abul-Basher's method [8]: share the materialised ``R+_G``.

    The shared structure is the full vertex-pair closure, indexed by start
    vertex.  Batch units join ``Pre_G`` against it pair by pair with
    duplicate checks -- performing exactly the useless-1 (closure computed
    from *every* vertex of ``G_R``) and redundant-1/redundant-2 (repeated
    end-set enumeration per SCC) operations RTCSharing eliminates.
    """

    name = "Full"

    def __init__(
        self,
        graph: LabeledMultigraph,
        cache_mode: str = "syntactic",
        collect_counters: bool = False,
        strict_labels: bool = False,
        max_clauses: int = 4096,
        clause_evaluator: str = "auto",
        simplify_queries: bool = False,
    ) -> None:
        super().__init__(
            graph,
            collect_counters,
            strict_labels,
            max_clauses,
            clause_evaluator,
            simplify_queries,
        )
        self.closure_cache = ClosureCache(mode=cache_mode)

    def closure_for(self, r: str | RegexNode) -> dict:
        """The (cached) materialised ``R+_G`` indexed by start vertex.

        Concurrent misses on one body materialise the closure once (the
        cache's per-key in-flight latch), mirroring ``rtc_for``.
        """
        node = parse(r)

        def build() -> dict:
            rg_pairs = self._evaluate_node(node)  # R_G: Remainder
            with self.timer.measure(PHASE_SHARED_DATA):
                return self._materialise_closure(rg_pairs)

        _key, entry = self.closure_cache.get_or_compute(node, build)
        return entry

    def _materialise_closure(self, rg_pairs: Pairs) -> dict:
        """``R+_G`` by per-vertex BFS over ``G_R`` -- O(|V_R| * |E_R|).

        Every vertex of ``G_R`` seeds a walk (the useless-1 work), and the
        result stores one end-set per vertex.
        """
        graph = DiGraph.from_pairs(rg_pairs)
        closure: dict[object, frozenset] = {}
        counters = self.counters
        for start in graph.vertices():
            if counters is not None:
                counters.closure_walk_starts += 1
            seen: set = set()
            queue: deque = deque(graph.successors(start))
            while queue:
                vertex = queue.popleft()
                if vertex in seen:
                    continue
                seen.add(vertex)
                for successor in graph.successors(vertex):
                    if counters is not None:
                        counters.edges_scanned += 1
                    if successor not in seen:
                        queue.append(successor)
            closure[start] = frozenset(seen)
        return closure

    def _closure_vertices(self, r: RegexNode):
        return self.closure_for(r).keys()

    def _eval_batch_unit(self, unit: BatchUnit) -> Pairs:
        entry = self.closure_for(unit.r)
        pre_pairs = self._eval_pre(unit)
        post = self._post_evaluator(unit)
        counters = self.counters
        with self.timer.measure(PHASE_PRE_JOIN):
            joined: Pairs = set(pre_pairs) if unit.type == "*" else set()
            for vi, vj in pre_pairs:
                if counters is not None:
                    counters.join_probes += 1
                ends = entry.get(vj)
                if not ends:
                    continue
                if counters is not None:
                    # Every insert performs a duplicate check; repeated for
                    # Pre pairs sharing a start vertex (redundant-1/2 work).
                    counters.dup_checks += len(ends)
                for vk in ends:
                    joined.add((vi, vk))
        with self.timer.measure(PHASE_REMAINDER):
            return apply_post(self.graph, joined, post, counters)

    def shared_data_size(self) -> int:
        return self.closure_cache.total_shared_pairs()

    def reset_cache(self) -> None:
        self.closure_cache.clear()


_ENGINES = {
    "no": NoSharingEngine,
    "full": FullSharingEngine,
    "rtc": RTCSharingEngine,
}


def make_engine(name: str, graph: LabeledMultigraph, **kwargs) -> RPQEngine:
    """Deprecated engine factory; use :mod:`repro.db` instead.

    Thin shim over the :mod:`repro.db.registry` (so engines registered
    there resolve here too).  Unknown names raise
    :class:`~repro.errors.UnknownEngineError`, which still ``isinstance``-
    checks as the ``ValueError`` this function used to raise.
    """
    import warnings

    warnings.warn(
        "make_engine() is deprecated; use repro.db.GraphDB.open(..., "
        "engine=name) or repro.db.create_engine() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.db.registry import create_engine

    return create_engine(name, graph, **kwargs)
