"""Serialisation of reduced transitive closures (share across processes).

The whole point of the RTC is to be *shared*; sharing across processes or
runs needs a stable on-disk form.  This module provides a JSON codec for
:class:`~repro.core.rtc.ReducedTransitiveClosure` plus warm/save helpers
for an engine's RTC cache, so a long-lived service can persist the
expensive structures between restarts.

Format (versioned)::

    {
      "format": "repro-rtc",
      "version": 1,
      "num_gr_vertices": 5,
      "num_gr_edges": 5,
      "members": {"0": [2, 4], "1": [6], "2": [3, 5]},
      "closure": {"0": [0, 1], "1": [], "2": [2]}
    }

Vertices survive round-trips when they are JSON-representable (ints and
strings -- everything the datasets and examples use); exotic vertex types
are rejected up front with a clear error.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.cache import RTCCache
from repro.core.rtc import ReducedTransitiveClosure
from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation

__all__ = [
    "rtc_to_dict",
    "rtc_from_dict",
    "save_rtc",
    "load_rtc",
    "save_cache",
    "load_cache",
]

_FORMAT = "repro-rtc"
_VERSION = 1
_JSON_VERTEX_TYPES = (int, str)


class RtcFormatError(ReproError):
    """A serialised RTC could not be decoded."""


def rtc_to_dict(rtc: ReducedTransitiveClosure) -> dict:
    """Encode an RTC as a JSON-compatible dictionary."""
    for members in rtc.condensation.members.values():
        for vertex in members:
            if not isinstance(vertex, _JSON_VERTEX_TYPES):
                raise RtcFormatError(
                    f"vertex {vertex!r} of type {type(vertex).__name__} is "
                    "not JSON-serialisable; only int and str vertices can "
                    "be persisted"
                )
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "num_gr_vertices": rtc.num_gr_vertices,
        "num_gr_edges": rtc.num_gr_edges,
        "members": {
            str(scc_id): list(members)
            for scc_id, members in rtc.condensation.members.items()
        },
        "closure": {
            str(scc_id): sorted(targets)
            for scc_id, targets in rtc.closure.items()
        },
    }


def rtc_from_dict(payload: dict) -> ReducedTransitiveClosure:
    """Decode an RTC from :func:`rtc_to_dict` output.

    Rebuilds the condensation DAG from the closure's direct information:
    self-loops for self-reaching SCCs are restored, and cross edges are
    restored conservatively as the full closure relation (reachability-
    equivalent; the RTC only ever consumes ``closure``, ``members`` and
    ``scc_of``).
    """
    if payload.get("format") != _FORMAT:
        raise RtcFormatError(f"not a {_FORMAT} payload: {payload.get('format')!r}")
    if payload.get("version") != _VERSION:
        raise RtcFormatError(f"unsupported version {payload.get('version')!r}")
    try:
        members = {
            int(scc_id): tuple(vertices)
            for scc_id, vertices in payload["members"].items()
        }
        closure = {
            int(scc_id): frozenset(targets)
            for scc_id, targets in payload["closure"].items()
        }
        num_gr_vertices = int(payload["num_gr_vertices"])
        num_gr_edges = int(payload["num_gr_edges"])
    except (KeyError, TypeError, ValueError) as error:
        raise RtcFormatError(f"malformed RTC payload: {error}") from error

    if set(members) != set(closure):
        raise RtcFormatError("members and closure disagree on SCC ids")

    scc_of = {
        vertex: scc_id for scc_id, vertices in members.items() for vertex in vertices
    }
    dag = DiGraph()
    for scc_id in members:
        dag.add_vertex(scc_id)
    for scc_id, targets in closure.items():
        for target in targets:
            dag.add_edge(scc_id, target)
    condensation = Condensation(scc_of=scc_of, members=members, dag=dag)
    return ReducedTransitiveClosure(
        condensation=condensation,
        closure=closure,
        num_gr_vertices=num_gr_vertices,
        num_gr_edges=num_gr_edges,
    )


def save_rtc(rtc: ReducedTransitiveClosure, path: str | Path) -> None:
    """Write one RTC to a JSON file."""
    Path(path).write_text(json.dumps(rtc_to_dict(rtc)), encoding="utf-8")


def load_rtc(path: str | Path) -> ReducedTransitiveClosure:
    """Read one RTC from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise RtcFormatError(f"invalid JSON in {path}: {error}") from error
    return rtc_from_dict(payload)


def save_cache(cache: RTCCache, path: str | Path) -> None:
    """Persist an engine's whole RTC cache (key -> RTC) to one file."""
    payload = {
        "format": f"{_FORMAT}-cache",
        "version": _VERSION,
        "mode": cache.mode,
        "entries": {key: rtc_to_dict(rtc) for key, rtc in cache._entries.items()},
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_cache(path: str | Path) -> RTCCache:
    """Restore an RTC cache persisted with :func:`save_cache`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise RtcFormatError(f"invalid JSON in {path}: {error}") from error
    if payload.get("format") != f"{_FORMAT}-cache":
        raise RtcFormatError("not an RTC cache payload")
    cache = RTCCache(mode=payload.get("mode", "syntactic"))
    for key, entry in payload.get("entries", {}).items():
        cache.store(key, rtc_from_dict(entry))
    return cache
