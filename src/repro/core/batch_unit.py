"""``EvalBatchUnit`` -- Algorithm 2, the optimised batch-unit evaluation.

Evaluates ``Pre . R{+,*} . Post`` given ``Pre_G`` (pre-evaluated), the RTC
of ``R`` and the (not pre-evaluated) ``Post``, following the join pipeline
of Eq. (6)-(10) and eliminating the four kinds of wasted work the paper
defines in Section IV-B:

* **useless-1**  -- closure expansion is *driven by* ``Pre_G``: paths of
  ``R+`` not connected from a ``Pre_G`` end vertex are never touched
  (line 4: the loop runs over ``Pre_G`` only);
* **redundant-1** -- dedup of Eq. (7): two ``Pre_G`` pairs with the same
  start vertex ending in the *same* SCC trigger one expansion (lines 6-7);
* **redundant-2** -- dedup of Eq. (8): reachable SCCs are unioned per
  start vertex before member expansion (lines 9-10);
* **useless-2**  -- Eq. (9) needs no duplicate checks because distinct
  SCCs are disjoint (line 12 inserts without checking).

Each elimination can be disabled through :class:`BatchUnitOptions` for the
ablation benchmarks; all variants return identical results (property-
tested) and differ only in the operation counts they report.

``Type = '*'`` seeds the Eq. (9) result with ``Pre_G`` itself (zero
closure iterations), exactly like lines 2-3 of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.bitset.interner import VertexInterner
from repro.bitset.pairbitmap import PairBitmap
from repro.core.rtc import ReducedTransitiveClosure
from repro.graph.multigraph import LabeledMultigraph
from repro.rpq.counters import OpCounters
from repro.rpq.evaluate import pick_kernel
from repro.rpq.restricted import RestrictedEvaluator

__all__ = [
    "BatchUnitOptions",
    "eval_batch_unit",
    "join_pre_with_rtc",
    "join_pre_with_rtc_bits",
    "apply_post",
    "apply_post_bits",
]


@dataclass(frozen=True)
class BatchUnitOptions:
    """Ablation switches for the four optimisations of Algorithm 2.

    All default to True (the paper's RTCSharing).  Switching one off never
    changes results -- only the amount of work, visible via
    :class:`~repro.rpq.counters.OpCounters`.
    """

    eliminate_redundant1: bool = True
    eliminate_redundant2: bool = True
    eliminate_useless2: bool = True


DEFAULT_OPTIONS = BatchUnitOptions()


def join_pre_with_rtc(
    pre_pairs: Iterable[tuple[object, object]],
    rtc: ReducedTransitiveClosure,
    seed: Iterable[tuple[object, object]] = (),
    options: BatchUnitOptions = DEFAULT_OPTIONS,
    counters: OpCounters | None = None,
) -> set[tuple[object, object]]:
    """Lines 1-12 of Algorithm 2: ``(Pre . R+)_G`` via the RTC join.

    ``seed`` pre-populates the result (``Pre_G`` itself for ``R*``).
    Useless-1 elimination is inherent here: only ``pre_pairs`` drive the
    expansion, and a ``Pre_G`` end vertex outside ``V_R`` contributes
    nothing (no closure path can start there).
    """
    scc_of = rtc.condensation.scc_of
    members = rtc.condensation.members
    closure = rtc.closure

    res_eq7: set[tuple[object, int]] = set()
    res_eq8: set[tuple[object, int]] = set()
    res_eq9: set[tuple[object, object]] = set(seed)

    for vi, vj in pre_pairs:
        # Eq. (7): find the SCC containing the Pre end vertex.
        sj = scc_of.get(vj)
        if sj is None:
            # vj is not in V_R: no path satisfying R starts at it.
            continue
        if options.eliminate_redundant1:
            if counters is not None:
                counters.dup_checks += 1
            if (vi, sj) in res_eq7:
                if counters is not None:
                    counters.dup_hits += 1
                continue  # redundant-1 operations eliminated
            res_eq7.add((vi, sj))
        if counters is not None:
            counters.closure_walk_starts += 1
        # Eq. (8): SCCs reachable from s_j in TC(Ḡ_R).
        for sk in closure[sj]:
            if options.eliminate_redundant2:
                if counters is not None:
                    counters.dup_checks += 1
                if (vi, sk) in res_eq8:
                    if counters is not None:
                        counters.dup_hits += 1
                    continue  # redundant-2 operations eliminated
                res_eq8.add((vi, sk))
            # Eq. (9): expand the SCC into its member vertices.
            if options.eliminate_useless2:
                # Disjointness of SCCs makes duplicate checks useless;
                # insert without counting membership tests.
                for vk in members[sk]:
                    res_eq9.add((vi, vk))
                if counters is not None:
                    counters.cartesian_outputs += len(members[sk])
            else:
                for vk in members[sk]:
                    if counters is not None:
                        counters.dup_checks += 1
                        counters.cartesian_outputs += 1
                        if (vi, vk) in res_eq9:
                            counters.dup_hits += 1
                    res_eq9.add((vi, vk))
    return res_eq9


def join_pre_with_rtc_bits(
    pre_pairs: Iterable[tuple[object, object]],
    rtc: ReducedTransitiveClosure,
    interner: VertexInterner,
    seed: Iterable[tuple[object, object]] = (),
) -> PairBitmap:
    """Bit-parallel Eq. (7)-(9): the RTC join as row ORs.

    Identical relation to :func:`join_pre_with_rtc`, but every SCC's
    member set and every ``closure[s_j]`` union is a memoised bitmap, so
    one ``Pre_G`` pair contributes a single row-OR instead of a member
    Cartesian walk.  All four of Algorithm 2's waste eliminations are
    inherent (the per-``s_j`` mask *is* the deduped Eq. (8) union), which
    is why this variant takes no :class:`BatchUnitOptions` or counters --
    the instrumented ablations stay on the set join.  ``interner`` should
    be the graph's so rows compose with its adjacency bitmaps.
    """
    scc_of = rtc.condensation.scc_of
    members = rtc.condensation.members
    closure = rtc.closure
    intern = interner.intern

    member_masks: dict[int, int] = {}
    reach_masks: dict[int, int] = {}
    if isinstance(seed, PairBitmap) and seed.interner is interner:
        result = PairBitmap(dict(seed.rows), interner=interner)
    else:
        result = PairBitmap.from_pairs(seed, interner)
    rows = result.rows
    for vi, vj in pre_pairs:
        sj = scc_of.get(vj)
        if sj is None:
            # vj is not in V_R: no path satisfying R starts at it.
            continue
        mask = reach_masks.get(sj)
        if mask is None:
            mask = 0
            for sk in closure[sj]:
                member_mask = member_masks.get(sk)
                if member_mask is None:
                    member_mask = 0
                    for vk in members[sk]:
                        member_mask |= 1 << intern(vk)
                    member_masks[sk] = member_mask
                mask |= member_mask
            reach_masks[sj] = mask
        if mask:
            vi_id = intern(vi)
            rows[vi_id] = rows.get(vi_id, 0) | mask
    return result


def apply_post(
    graph: LabeledMultigraph,
    pairs: Iterable[tuple[object, object]] | PairBitmap,
    post: RestrictedEvaluator | None,
    counters: OpCounters | None = None,
) -> set[tuple[object, object]]:
    """Lines 13-16 of Algorithm 2: join with ``Post_G`` via restricted eval.

    ``post`` is None (or epsilon) when the batch unit has no postfix, in
    which case the input pairs are the result.  End-vertex expansions are
    memoised per distinct middle vertex: ``EvalRestrictedRPQ(Post, v_k)``
    is evaluated once per ``v_k``, which both engines (Full and RTC) share
    so that the paper's "Remainder" phase is method-independent.

    ``pairs`` may be a :class:`PairBitmap` (the bit-parallel join's
    output); it materialises here, at the last step that needs tuples.
    """
    if isinstance(pairs, PairBitmap):
        pairs = pairs.pairs
    if post is None or post.is_epsilon:
        return set(pairs)
    ends_cache: dict[object, set] = {}
    result: set[tuple[object, object]] = set()
    for vi, vk in pairs:
        ends = ends_cache.get(vk)
        if ends is None:
            if counters is not None:
                counters.traversal_starts += 1
            ends = post.ends_from(graph, vk, counters)
            ends_cache[vk] = ends
        for vl in ends:
            if counters is not None:
                counters.dup_checks += 1
            result.add((vi, vl))
    return result


def apply_post_bits(
    graph: LabeledMultigraph,
    joined: PairBitmap,
    post: RestrictedEvaluator | None,
) -> PairBitmap:
    """Bit-parallel lines 13-16: the Post join as per-row mask ORs.

    Identical relation to :func:`apply_post`, but the memoised per-middle
    -vertex expansion is a dst *bitmap* instead of a vertex set, so each
    ``(v_i, v_k)`` pair costs one OR into ``v_i``'s result row rather
    than ``|ends(v_k)|`` tuple insertions -- and with no postfix the
    input bitmap passes through untouched (no materialisation at all).
    Uncounted like :func:`join_pre_with_rtc_bits`; instrumented ablation
    runs stay on the set join.
    """
    if post is None or post.is_epsilon:
        return joined
    interner = graph.interner
    vertex_of = interner.vertex_of
    intern = interner.intern
    ends_masks: dict[int, int] = {}
    result = PairBitmap(interner=interner)
    rows = result.rows
    for vi_id, mask in joined.rows.items():
        out = 0
        while mask:
            low = mask & -mask
            vk_id = low.bit_length() - 1
            mask ^= low
            ends_mask = ends_masks.get(vk_id)
            if ends_mask is None:
                ends_mask = 0
                for vl in post.ends_from(graph, vertex_of(vk_id), None):
                    ends_mask |= 1 << intern(vl)
                ends_masks[vk_id] = ends_mask
            out |= ends_mask
        if out:
            rows[vi_id] = out
    return result


def eval_batch_unit(
    graph: LabeledMultigraph,
    pre_pairs: set[tuple[object, object]],
    rtc: ReducedTransitiveClosure,
    closure_type: str,
    post: RestrictedEvaluator | None,
    options: BatchUnitOptions = DEFAULT_OPTIONS,
    counters: OpCounters | None = None,
    kernel: str = "auto",
) -> set[tuple[object, object]]:
    """Algorithm 2 end to end: ``(Pre . R{+,*} . Post)_G``.

    Parameters mirror the paper's signature ``EvalBatchUnit(Pre_G, R̄+_G,
    SCC, Type, Post)``; the RTC object carries both ``R̄+_G`` and ``SCC``.
    ``kernel`` picks the join implementation
    (:func:`repro.rpq.evaluate.pick_kernel`): the bitmap join ignores
    ``options`` because its eliminations are structural.
    """
    if closure_type not in ("+", "*"):
        raise ValueError(f"closure type must be '+' or '*', got {closure_type!r}")
    seed = pre_pairs if closure_type == "*" else ()
    if pick_kernel(kernel, counters):
        joined = join_pre_with_rtc_bits(pre_pairs, rtc, graph.interner, seed=seed)
        return apply_post_bits(graph, joined, post).pairs
    res_eq9 = join_pre_with_rtc(
        pre_pairs, rtc, seed=seed, options=options, counters=counters
    )
    return apply_post(graph, res_eq9, post, counters)
