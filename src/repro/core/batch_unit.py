"""``EvalBatchUnit`` -- Algorithm 2, the optimised batch-unit evaluation.

Evaluates ``Pre . R{+,*} . Post`` given ``Pre_G`` (pre-evaluated), the RTC
of ``R`` and the (not pre-evaluated) ``Post``, following the join pipeline
of Eq. (6)-(10) and eliminating the four kinds of wasted work the paper
defines in Section IV-B:

* **useless-1**  -- closure expansion is *driven by* ``Pre_G``: paths of
  ``R+`` not connected from a ``Pre_G`` end vertex are never touched
  (line 4: the loop runs over ``Pre_G`` only);
* **redundant-1** -- dedup of Eq. (7): two ``Pre_G`` pairs with the same
  start vertex ending in the *same* SCC trigger one expansion (lines 6-7);
* **redundant-2** -- dedup of Eq. (8): reachable SCCs are unioned per
  start vertex before member expansion (lines 9-10);
* **useless-2**  -- Eq. (9) needs no duplicate checks because distinct
  SCCs are disjoint (line 12 inserts without checking).

Each elimination can be disabled through :class:`BatchUnitOptions` for the
ablation benchmarks; all variants return identical results (property-
tested) and differ only in the operation counts they report.

``Type = '*'`` seeds the Eq. (9) result with ``Pre_G`` itself (zero
closure iterations), exactly like lines 2-3 of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.core.rtc import ReducedTransitiveClosure
from repro.graph.multigraph import LabeledMultigraph
from repro.rpq.counters import OpCounters
from repro.rpq.restricted import RestrictedEvaluator

__all__ = ["BatchUnitOptions", "eval_batch_unit", "join_pre_with_rtc", "apply_post"]


@dataclass(frozen=True)
class BatchUnitOptions:
    """Ablation switches for the four optimisations of Algorithm 2.

    All default to True (the paper's RTCSharing).  Switching one off never
    changes results -- only the amount of work, visible via
    :class:`~repro.rpq.counters.OpCounters`.
    """

    eliminate_redundant1: bool = True
    eliminate_redundant2: bool = True
    eliminate_useless2: bool = True


DEFAULT_OPTIONS = BatchUnitOptions()


def join_pre_with_rtc(
    pre_pairs: Iterable[tuple[object, object]],
    rtc: ReducedTransitiveClosure,
    seed: Iterable[tuple[object, object]] = (),
    options: BatchUnitOptions = DEFAULT_OPTIONS,
    counters: OpCounters | None = None,
) -> set[tuple[object, object]]:
    """Lines 1-12 of Algorithm 2: ``(Pre . R+)_G`` via the RTC join.

    ``seed`` pre-populates the result (``Pre_G`` itself for ``R*``).
    Useless-1 elimination is inherent here: only ``pre_pairs`` drive the
    expansion, and a ``Pre_G`` end vertex outside ``V_R`` contributes
    nothing (no closure path can start there).
    """
    scc_of = rtc.condensation.scc_of
    members = rtc.condensation.members
    closure = rtc.closure

    res_eq7: set[tuple[object, int]] = set()
    res_eq8: set[tuple[object, int]] = set()
    res_eq9: set[tuple[object, object]] = set(seed)

    for vi, vj in pre_pairs:
        # Eq. (7): find the SCC containing the Pre end vertex.
        sj = scc_of.get(vj)
        if sj is None:
            # vj is not in V_R: no path satisfying R starts at it.
            continue
        if options.eliminate_redundant1:
            if counters is not None:
                counters.dup_checks += 1
            if (vi, sj) in res_eq7:
                if counters is not None:
                    counters.dup_hits += 1
                continue  # redundant-1 operations eliminated
            res_eq7.add((vi, sj))
        if counters is not None:
            counters.closure_walk_starts += 1
        # Eq. (8): SCCs reachable from s_j in TC(Ḡ_R).
        for sk in closure[sj]:
            if options.eliminate_redundant2:
                if counters is not None:
                    counters.dup_checks += 1
                if (vi, sk) in res_eq8:
                    if counters is not None:
                        counters.dup_hits += 1
                    continue  # redundant-2 operations eliminated
                res_eq8.add((vi, sk))
            # Eq. (9): expand the SCC into its member vertices.
            if options.eliminate_useless2:
                # Disjointness of SCCs makes duplicate checks useless;
                # insert without counting membership tests.
                for vk in members[sk]:
                    res_eq9.add((vi, vk))
                if counters is not None:
                    counters.cartesian_outputs += len(members[sk])
            else:
                for vk in members[sk]:
                    if counters is not None:
                        counters.dup_checks += 1
                        counters.cartesian_outputs += 1
                        if (vi, vk) in res_eq9:
                            counters.dup_hits += 1
                    res_eq9.add((vi, vk))
    return res_eq9


def apply_post(
    graph: LabeledMultigraph,
    pairs: Iterable[tuple[object, object]],
    post: RestrictedEvaluator | None,
    counters: OpCounters | None = None,
) -> set[tuple[object, object]]:
    """Lines 13-16 of Algorithm 2: join with ``Post_G`` via restricted eval.

    ``post`` is None (or epsilon) when the batch unit has no postfix, in
    which case the input pairs are the result.  End-vertex expansions are
    memoised per distinct middle vertex: ``EvalRestrictedRPQ(Post, v_k)``
    is evaluated once per ``v_k``, which both engines (Full and RTC) share
    so that the paper's "Remainder" phase is method-independent.
    """
    if post is None or post.is_epsilon:
        return set(pairs)
    ends_cache: dict[object, set] = {}
    result: set[tuple[object, object]] = set()
    for vi, vk in pairs:
        ends = ends_cache.get(vk)
        if ends is None:
            if counters is not None:
                counters.traversal_starts += 1
            ends = post.ends_from(graph, vk, counters)
            ends_cache[vk] = ends
        for vl in ends:
            if counters is not None:
                counters.dup_checks += 1
            result.add((vi, vl))
    return result


def eval_batch_unit(
    graph: LabeledMultigraph,
    pre_pairs: set[tuple[object, object]],
    rtc: ReducedTransitiveClosure,
    closure_type: str,
    post: RestrictedEvaluator | None,
    options: BatchUnitOptions = DEFAULT_OPTIONS,
    counters: OpCounters | None = None,
) -> set[tuple[object, object]]:
    """Algorithm 2 end to end: ``(Pre . R{+,*} . Post)_G``.

    Parameters mirror the paper's signature ``EvalBatchUnit(Pre_G, R̄+_G,
    SCC, Type, Post)``; the RTC object carries both ``R̄+_G`` and ``SCC``.
    """
    if closure_type not in ("+", "*"):
        raise ValueError(f"closure type must be '+' or '*', got {closure_type!r}")
    seed = pre_pairs if closure_type == "*" else ()
    res_eq9 = join_pre_with_rtc(
        pre_pairs, rtc, seed=seed, options=options, counters=counters
    )
    return apply_post(graph, res_eq9, post, counters)
