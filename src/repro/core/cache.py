"""Shared-data caches keyed by (sub-)query identity.

Both sharing engines keep a cache of "the expensive thing computed for a
closure body ``R``":

* :class:`RTCCache` for RTCSharing -- stores
  :class:`~repro.core.rtc.ReducedTransitiveClosure` objects;
* :class:`ClosureCache` for FullSharing -- stores the materialised
  ``R+_G`` as a start-vertex index ``v -> frozenset(ends)``.

Keys are computed by a pluggable canonicaliser:

* ``"syntactic"`` -- the normalised ``to_string`` of the AST.  Cheap;
  shares between textually equal sub-queries (the paper's setting: the
  workload reuses the same ``R`` strings).
* ``"semantic"``  -- the minimal-DFA :func:`~repro.regex.dfa.canonical_key`.
  Shares between *language-equal* bodies such as ``a.b|a.c`` and
  ``a.(b|c)`` -- an extension beyond the paper, costing one
  determinise+minimise per distinct body.

Hit/miss statistics feed the Experiment-2 analysis (amortisation of
``Shared_Data`` across RPQs).

Concurrency contract
--------------------
Caches are shared between the per-worker engines of
:mod:`repro.server`, so every public operation (``lookup`` / ``store`` /
``get_or_compute`` / ``clear`` / ``total_shared_pairs`` / ``len`` /
``in``) is individually atomic: an internal :class:`threading.RLock`
serialises them, and the hit/miss statistics are updated under the same
lock.

Engines populate the cache through :meth:`SharedDataCache.get_or_compute`,
which holds a per-key in-flight latch: concurrent misses on one key
compute the value **once** (one miss recorded), with the other threads
blocking on the latch and then taking a hit.  The raw *lookup-then-store*
sequence is still available and still not atomic -- two threads using it
may both compute the value and store it twice; that legacy race is benign
(both compute equal values for the same immutable graph; the second
``store`` overwrites with an equivalent entry) but it double-counts
misses, which is why the engines moved off it.  ``clear`` only drops
stored entries: a compute already in flight stores its (pre-clear) value
afterwards, so callers that mutate the graph must drain evaluations first
-- exactly what :class:`~repro.db.GraphDB`'s session lock and the
server's exclusive drain-then-apply updates guarantee.  Cached values are
treated as immutable by all engines.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.core.rtc import ReducedTransitiveClosure
from repro.regex.ast import RegexNode
from repro.regex.dfa import canonical_key

__all__ = ["CacheStats", "SharedDataCache", "RTCCache", "ClosureCache", "make_key_function"]

Value = TypeVar("Value")


def make_key_function(mode: str):
    """Return the canonicaliser for ``mode`` (``syntactic``/``semantic``)."""
    if mode == "syntactic":
        return lambda node: node.to_string()
    if mode == "semantic":
        return canonical_key
    raise ValueError(f"unknown cache mode {mode!r}; use 'syntactic' or 'semantic'")


@dataclass
class CacheStats:
    """Hit/miss/entry statistics of one shared-data cache."""

    hits: int = 0
    misses: int = 0
    entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class SharedDataCache(Generic[Value]):
    """A keyed cache with stats; the common machinery of both caches.

    Thread-safe at the granularity of individual operations (see the
    module docstring for the full concurrency contract); safe to share
    between engines running on different threads.
    """

    mode: str = "syntactic"
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._key_function = make_key_function(self.mode)
        self._entries: dict[str, Value] = {}
        self._lock = threading.RLock()
        # Per-key in-flight latches for get_or_compute: key -> (Event set
        # when the owning thread finished (or failed) computing the value,
        # id of the owning thread -- for re-entrancy detection).
        self._inflight: dict[str, tuple[threading.Event, int]] = {}

    def key_for(self, node: RegexNode) -> str:
        """The cache key of a closure body."""
        return self._key_function(node)

    def lookup(self, node: RegexNode) -> tuple[str, Value | None]:
        """Return ``(key, value-or-None)`` and record the hit/miss.

        Atomic; but a miss followed by :meth:`store` is not, so
        concurrent threads may each compute the missing value once
        (benign -- see the module concurrency contract).
        """
        key = self.key_for(node)
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return key, value

    def get_or_compute(self, node: RegexNode, factory) -> tuple[str, Value]:
        """Return ``(key, value)``, computing the value at most once per key.

        On a miss the calling thread becomes the key's *owner*: it runs
        ``factory()`` (outside the lock) and publishes the result; any
        other thread missing on the same key meanwhile blocks on the
        key's latch and then returns the published value as a hit.  So a
        burst of concurrent first-contact queries on one closure body
        records exactly one miss and computes the shared data once.

        If the owner's ``factory`` raises, the error propagates to the
        owner only; waiters wake and race to become the next owner (each
        actual computation attempt records one miss).

        Re-entrancy: a ``factory`` may call back into ``get_or_compute``
        with the *same* key on the same thread -- in ``semantic`` cache
        mode a nested closure body can be language-equal to its
        enclosing body, so their canonical keys collide.  The re-entrant
        call must not wait on its own latch; it computes directly and
        the enclosing computation later overwrites the entry with an
        equal value (the legacy lookup/store behaviour, single-threaded
        by construction).
        """
        key = self.key_for(node)
        current = threading.get_ident()
        while True:
            with self._lock:
                value = self._entries.get(key)
                if value is not None:
                    self.stats.hits += 1
                    return key, value
                entry = self._inflight.get(key)
                if entry is None:
                    latch = threading.Event()
                    self._inflight[key] = (latch, current)
                    self.stats.misses += 1
                    owner = True
                    break
                latch, owner_thread = entry
                if owner_thread == current:
                    # Re-entrant same-key call from our own factory: the
                    # latch is ours, so compute directly instead of
                    # waiting on it forever.
                    self.stats.misses += 1
                    owner = False
                    break
            latch.wait()
        if not owner:
            value = factory()
            with self._lock:
                self._entries[key] = value
                self.stats.entries = len(self._entries)
            return key, value
        try:
            value = factory()
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
            latch.set()
            raise
        with self._lock:
            self._entries[key] = value
            self.stats.entries = len(self._entries)
            self._inflight.pop(key, None)
        latch.set()
        return key, value

    def store(self, key: str, value: Value) -> None:
        """Insert a freshly computed entry (last writer wins)."""
        with self._lock:
            self._entries[key] = value
            self.stats.entries = len(self._entries)

    def clear(self) -> None:
        """Drop all entries (stats are kept)."""
        with self._lock:
            self._entries.clear()
            self.stats.entries = 0

    def snapshot_stats(self) -> CacheStats:
        """A point-in-time copy of the stats, taken under the lock."""
        with self._lock:
            return CacheStats(
                hits=self.stats.hits,
                misses=self.stats.misses,
                entries=self.stats.entries,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, node: RegexNode) -> bool:
        key = self.key_for(node)
        with self._lock:
            return key in self._entries


class RTCCache(SharedDataCache[ReducedTransitiveClosure]):
    """RTCSharing's cache: closure body -> reduced transitive closure.

    The shared-data *size* of an entry is ``rtc.num_pairs`` -- the number
    of SCC pairs in ``TC(Ḡ_R)`` (Fig. 12's RTC series).
    """

    def total_shared_pairs(self) -> int:
        """Sum of ``num_pairs`` over all cached RTCs."""
        with self._lock:
            return sum(rtc.num_pairs for rtc in self._entries.values())


class ClosureCache(SharedDataCache[dict]):
    """FullSharing's cache: closure body -> ``R+_G`` indexed by start vertex.

    Entries map ``v -> frozenset(ends)``; the shared-data size of an entry
    is the pair count ``sum(len(ends))`` (Fig. 12's Full series).
    """

    @staticmethod
    def entry_size(entry: dict) -> int:
        """Number of vertex pairs in one materialised closure."""
        return sum(len(ends) for ends in entry.values())

    def total_shared_pairs(self) -> int:
        """Sum of pair counts over all cached closures."""
        with self._lock:
            return sum(self.entry_size(entry) for entry in self._entries.values())
