"""``DecomposeCL`` -- split a DNF clause into ``(Pre, R, Type, Post)``.

Algorithm 1 (line 4) decomposes every clause around its **rightmost**
closure literal:

* ``Pre``  -- everything left of it (may contain further closures; the
  engine evaluates it by a recursive RTCSharing call);
* ``R``    -- the closure body whose RTC is shared;
* ``Type`` -- ``"+"``, ``"*"``, or ``None`` when the clause has no closure;
* ``Post`` -- everything right of it; guaranteed closure-free because the
  split point is the *rightmost* closure.  In a clause, literals right of
  the last closure are all labels, so ``Post`` is a label sequence.

When the clause has no closure at all, the convention of the paper holds:
``Pre = R = epsilon``, ``Type = NULL``, ``Post =`` the entire clause.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dnf import Clause, ClosureLiteral, clause_to_regex
from repro.regex.ast import EPSILON, Label, RegexNode, concat

__all__ = ["BatchUnit", "decompose_clause"]


@dataclass(frozen=True)
class BatchUnit:
    """One batch unit ``Pre . R{+,*} . Post`` (or a closure-free clause).

    Attributes
    ----------
    pre:
        AST of ``Pre`` (``EPSILON`` when empty); may contain closures.
    r:
        AST of the closure body ``R``; ``None`` for closure-free clauses.
    type:
        ``"+"``, ``"*"``, or ``None``.
    post:
        AST of ``Post``; closure-free by construction.
    post_labels:
        ``Post`` as a plain label list (always available: Post is a label
        sequence in a clause); empty list for ``Post = epsilon``.
    """

    pre: RegexNode
    r: RegexNode | None
    type: str | None
    post: RegexNode
    post_labels: tuple[str, ...]

    @property
    def has_closure(self) -> bool:
        """True for genuine ``Pre.R+.Post`` units, False for plain clauses."""
        return self.type is not None

    def __str__(self) -> str:
        if not self.has_closure:
            return f"BatchUnit(Post={self.post})"
        return (
            f"BatchUnit(Pre={self.pre}, R={self.r}, Type={self.type}, "
            f"Post={self.post})"
        )


def decompose_clause(clause: Clause) -> BatchUnit:
    """Split ``clause`` at its rightmost closure literal (Algorithm 1 line 4)."""
    split = None
    for index in range(len(clause) - 1, -1, -1):
        if isinstance(clause[index], ClosureLiteral):
            split = index
            break

    if split is None:
        post = clause_to_regex(clause)
        labels = tuple(literal.name for literal in clause)
        return BatchUnit(
            pre=EPSILON, r=None, type=None, post=post, post_labels=labels
        )

    closure: ClosureLiteral = clause[split]
    pre_literals = clause[:split]
    post_literals = clause[split + 1 :]
    # Right of the rightmost closure there can only be labels.
    post_labels = tuple(literal.name for literal in post_literals)

    pre = clause_to_regex(pre_literals) if pre_literals else EPSILON
    post = concat(*(Label(name) for name in post_labels)) if post_labels else EPSILON
    return BatchUnit(
        pre=pre,
        r=closure.body,
        type=closure.kind,
        post=post,
        post_labels=post_labels,
    )
