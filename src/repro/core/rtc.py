"""The reduced transitive closure (RTC) -- paper Section III-C.

The RTC is the paper's lightweight shareable structure: instead of
materialising the full closure result ``R+_G`` (up to ``|V_R|^2`` vertex
pairs), share

* the SCC membership of the edge-level reduced graph ``G_R`` (the relation
  ``SCC(V, S)`` of Section IV-B), and
* the transitive closure of the condensation ``Ḡ_R`` (the relation
  ``R̄+_G(START_S, END_S)``).

Theorem 1 reconstructs ``R+_G`` as the union of Cartesian products
``s_k x s_l`` over closed SCC pairs ``(v̄_k, v̄_l)``;
:meth:`ReducedTransitiveClosure.expand` implements it verbatim and the test
suite checks it against four independent closure algorithms.

:func:`compute_rtc` is ``Compute_RTC`` of Algorithm 1 (line 11): build
``G_R`` from the evaluation result ``R_G`` (which *is* the edge set
``E_R``), run Tarjan, and close the condensation with the bitset DP.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation, condense
from repro.graph.transitive_closure import dag_closure_bitsets, iter_bits

__all__ = ["ReducedTransitiveClosure", "compute_rtc"]


@dataclass(frozen=True)
class ReducedTransitiveClosure:
    """``R̄+_G`` plus the SCC bookkeeping needed to interpret it.

    Attributes
    ----------
    condensation:
        The vertex-level reduction of ``G_R`` (SCC map + condensed DAG).
    closure:
        ``scc_id -> frozenset(scc_id)``: the transitive closure of
        ``Ḡ_R``.  ``s`` appears in ``closure[s]`` iff the SCC is cyclic.
    num_gr_vertices / num_gr_edges:
        ``|V_R|`` and ``|E_R|`` of the edge-level reduced graph, kept for
        the statistics of Figs. 12-13 and Table III.
    """

    condensation: Condensation
    closure: dict[int, frozenset[int]]
    num_gr_vertices: int
    num_gr_edges: int

    # ------------------------------------------------------------------
    # structure accessors
    # ------------------------------------------------------------------
    @property
    def scc_of(self) -> dict:
        """Vertex of ``G_R`` -> SCC id (the relation ``SCC(V, S)``)."""
        return self.condensation.scc_of

    def members(self, scc_id: int) -> tuple:
        """Vertices of the SCC ``s_i`` (the set the paper also calls s_i)."""
        return self.condensation.members[scc_id]

    @property
    def num_sccs(self) -> int:
        """``|V̄_R|`` -- vertex count of the two-level reduced graph."""
        return self.condensation.num_sccs

    @property
    def num_pairs(self) -> int:
        """Size of the shared data: number of pairs in ``TC(Ḡ_R)``.

        This is the quantity Fig. 12 plots for RTCSharing.
        """
        return sum(len(targets) for targets in self.closure.values())

    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate the SCC-id pairs of ``TC(Ḡ_R)``."""
        for source_id, targets in self.closure.items():
            for target_id in targets:
                yield (source_id, target_id)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def reaches(self, source: object, target: object) -> bool:
        """Membership test ``(source, target) in R+_G`` without expansion.

        Two dictionary lookups and one set test -- the RTC doubling as a
        reachability index over ``G_R`` (related-work Section VI).
        """
        scc_of = self.condensation.scc_of
        source_id = scc_of.get(source)
        target_id = scc_of.get(target)
        if source_id is None or target_id is None:
            return False
        return target_id in self.closure[source_id]

    def ends_from(self, vertex: object) -> Iterator[object]:
        """All ``w`` with ``(vertex, w) in R+_G``, lazily (Theorem 1 row)."""
        scc_id = self.condensation.scc_of.get(vertex)
        if scc_id is None:
            return
        members = self.condensation.members
        for target_id in self.closure[scc_id]:
            yield from members[target_id]

    def expand(self) -> set[tuple[object, object]]:
        """Theorem 1: materialise ``R+_G`` from the RTC.

        ``R+_G = {(v_i, v_j) | (v̄_k, v̄_l) in TC(Ḡ_R), (v_i, v_j) in
        s_k x s_l}``.
        """
        result: set[tuple[object, object]] = set()
        members = self.condensation.members
        for source_id, targets in self.closure.items():
            source_members = members[source_id]
            for target_id in targets:
                target_members = members[target_id]
                for source in source_members:
                    for target in target_members:
                        result.add((source, target))
        return result

    def expand_bits(self, interner=None):
        """Theorem 1 as a :class:`~repro.bitset.PairBitmap`.

        Same relation as :meth:`expand` but the member Cartesian
        products are ORed row-wise, never enumerated pair by pair --
        tuples materialise only if someone iterates the bitmap (the
        lazy path :class:`repro.db.ResultSet` rides).  ``interner``
        defaults to a private id space over ``V_R``; pass the graph's
        to keep the rows composable with its adjacency bitmaps.
        """
        from repro.bitset.kernel import expand_rtc_bits

        return expand_rtc_bits(self, interner=interner)

    @property
    def num_expanded_pairs(self) -> int:
        """``|R+_G|`` computed without materialising it (sum of products)."""
        members = self.condensation.members
        total = 0
        for source_id, targets in self.closure.items():
            source_size = len(members[source_id])
            for target_id in targets:
                total += source_size * len(members[target_id])
        return total


def compute_rtc(rg: Iterable[tuple[object, object]] | DiGraph) -> ReducedTransitiveClosure:
    """``Compute_RTC(R_G)`` of Algorithm 1: ``R_G -> G_R -> Ḡ_R -> TC(Ḡ_R)``.

    ``rg`` is the evaluation result of ``R`` on ``G`` -- by definition the
    edge set of the edge-level reduced graph ``G_R`` (Lemma 1's setup) --
    either as an iterable of vertex pairs or as an already-built
    :class:`DiGraph`.
    """
    if isinstance(rg, DiGraph):
        graph = rg
    else:
        graph = DiGraph.from_pairs(rg)
    condensation = condense(graph)
    bitsets = dag_closure_bitsets(condensation)
    closure = {
        scc_id: frozenset(iter_bits(mask)) for scc_id, mask in bitsets.items()
    }
    return ReducedTransitiveClosure(
        condensation=condensation,
        closure=closure,
        num_gr_vertices=graph.num_vertices,
        num_gr_edges=graph.num_edges,
    )
