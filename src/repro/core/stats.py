"""Reduction and sharing statistics -- the quantities of Figs. 12-13.

:func:`reduction_stats` measures, for a graph and a closure body ``R``:

* ``|V_R|``, ``|E_R|``      -- the edge-level reduced graph (what
  FullSharing's closure runs on, Fig. 13's Full series);
* ``|V̄_R|``, ``|Ē_R|``     -- the condensation (Fig. 13's RTC series);
* ``full_closure_pairs``    -- ``|R+_G|`` (Fig. 12's Full series);
* ``rtc_pairs``             -- ``|TC(Ḡ_R)|`` (Fig. 12's RTC series);
* ``average_scc_size``      -- the paper's Yago2s diagnostic (1.00 means
  vertex-level reduction buys nothing).

``full_closure_pairs`` is computed from the RTC by the sum-of-products
formula of Theorem 1, so the statistic is exact without materialising the
closure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reduction import reduce_graph
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import RegexNode

__all__ = ["ReductionStats", "reduction_stats"]


@dataclass(frozen=True)
class ReductionStats:
    """All size statistics of a two-level reduction for one ``R``."""

    query: str
    num_graph_vertices: int
    num_graph_edges: int
    num_gr_vertices: int
    num_gr_edges: int
    num_condensed_vertices: int
    num_condensed_edges: int
    rtc_pairs: int
    full_closure_pairs: int
    average_scc_size: float

    @property
    def vertex_reduction_ratio(self) -> float:
        """``|V_R| / |V̄_R|`` -- how much the vertex level shrinks (Fig. 13)."""
        if self.num_condensed_vertices == 0:
            return 1.0
        return self.num_gr_vertices / self.num_condensed_vertices

    @property
    def shared_size_ratio(self) -> float:
        """``|R+_G| / |TC(Ḡ_R)|`` -- shared-data saving (Fig. 12)."""
        if self.rtc_pairs == 0:
            return 1.0
        return self.full_closure_pairs / self.rtc_pairs


def reduction_stats(graph: LabeledMultigraph, query: str | RegexNode) -> ReductionStats:
    """Measure the reduction of ``graph`` for closure body ``query``."""
    result = reduce_graph(graph, query)
    rtc = result.rtc
    return ReductionStats(
        query=str(query),
        num_graph_vertices=graph.num_vertices,
        num_graph_edges=graph.num_edges,
        num_gr_vertices=result.num_gr_vertices,
        num_gr_edges=result.num_gr_edges,
        num_condensed_vertices=result.num_condensed_vertices,
        num_condensed_edges=result.num_condensed_edges,
        rtc_pairs=rtc.num_pairs,
        full_closure_pairs=rtc.num_expanded_pairs,
        average_scc_size=result.average_scc_size,
    )
