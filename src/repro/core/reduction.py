"""RPQ-based graph reduction -- paper Section III.

Two levels:

* :func:`edge_level_reduce` (``G -> G_R``, Section III-A): evaluate ``R``
  on ``G``; every result pair becomes one unlabeled edge.  Vertices not on
  any satisfying path disappear, labels disappear (every edge "is" R), and
  parallel satisfying paths collapse -- the three reduction aspects the
  paper lists.
* :func:`vertex_level_reduce` (``G_R -> Ḡ_R``, Section III-B): condense
  SCCs (re-exported from :mod:`repro.graph.scc`).

:func:`reduce_graph` chains both and returns the full
:class:`ReductionResult`, including the statistics that Figs. 12-13 plot
(``|V_R|`` vs ``|V̄_R|`` etc.).

The evaluation of ``R`` itself is pluggable: Algorithm 1 computes ``R_G``
by a *recursive* RTCSharing call (so nested closures reuse cached RTCs);
standalone users get the automaton evaluator by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Iterable

from repro.core.rtc import ReducedTransitiveClosure, compute_rtc
from repro.graph.digraph import DiGraph
from repro.graph.multigraph import LabeledMultigraph
from repro.graph.scc import Condensation, condense
from repro.regex.ast import RegexNode
from repro.regex.parser import parse
from repro.rpq.evaluate import eval_rpq

__all__ = [
    "edge_level_reduce",
    "vertex_level_reduce",
    "reduce_graph",
    "ReductionResult",
]

# An RPQ evaluator: (graph, query AST) -> set of vertex pairs.
Evaluator = Callable[[LabeledMultigraph, RegexNode], set]


def edge_level_reduce(
    graph: LabeledMultigraph,
    query: str | RegexNode,
    evaluator: Evaluator | None = None,
) -> DiGraph:
    """Edge-level reduction ``G -> G_R`` for RPQ ``R`` (Section III-A).

    ``E_R = {(v_i, v_j) | some path from v_i to v_j satisfies R}``; the
    result is an unlabeled simple digraph whose vertex set contains exactly
    the endpoints of satisfying paths.
    """
    node = parse(query)
    if evaluator is None:
        pairs: Iterable[tuple[object, object]] = eval_rpq(graph, node)
    else:
        pairs = evaluator(graph, node)
    return DiGraph.from_pairs(pairs)


def vertex_level_reduce(reduced: DiGraph) -> Condensation:
    """Vertex-level reduction ``G_R -> Ḡ_R`` (Section III-B)."""
    return condense(reduced)


@dataclass(frozen=True)
class ReductionResult:
    """Everything the two-level reduction of ``G`` for ``R`` produces."""

    gr: DiGraph
    condensation: Condensation
    rtc: ReducedTransitiveClosure

    @property
    def num_gr_vertices(self) -> int:
        """``|V_R|`` (Fig. 13's FullSharing series)."""
        return self.gr.num_vertices

    @property
    def num_gr_edges(self) -> int:
        """``|E_R|``."""
        return self.gr.num_edges

    @property
    def num_condensed_vertices(self) -> int:
        """``|V̄_R|`` (Fig. 13's RTCSharing series)."""
        return self.condensation.num_sccs

    @property
    def num_condensed_edges(self) -> int:
        """``|Ē_R|``."""
        return self.condensation.dag.num_edges

    @property
    def average_scc_size(self) -> float:
        """Average vertices per SCC -- the paper's Yago2s diagnostic."""
        return self.condensation.average_scc_size()


def reduce_graph(
    graph: LabeledMultigraph,
    query: str | RegexNode,
    evaluator: Evaluator | None = None,
) -> ReductionResult:
    """Run both reduction levels and compute the RTC for ``R``.

    Convenience wrapper for examples, stats and tests; the engines drive
    the same pieces individually so they can time each phase separately.
    """
    gr = edge_level_reduce(graph, query, evaluator)
    rtc = compute_rtc(gr)
    return ReductionResult(gr=gr, condensation=rtc.condensation, rtc=rtc)
