"""RPQ evaluation substrate.

Public surface:

* :func:`eval_rpq` -- automaton product-BFS evaluation of a full RPQ
  (Section II-B / Example 2 semantics), used by the NoSharing baseline and
  for closure-free clauses;
* :func:`eval_rpq_from` -- one traversal from a fixed start vertex;
* :func:`eval_partial_rpq` -- shard-local partial-path evaluation for
  the cluster's boundary join over edge-cut partitions;
* :func:`eval_label_sequence` / :func:`eval_labels_from` -- join-based
  evaluation of closure-free label sequences (rare-label-first option);
* :class:`RestrictedEvaluator` -- ``EvalRestrictedRPQ(Post, v_k)``;
* :class:`OpCounters` -- operation tallies for the ablation benches.
"""

from repro.rpq.counters import OpCounters
from repro.rpq.dfa_eval import eval_dfa_from, eval_rpq_dfa
from repro.rpq.evaluate import candidate_starts, check_alphabet, eval_rpq, eval_rpq_from
from repro.rpq.label_join import eval_label_sequence, eval_labels_from
from repro.rpq.partial import CUT_COLUMNS, PARTIAL_COLUMNS, eval_partial_rpq
from repro.rpq.restricted import RestrictedEvaluator, as_label_sequence
from repro.rpq.witness import Witness, eval_rpq_with_witness

__all__ = [
    "OpCounters",
    "eval_rpq_dfa",
    "eval_dfa_from",
    "eval_rpq",
    "eval_rpq_from",
    "candidate_starts",
    "check_alphabet",
    "eval_label_sequence",
    "eval_labels_from",
    "eval_partial_rpq",
    "PARTIAL_COLUMNS",
    "CUT_COLUMNS",
    "RestrictedEvaluator",
    "as_label_sequence",
    "eval_rpq_with_witness",
    "Witness",
]
