"""Automaton-based RPQ evaluation (the paper's Section II-B / Example 2).

The evaluator simulates an epsilon-free NFA while traversing the graph:
from each candidate start vertex it runs a BFS over (vertex, NFA-state)
product pairs, recording ``(start, vertex)`` whenever an accepting state is
reached.  A (vertex, state) pair already visited from the same start is
never expanded again -- exactly the duplicate-avoidance rule of the paper's
Example 2 (``p(v7,d,v4,b,v1,c,v2,b,v5,c,v4,b,v1)`` terminates because
``(v1, q2)`` was seen before).

Two standard prunings, both used by the Yakovets-style baseline the paper
compares against, are applied:

* start vertices are restricted to those with at least one out-edge whose
  label can begin a match (``first_labels`` of the NFA);
* per (vertex, state) pair, only the labels present in both the automaton's
  transition row and the vertex's out-edges are followed.

This module is the workhorse behind ``EvalRPQwithoutKC`` (closure-free
clauses), ``EvalRestrictedRPQ`` (``Post`` from a single vertex) and the
NoSharing baseline (whole queries, closures included).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.bitset.kernel import eval_rpq_bits
from repro.errors import UnknownLabelError
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import RegexNode
from repro.regex.nfa import LabelNFA, compile_nfa
from repro.regex.parser import parse
from repro.rpq.counters import OpCounters

__all__ = [
    "eval_rpq",
    "eval_rpq_from",
    "candidate_starts",
    "check_alphabet",
    "pick_kernel",
]


def pick_kernel(kernel: str, counters: OpCounters | None) -> bool:
    """Resolve a ``kernel`` argument to "use the bitmap kernel?".

    ``"auto"`` routes to the bit-parallel kernel exactly when no
    :class:`OpCounters` is attached: the counters tally per-edge
    traversal work that a word-parallel sweep never performs, so
    instrumented runs (the paper's ablation figures) stay on the set
    kernel while production paths get the fast one.  ``"bits"`` and
    ``"sets"`` force a side, for identity tests and benchmarks.
    """
    if kernel == "auto":
        return counters is None
    if kernel == "bits":
        return True
    if kernel == "sets":
        return False
    raise ValueError(f"unknown kernel {kernel!r}; expected auto, bits, or sets")


def check_alphabet(graph: LabeledMultigraph, nfa: LabelNFA) -> None:
    """Raise :class:`UnknownLabelError` for labels absent from the graph.

    Evaluation without this check is still correct (missing labels match
    nothing); engines expose it as an opt-in strictness knob.
    """
    known = set(graph.labels())
    for label in sorted(nfa.labels):
        if label not in known:
            raise UnknownLabelError(label)


def candidate_starts(graph: LabeledMultigraph, nfa: LabelNFA) -> set:
    """Vertices that can possibly begin a non-empty match.

    A traversal from any other vertex dies on the first step, so skipping
    them is pure win.  (Zero-length matches from ``nullable`` queries are
    handled separately by the caller.)
    """
    starts: set = set()
    for label in nfa.first_labels:
        for source, _target in graph.edges_with_label(label):
            starts.add(source)
    return starts


def eval_rpq_from(
    graph: LabeledMultigraph,
    nfa: LabelNFA,
    start: object,
    counters: OpCounters | None = None,
) -> set:
    """End vertices of paths from ``start`` satisfying the automaton.

    Implements one traversal of the paper's Example 2: BFS over
    (vertex, state) pairs with a per-start visited set.  Zero-length
    matches are **not** included (callers add ``start`` when the query is
    nullable and they want reflexive pairs).
    """
    delta = nfa.delta
    accepts = nfa.accepts
    results: set = set()
    visited: set[tuple[object, int]] = set()  # repro: noqa[RPR801] -- (vertex, state) visited set of the set-kernel baseline, not a pair relation
    queue: deque[tuple[object, int]] = deque()
    for state in nfa.start:
        pair = (start, state)
        visited.add(pair)
        queue.append(pair)

    if counters is not None:
        counters.traversal_starts += 1

    while queue:
        vertex, state = queue.popleft()
        if counters is not None:
            counters.states_expanded += 1
        row = delta[state]
        if not row:
            continue
        out_map = graph.out_map(vertex)
        if not out_map:
            continue
        # Iterate only labels present on both sides of the product.
        for label in row.keys() & out_map.keys():
            next_states = row[label]
            for target in out_map[label]:
                if counters is not None:
                    counters.edges_scanned += 1
                for next_state in next_states:
                    pair = (target, next_state)
                    if pair in visited:
                        continue
                    visited.add(pair)
                    queue.append(pair)
                    if next_state in accepts:
                        results.add(target)
    if counters is not None:
        counters.pairs_emitted += len(results)
    return results


def eval_rpq(
    graph: LabeledMultigraph,
    query: str | RegexNode | LabelNFA,
    starts: Iterable | None = None,
    counters: OpCounters | None = None,
    strict_labels: bool = False,
    kernel: str = "auto",
) -> set[tuple[object, object]]:
    """Evaluate an RPQ: all ``(start, end)`` pairs of satisfying paths.

    Parameters
    ----------
    graph:
        The edge-labeled multigraph ``G``.
    query:
        Query text, AST, or a pre-compiled :class:`LabelNFA`.
    starts:
        Restrict traversal to these start vertices (used by
        ``EvalRestrictedRPQ``); ``None`` evaluates from every candidate.
    counters:
        Optional :class:`OpCounters` to tally traversal work.
    strict_labels:
        When true, raise :class:`UnknownLabelError` if the query uses a
        label missing from the graph.
    kernel:
        ``"auto"`` (bitmaps unless counters are attached), ``"bits"``,
        or ``"sets"`` -- see :func:`pick_kernel`.

    Notes
    -----
    A nullable query (language contains the empty word) contributes the
    pair ``(v, v)`` for **every** vertex of the graph (or of ``starts``),
    following Definition 2 with the zero-length path.
    """
    if isinstance(query, LabelNFA):
        nfa = query
    else:
        nfa = compile_nfa(parse(query))
    if strict_labels:
        check_alphabet(graph, nfa)
    if pick_kernel(kernel, counters):
        return eval_rpq_bits(graph, nfa, starts=starts)

    if starts is None:
        traversal_starts: Iterable = candidate_starts(graph, nfa)
    else:
        traversal_starts = [vertex for vertex in starts if graph.has_vertex(vertex)]

    results: set[tuple[object, object]] = set()  # repro: noqa[RPR801] -- set-kernel ablation baseline; counter-instrumented runs stay on tuples
    if nfa.nullable:
        reflexive = graph.vertices() if starts is None else traversal_starts
        for vertex in reflexive:
            results.add((vertex, vertex))

    for start in traversal_starts:
        for end in eval_rpq_from(graph, nfa, start, counters):
            results.add((start, end))
    return results
