"""Operation counters shared by the evaluators and engines.

The paper's optimisation story is about *counting work*: useless-1,
redundant-1, redundant-2 and useless-2 operations (Section IV-B) are the
operations RTCSharing provably skips and FullSharing performs.
:class:`OpCounters` gives every evaluator and engine a common, cheap place
to tally that work so the ablation benchmarks can report it directly
instead of inferring it from wall-clock noise.

All counts are plain ints; an evaluator that is handed ``counters=None``
skips the bookkeeping entirely (the benchmarks measure both modes).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["OpCounters"]


@dataclass
class OpCounters:
    """Tallies of the elementary operations performed during evaluation.

    Attributes
    ----------
    edges_scanned:
        Graph edges touched during automaton traversal.
    states_expanded:
        (vertex, NFA-state) product pairs popped from a traversal frontier.
    traversal_starts:
        Number of vertices a traversal was started from.
    closure_walk_starts:
        Closure expansions started (the useless-1 metric: FullSharing walks
        the closure from every vertex; RTCSharing only from ``Pre_G`` ends).
    dup_checks:
        Set-membership tests performed to deduplicate intermediate results
        (the redundant-1/redundant-2/useless-2 metric).
    dup_hits:
        How many of those checks found an existing element (pure waste).
    join_probes:
        Hash-join probe operations (lookups of a key in the build side).
    pairs_emitted:
        Result pairs inserted into an output set.
    cartesian_outputs:
        Pairs produced by SCC Cartesian-product expansion (Theorem 1).
    """

    edges_scanned: int = 0
    states_expanded: int = 0
    traversal_starts: int = 0
    closure_walk_starts: int = 0
    dup_checks: int = 0
    dup_hits: int = 0
    join_probes: int = 0
    pairs_emitted: int = 0
    cartesian_outputs: int = 0

    def merge(self, other: "OpCounters") -> None:
        """Accumulate another counter set into this one, in place."""
        for field_info in fields(self):
            name = field_info.name
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def total(self) -> int:
        """Grand total across all counters (a crude single work number)."""
        return sum(getattr(self, field_info.name) for field_info in fields(self))

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for reporting."""
        return {field_info.name: getattr(self, field_info.name) for field_info in fields(self)}
