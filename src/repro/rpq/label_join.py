"""Join-based evaluation of closure-free label sequences.

A DNF clause without a Kleene closure is a plain concatenation of labels
``l1 . l2 . ... . ln``.  Evaluating it is a relational join of the per-label
edge relations (Lemma 4 applied n-1 times), and the join *order* matters:
Koschmieder & Leser [10] anchor the evaluation at the rarest label and grow
outward, which prunes enormously on skewed label distributions.

Two strategies are provided (results identical, cross-checked in tests):

* :func:`eval_label_sequence` with ``order="left-right"`` -- fold joins
  left to right;
* ``order="rare-first"`` -- start from the label with the fewest edges and
  repeatedly extend toward the cheaper neighbouring label.

:func:`eval_labels_from` is the single-start variant used for ``Post``
evaluation inside ``EvalBatchUnit`` (Algorithm 2, line 14).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bitset.kernel import eval_label_sequence_bits
from repro.graph.multigraph import LabeledMultigraph
from repro.rpq.counters import OpCounters
from repro.rpq.evaluate import pick_kernel

__all__ = ["eval_label_sequence", "eval_labels_from"]


def _extend_right(
    graph: LabeledMultigraph,
    pairs: set[tuple[object, object]],
    label: str,
    counters: OpCounters | None,
) -> set[tuple[object, object]]:
    """Join on the right: ``{(s, t') | (s, t) in pairs, t -label-> t'}``."""
    result: set[tuple[object, object]] = set()  # repro: noqa[RPR801] -- set-kernel ablation baseline; counter-instrumented runs stay on tuples
    for source, middle in pairs:
        if counters is not None:
            counters.join_probes += 1
        for target in graph.targets(middle, label):
            if counters is not None:
                counters.edges_scanned += 1
            result.add((source, target))
    return result


def _extend_left(
    graph: LabeledMultigraph,
    pairs: set[tuple[object, object]],
    label: str,
    counters: OpCounters | None,
) -> set[tuple[object, object]]:
    """Join on the left: ``{(s', t) | (s, t) in pairs, s' -label-> s}``."""
    result: set[tuple[object, object]] = set()  # repro: noqa[RPR801] -- set-kernel ablation baseline; counter-instrumented runs stay on tuples
    for middle, target in pairs:
        if counters is not None:
            counters.join_probes += 1
        for source in graph.sources(middle, label):
            if counters is not None:
                counters.edges_scanned += 1
            result.add((source, target))
    return result


def eval_label_sequence(
    graph: LabeledMultigraph,
    labels: Sequence[str],
    order: str = "rare-first",
    counters: OpCounters | None = None,
    kernel: str = "auto",
) -> set[tuple[object, object]]:
    """All ``(start, end)`` pairs connected by the label sequence.

    ``order`` chooses the join strategy: ``"left-right"`` or
    ``"rare-first"`` (default).  An empty sequence denotes epsilon and
    yields the reflexive pairs of all vertices.  ``kernel`` routes
    between tuple joins and bitmap row sweeps
    (:func:`repro.rpq.evaluate.pick_kernel`); both honour ``order``.
    """
    if pick_kernel(kernel, counters):
        return eval_label_sequence_bits(graph, labels, order=order)
    if not labels:
        return {(vertex, vertex) for vertex in graph.vertices()}  # repro: noqa[RPR801] -- set-kernel reflexive pairs; the bits path returned above
    if order == "left-right":
        pairs = set(graph.edges_with_label(labels[0]))
        if counters is not None:
            counters.edges_scanned += len(pairs)
        for label in labels[1:]:
            if not pairs:
                return set()
            pairs = _extend_right(graph, pairs, label, counters)
        return pairs
    if order != "rare-first":
        raise ValueError(f"unknown join order {order!r}")

    # Anchor at the rarest label, then grow toward the cheaper side.
    anchor = min(range(len(labels)), key=lambda i: graph.label_count(labels[i]))
    pairs = set(graph.edges_with_label(labels[anchor]))
    if counters is not None:
        counters.edges_scanned += len(pairs)
    left = anchor - 1
    right = anchor + 1
    while pairs and (left >= 0 or right < len(labels)):
        extend_left = False
        if right >= len(labels):
            extend_left = True
        elif left >= 0:
            extend_left = graph.label_count(labels[left]) <= graph.label_count(
                labels[right]
            )
        if extend_left:
            pairs = _extend_left(graph, pairs, labels[left], counters)
            left -= 1
        else:
            pairs = _extend_right(graph, pairs, labels[right], counters)
            right += 1
    if left >= 0 or right < len(labels):
        return set()
    return pairs


def eval_labels_from(
    graph: LabeledMultigraph,
    labels: Sequence[str],
    start: object,
    counters: OpCounters | None = None,
) -> set:
    """End vertices of label-sequence paths starting at ``start``.

    The single-start evaluator behind ``EvalRestrictedRPQ(Post, v_k)``
    when ``Post`` is a plain label sequence: a frontier expansion with one
    set per step, no automaton needed.
    """
    frontier: set = {start}
    for label in labels:
        next_frontier: set = set()
        for vertex in frontier:
            if counters is not None:
                counters.join_probes += 1
            for target in graph.targets(vertex, label):
                if counters is not None:
                    counters.edges_scanned += 1
                next_frontier.add(target)
        if not next_frontier:
            return set()
        frontier = next_frontier
    return frontier
