"""Shard-local partial RPQ evaluation for edge-cut partitions.

A shard holding an induced subgraph cannot answer an RPQ alone when
satisfying paths cross cut edges.  What it *can* answer, exactly and
locally, is the set of partial paths the router needs for its boundary
join:

* **source -> boundary**: traversals from the shard's own candidate
  start vertices, reported as ``(start, vertex, state)`` triples
  whenever they touch a boundary vertex;
* **boundary -> boundary** and **boundary -> target**: continuations of
  router-supplied frontier triples (a traversal that crossed a cut edge
  and re-entered this shard), again reporting every boundary touch.

Both modes are one function, :func:`eval_partial_rpq`, running the same
product BFS as :func:`repro.rpq.evaluate.eval_rpq_from` but over
``(start, vertex, state)`` triples with a per-start visited set.  Full
``(start, end)`` answer pairs are accumulated whenever an accepting
state is reached -- local answers need no further routing.

The router stitches the reported triples together over the cut-edge
relation with :class:`repro.relalg.BoundaryJoin` until a fixpoint; see
:mod:`repro.cluster.service`.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.graph.multigraph import LabeledMultigraph
from repro.regex.nfa import LabelNFA
from repro.rpq.counters import OpCounters
from repro.rpq.evaluate import candidate_starts

__all__ = ["eval_partial_rpq", "PARTIAL_COLUMNS", "CUT_COLUMNS"]

#: Column names of the partial-path relation (start vertex, current
#: vertex, NFA state reached) -- the shape BoundaryJoin expects on its
#: left input.
PARTIAL_COLUMNS = ("START_V", "END_V", "STATE")

#: Column names of the cut-edge relation (BoundaryJoin's right input).
CUT_COLUMNS = ("SRC", "LABEL", "DST")


def eval_partial_rpq(
    graph: LabeledMultigraph,
    nfa: LabelNFA,
    boundary: Iterable,
    frontier: Iterable[tuple] | None = None,
    counters: OpCounters | None = None,
) -> tuple[set, set]:
    """Evaluate an RPQ restricted to one shard's subgraph.

    Parameters
    ----------
    graph:
        The shard's induced subgraph.
    nfa:
        The compiled query automaton (shared state numbering with the
        router: :func:`~repro.regex.nfa.compile_nfa` is deterministic).
    boundary:
        The shard's boundary vertices; every visited
        ``(start, vertex, state)`` triple whose vertex is in this set is
        reported for cut-edge expansion at the router.
    frontier:
        ``None`` for the initial round (traverse from the shard's own
        candidate starts; a nullable query contributes ``(v, v)`` for
        every local vertex -- each vertex is owned by exactly one shard,
        so the reflexive pairs union cleanly).  Otherwise an iterable of
        ``(start, vertex, state)`` continuation triples; vertices the
        shard does not own are skipped.

    Returns
    -------
    ``(accepts, boundary_rows)`` -- the locally complete
    ``(start, end)`` answer pairs, and the boundary triples for the
    router's join.
    """
    delta = nfa.delta
    accepting = nfa.accepts
    boundary = set(boundary)
    accepts: set = set()
    boundary_rows: set = set()
    visited_by_start: dict = {}
    queue: deque = deque()

    def seed(start: object, vertex: object, state: int) -> None:
        visited = visited_by_start.get(start)
        if visited is None:
            visited = visited_by_start[start] = set()
            if counters is not None:
                counters.traversal_starts += 1
        pair = (vertex, state)
        if pair in visited:
            return
        visited.add(pair)
        queue.append((start, vertex, state))
        if vertex in boundary:
            boundary_rows.add((start, vertex, state))

    if frontier is None:
        for vertex in candidate_starts(graph, nfa):
            for state in nfa.start:
                seed(vertex, vertex, state)
        if nfa.nullable:
            for vertex in graph.vertices():
                accepts.add((vertex, vertex))
    else:
        for start, vertex, state in frontier:
            if not graph.has_vertex(vertex):
                continue
            if state in accepting:
                accepts.add((start, vertex))
            seed(start, vertex, state)

    while queue:
        start, vertex, state = queue.popleft()
        if counters is not None:
            counters.states_expanded += 1
        row = delta.get(state)
        if not row:
            continue
        out_map = graph.out_map(vertex)
        if not out_map:
            continue
        visited = visited_by_start[start]
        for label in row.keys() & out_map.keys():
            next_states = row[label]
            for target in out_map[label]:
                if counters is not None:
                    counters.edges_scanned += 1
                for next_state in next_states:
                    pair = (target, next_state)
                    if pair in visited:
                        continue
                    visited.add(pair)
                    queue.append((start, target, next_state))
                    if next_state in accepting:
                        accepts.add((start, target))
                    if target in boundary:
                        boundary_rows.add((start, target, next_state))
    if counters is not None:
        counters.pairs_emitted += len(accepts)
    return accepts, boundary_rows
