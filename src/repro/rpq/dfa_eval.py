"""DFA-based RPQ evaluation -- the determinised automaton variant.

The NFA product traversal of :mod:`repro.rpq.evaluate` visits
``(vertex, nfa_state)`` pairs; with a determinised automaton the frontier
carries exactly one DFA state per graph vertex, trading the subset-
construction cost (paid once per query) for fewer product pairs during
traversal.  Whether that trades well depends on the query: closure-heavy
queries touch each (vertex, state) pair many times and tend to gain;
queries with tiny NFAs do not.  The ablation benchmark
``benchmarks/test_ablation_automata.py`` measures the trade on the
paper's workloads.

Semantics are identical to :func:`repro.rpq.evaluate.eval_rpq` and the
test suite asserts equality on random graph/query pairs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.bitset.kernel import eval_rpq_dfa_bits
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import RegexNode
from repro.regex.dfa import DFA, determinize
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse
from repro.rpq.counters import OpCounters
from repro.rpq.evaluate import pick_kernel

__all__ = ["eval_rpq_dfa", "eval_dfa_from"]


def eval_dfa_from(
    graph: LabeledMultigraph,
    dfa: DFA,
    start: object,
    counters: OpCounters | None = None,
) -> set:
    """End vertices of paths from ``start`` accepted by the DFA.

    BFS over (vertex, dfa_state) pairs; at most one state per NFA subset,
    so the visited set is bounded by ``|V| * |DFA states|``.
    """
    delta = dfa.delta
    accepts = dfa.accepts
    results: set = set()
    visited: set[tuple[object, int]] = {(start, dfa.start)}  # repro: noqa[RPR801] -- (vertex, state) visited set of the set-kernel baseline, not a pair relation
    queue: deque[tuple[object, int]] = deque([(start, dfa.start)])
    if counters is not None:
        counters.traversal_starts += 1
    while queue:
        vertex, state = queue.popleft()
        if counters is not None:
            counters.states_expanded += 1
        row = delta[state]
        if not row:
            continue
        out_map = graph.out_map(vertex)
        if not out_map:
            continue
        for label in row.keys() & out_map.keys():
            next_state = row[label]
            for target in out_map[label]:
                if counters is not None:
                    counters.edges_scanned += 1
                pair = (target, next_state)
                if pair in visited:
                    continue
                visited.add(pair)
                queue.append(pair)
                if next_state in accepts:
                    results.add(target)
    if counters is not None:
        counters.pairs_emitted += len(results)
    return results


def eval_rpq_dfa(
    graph: LabeledMultigraph,
    query: str | RegexNode | DFA,
    starts: Iterable | None = None,
    counters: OpCounters | None = None,
    kernel: str = "auto",
) -> set[tuple[object, object]]:
    """Evaluate an RPQ with a determinised automaton.

    Same contract as :func:`repro.rpq.evaluate.eval_rpq`: returns all
    ``(start, end)`` pairs, including reflexive pairs when the language
    contains the empty word.  ``kernel`` routes between the set and
    bitmap traversals (:func:`repro.rpq.evaluate.pick_kernel`).
    """
    if isinstance(query, DFA):
        dfa = query
    else:
        dfa = determinize(compile_nfa(parse(query)))
    if pick_kernel(kernel, counters):
        return eval_rpq_dfa_bits(graph, dfa, starts=starts)

    first_labels = set(dfa.delta[dfa.start])
    if starts is None:
        traversal_starts: set = set()
        for label in first_labels:
            for source, _target in graph.edges_with_label(label):
                traversal_starts.add(source)
        reflexive: Iterable = graph.vertices()
    else:
        traversal_starts = {v for v in starts if graph.has_vertex(v)}
        reflexive = traversal_starts

    results: set[tuple[object, object]] = set()  # repro: noqa[RPR801] -- set-kernel ablation baseline; counter-instrumented runs stay on tuples
    if dfa.start in dfa.accepts:
        for vertex in reflexive:
            results.add((vertex, vertex))
    for start in traversal_starts:
        for end in eval_dfa_from(graph, dfa, start, counters):
            results.add((start, end))
    return results
