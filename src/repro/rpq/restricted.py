"""``EvalRestrictedRPQ`` -- evaluate ``Post`` from a single start vertex.

Algorithm 2 (line 14) calls ``EvalRestrictedRPQ(Post, v_k)`` for every
vertex ``v_k`` produced by the closure join.  ``Post`` is guaranteed
closure-free by the clause decomposition, so two fast paths exist:

* a plain label sequence -> frontier expansion
  (:func:`~repro.rpq.label_join.eval_labels_from`);
* anything else (unions survive inside ``Pre``/``R`` recursion but a
  closure-free ``Post`` can still be e.g. ``a.(b|c)``) -> single-start
  automaton traversal.

:class:`RestrictedEvaluator` compiles the query once and is then called
per start vertex -- the compile cost is paid once per batch unit, not once
per vertex.
"""

from __future__ import annotations

from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import Concat, Epsilon, Label, RegexNode, contains_closure
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse
from repro.rpq.counters import OpCounters
from repro.rpq.evaluate import eval_rpq_from
from repro.rpq.label_join import eval_labels_from

__all__ = ["RestrictedEvaluator", "as_label_sequence"]


def as_label_sequence(node: RegexNode) -> list[str] | None:
    """Return the label list when ``node`` is a pure concatenation of labels.

    Returns ``[]`` for epsilon and ``None`` when the expression contains
    any other operator.
    """
    if isinstance(node, Epsilon):
        return []
    if isinstance(node, Label):
        return [node.name]
    if isinstance(node, Concat):
        labels: list[str] = []
        for part in node.parts:
            if isinstance(part, Label):
                labels.append(part.name)
            elif isinstance(part, Epsilon):
                continue
            else:
                return None
        return labels
    return None


class RestrictedEvaluator:
    """Single-start evaluator for a fixed closure-free query.

    >>> from repro.graph import paper_figure1_graph
    >>> evaluator = RestrictedEvaluator("c")
    >>> sorted(evaluator.ends_from(paper_figure1_graph(), 2))
    [5]
    """

    def __init__(self, query: str | RegexNode) -> None:
        node = parse(query)
        if contains_closure(node):
            raise ValueError(
                f"EvalRestrictedRPQ requires a closure-free query, got {node}"
            )
        self._node = node
        self._labels = as_label_sequence(node)
        self._nfa = None if self._labels is not None else compile_nfa(node)
        self._nullable = (
            not self._labels if self._labels is not None else self._nfa.nullable
        )

    @property
    def is_epsilon(self) -> bool:
        """True when the query is exactly epsilon (identity relation)."""
        return self._labels == []

    @property
    def nullable(self) -> bool:
        """True when the language contains the empty word."""
        return self._nullable

    def ends_from(
        self,
        graph: LabeledMultigraph,
        start: object,
        counters: OpCounters | None = None,
    ) -> set:
        """End vertices of satisfying paths from ``start`` (incl. zero-length).

        Matches Algorithm 2's use: returns ``{v_l | (v_k, v_l) found}``;
        includes ``start`` itself when the query is nullable.
        """
        if self._labels is not None:
            ends = eval_labels_from(graph, self._labels, start, counters)
        else:
            ends = eval_rpq_from(graph, self._nfa, start, counters)
            if self._nullable:
                ends = set(ends)
                ends.add(start)
        return ends
