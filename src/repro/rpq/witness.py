"""Witness paths: not just *which* pairs match, but *why*.

``eval_rpq`` returns vertex pairs (Definition 2); applications like the
paper's signal-path detection also want one concrete satisfying path per
pair.  :func:`eval_rpq_with_witness` runs the same product BFS but keeps
parent pointers on (vertex, state) pairs, then reconstructs, for every
result pair, a shortest witness path as the alternating sequence
``[v0, l1, v1, l2, ..., vn]``.

Guarantees (all property-tested):

* the pair set equals :func:`repro.rpq.evaluate.eval_rpq` exactly;
* every witness starts/ends at the pair's vertices;
* every witness's edges exist in the graph;
* every witness's label word is accepted by the query automaton;
* witnesses are shortest (BFS order) in number of edges.
"""

from __future__ import annotations

from collections import deque

from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import RegexNode
from repro.regex.nfa import LabelNFA, compile_nfa
from repro.regex.parser import parse

__all__ = ["Witness", "eval_rpq_with_witness"]

# A witness is the alternating tuple (v0, l1, v1, ..., ln, vn).
Witness = tuple


def _witness_from(
    graph: LabeledMultigraph, nfa: LabelNFA, start: object
) -> dict[object, Witness]:
    """BFS with parent pointers; returns end vertex -> shortest witness."""
    parents: dict[tuple[object, int], tuple[object, int, str] | None] = {}
    queue: deque[tuple[object, int]] = deque()
    for state in nfa.start:
        pair = (start, state)
        parents[pair] = None
        queue.append(pair)

    found: dict[object, tuple[object, int]] = {}
    while queue:
        vertex, state = queue.popleft()
        row = nfa.delta[state]
        if not row:
            continue
        out_map = graph.out_map(vertex)
        if not out_map:
            continue
        for label in row.keys() & out_map.keys():
            next_states = row[label]
            for target in out_map[label]:
                for next_state in next_states:
                    pair = (target, next_state)
                    if pair in parents:
                        continue
                    parents[pair] = (vertex, state, label)
                    queue.append(pair)
                    if next_state in nfa.accepts and target not in found:
                        found[target] = pair

    witnesses: dict[object, Witness] = {}
    for end_vertex, accept_pair in found.items():
        backwards: list[object] = [accept_pair[0]]
        pair = accept_pair
        while True:
            parent = parents[pair]
            if parent is None:
                break
            previous_vertex, previous_state, label = parent
            backwards.append(label)
            backwards.append(previous_vertex)
            pair = (previous_vertex, previous_state)
        witnesses[end_vertex] = tuple(reversed(backwards))
    return witnesses


def eval_rpq_with_witness(
    graph: LabeledMultigraph,
    query: str | RegexNode | LabelNFA,
    starts=None,
) -> dict[tuple[object, object], Witness]:
    """Evaluate an RPQ returning ``{(start, end): witness_path}``.

    Zero-length matches of nullable queries get the trivial witness
    ``(v,)``.  The key set equals ``eval_rpq(graph, query, starts)``.
    """
    if isinstance(query, LabelNFA):
        nfa = query
    else:
        nfa = compile_nfa(parse(query))

    if starts is None:
        from repro.rpq.evaluate import candidate_starts

        traversal_starts = candidate_starts(graph, nfa)
        reflexive = graph.vertices() if nfa.nullable else ()
    else:
        traversal_starts = [v for v in starts if graph.has_vertex(v)]
        reflexive = traversal_starts if nfa.nullable else ()

    results: dict[tuple[object, object], Witness] = {}
    for vertex in reflexive:
        results[(vertex, vertex)] = (vertex,)
    for start in traversal_starts:
        for end, witness in _witness_from(graph, nfa, start).items():
            key = (start, end)
            if key not in results:
                results[key] = witness
    return results
