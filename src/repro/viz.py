"""Graphviz DOT exporters for graphs, reductions and automata.

Debugging RPQ evaluation is vastly easier with pictures; these functions
render every structure in the pipeline as DOT text (no graphviz Python
dependency -- feed the output to ``dot -Tpng`` or any online renderer):

* :func:`multigraph_to_dot`  -- the labeled graph ``G`` (Fig. 1 style);
* :func:`digraph_to_dot`     -- ``G_R`` / ``Ḡ_R`` (Figs. 5-6 style);
* :func:`condensation_to_dot`-- ``Ḡ_R`` with SCC member annotations;
* :func:`nfa_to_dot`         -- the query automaton (Fig. 3 style);
* :func:`dfa_to_dot`         -- the determinised automaton.

Output is deterministic (sorted nodes/edges) so snapshots are testable.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.graph.multigraph import LabeledMultigraph
from repro.graph.scc import Condensation
from repro.regex.dfa import DFA
from repro.regex.nfa import LabelNFA

__all__ = [
    "multigraph_to_dot",
    "digraph_to_dot",
    "condensation_to_dot",
    "nfa_to_dot",
    "dfa_to_dot",
]


def _quote(value: object) -> str:
    text = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{text}"'


def multigraph_to_dot(graph: LabeledMultigraph, name: str = "G") -> str:
    """DOT text for an edge-labeled multigraph."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for vertex in sorted(graph.vertices(), key=str):
        lines.append(f"  {_quote(vertex)};")
    for source, label, target in sorted(graph.edges(), key=lambda e: (str(e[0]), e[1], str(e[2]))):
        lines.append(
            f"  {_quote(source)} -> {_quote(target)} [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def digraph_to_dot(graph: DiGraph, name: str = "GR") -> str:
    """DOT text for an unlabeled digraph (``G_R`` or ``Ḡ_R``)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for vertex in sorted(graph.vertices(), key=str):
        lines.append(f"  {_quote(vertex)};")
    for source, target in sorted(graph.edges(), key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f"  {_quote(source)} -> {_quote(target)};")
    lines.append("}")
    return "\n".join(lines)


def condensation_to_dot(condensation: Condensation, name: str = "GRbar") -> str:
    """DOT text for a condensation, labelling each node with its members."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for scc_id in sorted(condensation.members):
        members = ",".join(str(v) for v in condensation.members[scc_id])
        lines.append(
            f"  {scc_id} [label={_quote(f's{scc_id}: {{{members}}}')}];"
        )
    for source, target in sorted(condensation.dag.edges()):
        lines.append(f"  {source} -> {target};")
    lines.append("}")
    return "\n".join(lines)


def nfa_to_dot(nfa: LabelNFA, name: str = "NFA") -> str:
    """DOT text for an epsilon-free label NFA (accepting states doubled)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in sorted(nfa.delta):
        shape = "doublecircle" if state in nfa.accepts else "circle"
        start_marker = " (start)" if state in nfa.start else ""
        lines.append(
            f"  {state} [shape={shape} label={_quote(f'q{state}{start_marker}')}];"
        )
    for state in sorted(nfa.delta):
        for label in sorted(nfa.delta[state]):
            for target in sorted(nfa.delta[state][label]):
                lines.append(f"  {state} -> {target} [label={_quote(label)}];")
    lines.append("}")
    return "\n".join(lines)


def dfa_to_dot(dfa: DFA, name: str = "DFA") -> str:
    """DOT text for a (partial) DFA."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in range(dfa.num_states):
        shape = "doublecircle" if state in dfa.accepts else "circle"
        start_marker = " (start)" if state == dfa.start else ""
        lines.append(
            f"  {state} [shape={shape} label={_quote(f'q{state}{start_marker}')}];"
        )
    for state in range(dfa.num_states):
        for label in sorted(dfa.delta[state]):
            lines.append(
                f"  {state} -> {dfa.delta[state][label]} [label={_quote(label)}];"
            )
    lines.append("}")
    return "\n".join(lines)
