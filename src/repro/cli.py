"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the interactive workflow a downstream user wants
before writing any code; all of them run through the
:class:`~repro.db.GraphDB` session facade:

* ``query``  -- evaluate one or more RPQs against an edge-list file with a
  registered engine (or, with ``--connect host:port``, against a running
  ``repro serve`` instance); prints result pairs (or just counts) and
  timing;
* ``serve``  -- run the concurrent JSON-lines query server of
  :mod:`repro.server` over an edge-list file; with ``--shards N`` /
  ``--replicas R`` the graph is partitioned and served by the
  :mod:`repro.cluster` router instead (same protocol, same clients),
  ``--backend process`` moves each shard into its own worker process for
  multi-core scale-out, and ``--strategy edge-cut`` (or ``auto``) shards
  single-component graphs by recording cross-shard edges in a cut
  relation the router joins over;
* ``reduce`` -- show the two-level reduction statistics of a closure body
  on a graph (the Fig. 12/13 quantities for your own data);
* ``stats``  -- Table-IV style statistics of an edge-list file; with
  ``--connect host:port`` the live stats of a running server instead
  (``--prometheus`` for the metrics registry in Prometheus text format,
  ``--watch N`` to refresh every N seconds);
* ``trace``  -- render trace trees recorded by ``serve
  --slow-query-log`` (or a raw trace JSON) as indented phase breakdowns;
* ``explain``-- show the static RTCSharing evaluation plan of a query
  (DNF clauses, batch-unit decomposition, cache keys);
* ``lint``   -- run the :mod:`repro.analysis` static invariant checker
  over the source tree (lock discipline, async hygiene, wire/error
  registries, WAL-before-ack, observability names, monotonic time);
  ``--select``/``--ignore`` pick rule families, ``--json`` emits the CI
  artifact, ``--explain RPR401`` prints a rule's contract;
* ``dot``    -- render the graph, a reduction, or a query automaton as
  Graphviz DOT text.

``query``, ``stats`` and ``reduce`` accept ``--json`` for machine-
readable output (``query``'s is built on ``ResultSet.to_dict``).  The
``--engine`` option accepts any name in the engine registry; ``--load
module`` imports a Python module first, so third-party engines that call
:func:`repro.db.register_engine` at import time are usable by name.

Examples::

    python -m repro stats graph.txt --json
    python -m repro query graph.txt "a.(b.c)+.c" --engine rtc --show-pairs
    python -m repro query graph.txt "b.c" --load my_engines --engine mine
    python -m repro serve graph.txt --port 7687 --workers 4
    python -m repro serve graph.txt --shards 4 --replicas 2
    python -m repro serve graph.txt --shards 4 --replicas 2 --backend process
    python -m repro serve graph.txt --shards 2 --strategy edge-cut
    python -m repro query --connect 127.0.0.1:7687 "a.(b.c)+.c"
    python -m repro stats --connect 127.0.0.1:7687 --prometheus
    python -m repro serve graph.txt --slow-query-log slow.jsonl
    python -m repro trace slow.jsonl --limit 3
    python -m repro lint src/repro --json
    python -m repro lint --select RPR1,RPR601
    python -m repro lint --explain RPR401
    python -m repro reduce graph.txt "b.c"
    python -m repro dot graph.txt --query "b.c" --view condensation
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

from repro.bench.formatting import format_seconds, format_table
from repro.core.reduction import reduce_graph
from repro.core.stats import reduction_stats
from repro.db import GraphDB, available_engines
from repro.errors import ReproError
from repro.graph.io import load_edge_list
from repro.regex.nfa import compile_nfa
from repro.regex.parser import parse as parse_query
from repro import viz

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regular path queries with a shared reduced transitive closure",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser(
        "query", help="evaluate RPQs against a graph file or a running server"
    )
    query.add_argument(
        "graph",
        nargs="?",
        help=(
            "edge-list file (source label target); with --connect this is "
            "treated as the first query instead"
        ),
    )
    query.add_argument("queries", nargs="*", help="one or more RPQ strings")
    query.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="send the queries to a running 'repro serve' instance",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline when using --connect",
    )
    query.add_argument(
        "--engine",
        default="rtc",
        metavar="NAME",
        help=(
            "evaluation engine from the registry (default: rtc; "
            f"registered: {', '.join(available_engines())})"
        ),
    )
    query.add_argument(
        "--load",
        action="append",
        default=[],
        metavar="MODULE",
        help=(
            "import a Python module before opening the session "
            "(so it can register third-party engines); repeatable"
        ),
    )
    query.add_argument(
        "--show-pairs",
        action="store_true",
        help="print every result pair instead of just the count",
    )
    query.add_argument(
        "--semantic-cache",
        action="store_true",
        help="share RTCs between language-equal closure bodies",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )

    serve = commands.add_parser(
        "serve", help="run the concurrent JSON-lines query server over a graph"
    )
    serve.add_argument("graph", help="edge-list file (source label target)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7687, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--engine",
        default="rtc",
        metavar="NAME",
        help="evaluation engine from the registry (default: rtc)",
    )
    serve.add_argument(
        "--load",
        action="append",
        default=[],
        metavar="MODULE",
        help="import a Python module first (third-party engines); repeatable",
    )
    serve.add_argument(
        "--semantic-cache",
        action="store_true",
        help="share RTCs between language-equal closure bodies",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="worker threads (default: 4)"
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "partition the graph into N shards behind a cluster router "
            "(default: 1 = single-session server)"
        ),
    )
    serve.add_argument(
        "--strategy",
        choices=["component", "edge-cut", "auto"],
        default="component",
        help=(
            "partition strategy: 'component' keeps weakly-connected "
            "components whole (union merge), 'edge-cut' splits any graph "
            "and the router joins partial paths over the recorded "
            "cross-shard edges, 'auto' picks per graph (default: "
            "component)"
        ),
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="read-only replica sessions per shard (default: 1)",
    )
    serve.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help=(
            "shard transport for a sharded deployment: 'thread' keeps "
            "replica groups in-process, 'process' spawns one worker "
            "process per shard for multi-core scale-out (default: thread)"
        ),
    )
    serve.add_argument(
        "--worker-log-dir",
        metavar="DIR",
        default=None,
        help="write per-shard worker logs here (process backend only)",
    )
    serve.add_argument(
        "--data-dir",
        metavar="DIR",
        default=None,
        help=(
            "durable data directory (write-ahead log + snapshots + warm "
            "RTC store); restarting over the same graph file and data "
            "dir recovers every acked update and comes back with "
            "checkpointed closures warm"
        ),
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help=(
            "auto-checkpoint after every N logged updates "
            "(requires --data-dir; default: manual checkpoints only)"
        ),
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=256,
        help="admission-control queue bound (default: 256)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="micro-batch collection window (default: 0.005)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="largest micro-batch per dispatch (default: 64)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="default per-request deadline (0 disables; default: 30)",
    )
    serve.add_argument(
        "--slow-query-log",
        metavar="PATH",
        default=None,
        help=(
            "append completed trace trees (+ explain plans) of requests "
            "slower than the threshold to this JSONL file; enables "
            "server-side tracing of every request (responses unchanged); "
            "inspect with 'repro trace PATH'"
        ),
    )
    serve.add_argument(
        "--slow-query-threshold",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="slow-query log threshold (default: 1.0)",
    )

    reduce = commands.add_parser(
        "reduce", help="show two-level reduction statistics for a closure body"
    )
    reduce.add_argument("graph", help="edge-list file")
    reduce.add_argument("body", help="the closure body R (as in (R)+)")
    reduce.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )

    stats = commands.add_parser(
        "stats",
        help="dataset statistics of a graph, or live stats of a server",
    )
    stats.add_argument(
        "graph",
        nargs="?",
        help="edge-list file (omit when using --connect)",
    )
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    stats.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="show a running server's live stats instead of a file's",
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help=(
            "with --connect: print the server's metrics registry in "
            "Prometheus text exposition format"
        ),
    )
    stats.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --connect: refresh every N seconds until interrupted",
    )

    trace = commands.add_parser(
        "trace",
        help="render recorded trace trees (slow-query log / trace JSON)",
    )
    trace.add_argument(
        "path",
        help=(
            "a slow-query JSONL log written by 'serve --slow-query-log', "
            "or a JSON file holding one trace object"
        ),
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="render only the N slowest entries",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit the raw entries as JSON instead of rendering trees",
    )

    explain = commands.add_parser(
        "explain", help="show the RTCSharing evaluation plan of a query"
    )
    explain.add_argument("graph", help="edge-list file")
    explain.add_argument("query", help="the RPQ to plan")

    lint = commands.add_parser(
        "lint",
        help="statically check repro's concurrency/wire/durability contracts",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help=(
            "comma-separated rule ids or family prefixes to run "
            "(e.g. RPR101 or RPR1); repeatable"
        ),
    )
    lint.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule ids or family prefixes to skip; repeatable",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of file:line text",
    )
    lint.add_argument(
        "--explain",
        metavar="RULE",
        default=None,
        help="print a rule's rationale and exit (e.g. --explain RPR401)",
    )

    dot = commands.add_parser("dot", help="emit Graphviz DOT")
    dot.add_argument("graph", help="edge-list file")
    dot.add_argument(
        "--query", help="closure body / query for reduction or automaton views"
    )
    dot.add_argument(
        "--view",
        choices=["graph", "reduced", "condensation", "nfa"],
        default="graph",
        help="what to render (default: the input graph)",
    )
    return parser


def _cmd_query(args) -> int:
    if args.connect:
        return _query_remote(args)
    if args.graph is None or not args.queries:
        print(
            "error: query needs a graph file and at least one RPQ "
            "(or --connect host:port)",
            file=sys.stderr,
        )
        return 2
    for module_name in args.load:
        importlib.import_module(module_name)
    kwargs = {}
    if args.semantic_cache and args.engine == "rtc":
        kwargs["cache_mode"] = "semantic"
    db = GraphDB.open(args.graph, engine=args.engine, **kwargs)
    results = db.execute_many(args.queries)
    shared = getattr(db.engine, "shared_data_size", lambda: 0)()
    if args.json:
        print(
            json.dumps(
                {
                    "engine": db.engine_name,
                    "graph": args.graph,
                    "shared_pairs": shared,
                    "results": [result.to_dict() for result in results],
                },
                indent=2,
                default=str,
            )
        )
        return 0
    rows = []
    for result in results:
        rows.append([result.query, len(result), format_seconds(result.total_time)])
        if args.show_pairs:
            for source, target in result:
                print(f"{source}\t{target}")
    print(format_table(["query", "pairs", "time"], rows))
    if shared:
        print(f"shared data: {shared} pairs")
    return 0


def _query_remote(args) -> int:
    """The ``query --connect`` path: same output, served remotely."""
    from repro.server import Client

    queries = ([args.graph] if args.graph else []) + args.queries
    if not queries:
        print("error: no queries given", file=sys.stderr)
        return 2
    want_pairs = args.show_pairs or args.json
    with Client.connect(args.connect) as client:
        results = client.query_many(
            queries, timeout=args.timeout, pairs=want_pairs
        )
        if args.json:
            print(
                json.dumps(
                    {
                        "connect": args.connect,
                        "results": [
                            {
                                "query": result.query,
                                "count": result.count,
                                "time": result.time,
                                "pairs": list(result),
                            }
                            for result in results
                        ],
                    },
                    indent=2,
                    default=str,
                )
            )
            return 0
        rows = []
        for result in results:
            rows.append(
                [result.query, result.count, format_seconds(result.time)]
            )
            if args.show_pairs:
                for source, target in result:
                    print(f"{source}\t{target}")
        print(format_table(["query", "pairs", "time"], rows))
    return 0


def _cmd_serve(args) -> int:
    from repro.server import QueryServer, ServerConfig

    for module_name in args.load:
        importlib.import_module(module_name)
    engine_kwargs = {}
    if args.semantic_cache and args.engine == "rtc":
        engine_kwargs["cache_mode"] = "semantic"
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.queue_size,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        default_timeout=args.timeout if args.timeout > 0 else None,
        engine_kwargs=engine_kwargs,
        slow_query_log=args.slow_query_log,
        slow_query_threshold=args.slow_query_threshold,
    )
    if args.checkpoint_every is not None and args.data_dir is None:
        print("error: --checkpoint-every requires --data-dir", file=sys.stderr)
        return 2

    if args.shards > 1 or args.replicas > 1 or args.backend != "thread":
        from repro.cluster import ClusterConfig, ClusterRouter, GraphCluster

        cluster = GraphCluster.open(
            args.graph,
            engine=args.engine,
            config=ClusterConfig(
                shards=args.shards,
                replicas=args.replicas,
                workers=args.workers,
                max_queue=args.queue_size,
                batch_window=args.batch_window,
                max_batch=args.max_batch,
                engine_kwargs=engine_kwargs,
                backend=args.backend,
                worker_log_dir=args.worker_log_dir,
                partition_strategy=args.strategy,
                data_dir=args.data_dir,
                checkpoint_every=args.checkpoint_every,
            ),
            start=False,
        )
        server = ClusterRouter(cluster, config)

        def announce_cluster(address) -> None:
            host, port = address
            partition_stats = cluster.partition.stats()
            shard_edges = ", ".join(
                str(shard["edges"]) for shard in partition_stats["shards"]
            )
            cuts = partition_stats["cut_edges"]
            cut_note = f", {cuts} cut edges" if cuts else ""
            durable_note = (
                f", data-dir={args.data_dir}" if args.data_dir else ""
            )
            print(
                f"serving {args.graph} as a {args.shards}-shard x "
                f"{args.replicas}-replica cluster (engine={args.engine}, "
                f"backend={args.backend}, {config.workers} workers/replica, "
                f"shard edges: [{shard_edges}]{cut_note}{durable_note}) on "
                f"{host}:{port} -- Ctrl-C to stop",
                flush=True,
            )

        server.run(ready_callback=announce_cluster)
        return 0

    db = GraphDB.open(
        args.graph,
        engine=args.engine,
        storage=args.data_dir,
        checkpoint_every=args.checkpoint_every,
        **engine_kwargs,
    )
    server = QueryServer(db, config)

    def announce(address) -> None:
        host, port = address
        durable_note = f", data-dir={args.data_dir}" if args.data_dir else ""
        print(
            f"serving {args.graph} (engine={db.engine_name}, "
            f"workers={config.workers}{durable_note}) on {host}:{port} "
            "-- Ctrl-C to stop",
            flush=True,
        )

    server.run(ready_callback=announce)
    return 0


def _cmd_reduce(args) -> int:
    graph = load_edge_list(args.graph)
    stats = reduction_stats(graph, args.body)
    if args.json:
        print(
            json.dumps(
                {
                    "graph": args.graph,
                    "body": args.body,
                    "graph_vertices": stats.num_graph_vertices,
                    "graph_edges": stats.num_graph_edges,
                    "gr_vertices": stats.num_gr_vertices,
                    "gr_edges": stats.num_gr_edges,
                    "condensed_vertices": stats.num_condensed_vertices,
                    "condensed_edges": stats.num_condensed_edges,
                    "rtc_pairs": stats.rtc_pairs,
                    "full_closure_pairs": stats.full_closure_pairs,
                    "average_scc_size": stats.average_scc_size,
                    "shared_size_ratio": stats.shared_size_ratio,
                },
                indent=2,
            )
        )
        return 0
    print(
        format_table(
            ["quantity", "value"],
            [
                ["|V| (G)", stats.num_graph_vertices],
                ["|E| (G)", stats.num_graph_edges],
                ["|V_R|", stats.num_gr_vertices],
                ["|E_R|", stats.num_gr_edges],
                ["|V̄_R|", stats.num_condensed_vertices],
                ["|Ē_R|", stats.num_condensed_edges],
                ["RTC pairs", stats.rtc_pairs],
                ["R+_G pairs", stats.full_closure_pairs],
                ["avg SCC size", f"{stats.average_scc_size:.2f}"],
                ["shared-size ratio", f"{stats.shared_size_ratio:.2f}"],
            ],
        )
    )
    return 0


def _cmd_stats(args) -> int:
    if args.connect:
        return _stats_remote(args)
    if args.prometheus or args.watch is not None:
        print(
            "error: --prometheus/--watch need --connect host:port",
            file=sys.stderr,
        )
        return 2
    if args.graph is None:
        print(
            "error: stats needs a graph file (or --connect host:port)",
            file=sys.stderr,
        )
        return 2
    graph = load_edge_list(args.graph)
    if args.json:
        print(
            json.dumps(
                {
                    "graph": args.graph,
                    "vertices": graph.num_vertices,
                    "edges": graph.num_edges,
                    "labels": graph.num_labels,
                    "density_per_label": graph.average_degree_per_label(),
                },
                indent=2,
            )
        )
        return 0
    print(
        format_table(
            ["|V|", "|E|", "|Σ|", "|E|/(|V||Σ|)"],
            [
                [
                    graph.num_vertices,
                    graph.num_edges,
                    graph.num_labels,
                    f"{graph.average_degree_per_label():.4f}",
                ]
            ],
        )
    )
    return 0


def _stats_remote(args) -> int:
    """``stats --connect``: live server stats, metrics text, or a watch loop."""
    import time as time_module

    from repro.server import Client

    def emit(client) -> None:
        if args.prometheus:
            sys.stdout.write(client.metrics())
            sys.stdout.flush()
            return
        stats = client.stats()
        if args.json:
            print(json.dumps(stats, indent=2, default=str))
            return
        scheduler = stats.get("scheduler", {})
        latency = scheduler.get("latency", {})
        print(
            format_table(
                [
                    "admitted",
                    "completed",
                    "in-flight",
                    "qps",
                    "p50",
                    "p95",
                    "p99",
                ],
                [
                    [
                        scheduler.get("admitted", 0),
                        scheduler.get("completed", 0),
                        scheduler.get("in_flight", 0),
                        f"{scheduler.get('qps', 0.0):.1f}",
                        format_seconds(latency.get("p50")),
                        format_seconds(latency.get("p95")),
                        format_seconds(latency.get("p99")),
                    ]
                ],
            )
        )

    with Client.connect(args.connect) as client:
        if args.watch is None:
            emit(client)
            return 0
        try:
            while True:
                emit(client)
                time_module.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


def _cmd_trace(args) -> int:
    """Render recorded trace trees as indented phase breakdowns."""
    from repro.obs import SlowQueryLog, render_trace

    entries = SlowQueryLog.read(args.path)
    if not entries:
        print(f"error: no trace entries in {args.path}", file=sys.stderr)
        return 1
    entries.sort(key=lambda entry: entry.get("elapsed", 0.0), reverse=True)
    if args.limit is not None:
        entries = entries[: args.limit]
    if args.json:
        print(json.dumps(entries, indent=2, default=str))
        return 0
    for index, entry in enumerate(entries):
        if index:
            print()
        # A slow-log entry wraps its trace; a raw trace file *is* one.
        trace = entry.get("trace")
        if trace is None and "spans" in entry:
            trace = entry
        queries = entry.get("queries")
        if queries:
            print(
                f"slow query ({format_seconds(entry.get('elapsed'))}, "
                f"threshold {format_seconds(entry.get('threshold'))}): "
                + "; ".join(str(query) for query in queries)
            )
        if trace:
            print(render_trace(trace))
        for query, plan in sorted((entry.get("plans") or {}).items()):
            print(f"plan for {query}:")
            for line in str(plan).splitlines():
                print(f"  {line}")
    return 0


def _cmd_explain(args) -> int:
    db = GraphDB.open(args.graph)
    print(db.explain(args.query).describe())
    return 0


def _cmd_lint(args) -> int:
    """``repro lint`` -- the static invariant checker of
    :mod:`repro.analysis`."""
    from repro.analysis import all_rules, run_lint

    if args.explain is not None:
        rule = all_rules().get(args.explain)
        if rule is None:
            known = ", ".join(sorted(all_rules()))
            print(
                f"error: unknown rule {args.explain!r}; known rules: {known}",
                file=sys.stderr,
            )
            return 2
        print(f"{rule.id} [{rule.severity}] {rule.name}")
        print()
        print(rule.rationale)
        return 0

    def split(values: list) -> list | None:
        flat = [
            item.strip()
            for value in values
            for item in value.split(",")
            if item.strip()
        ]
        return flat or None

    paths = args.paths
    if not paths:
        import repro

        paths = [repro.__path__[0]]
    try:
        result = run_lint(
            paths, select=split(args.select), ignore=split(args.ignore)
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.render_json() if args.json else result.render_text())
    return result.exit_code


def _cmd_dot(args) -> int:
    graph = load_edge_list(args.graph)
    if args.view == "graph":
        print(viz.multigraph_to_dot(graph))
        return 0
    if not args.query:
        print("error: --query is required for this view", file=sys.stderr)
        return 2
    if args.view == "nfa":
        print(viz.nfa_to_dot(compile_nfa(parse_query(args.query))))
        return 0
    reduction = reduce_graph(graph, args.query)
    if args.view == "reduced":
        print(viz.digraph_to_dot(reduction.gr))
    else:
        print(viz.condensation_to_dot(reduction.condensation))
    return 0


_COMMANDS = {
    "query": _cmd_query,
    "serve": _cmd_serve,
    "reduce": _cmd_reduce,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "explain": _cmd_explain,
    "lint": _cmd_lint,
    "dot": _cmd_dot,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ModuleNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
