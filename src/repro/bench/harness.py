"""Measurement harness for the paper's multiple-RPQ experiments.

:func:`run_rpq_set` evaluates one multiple-RPQ set with each method
(``No`` / ``Full`` / ``RTC``), on a **fresh engine per method** (so each
measurement includes the one-time shared-data construction, like the
paper's "query response time ... includes the time taken to construct the
two-level reduced graph [and] to compute the shared data"), captures

* total response time,
* the three-phase breakdown (Shared_Data, PreG ⋈ R+G, Remainder),
* the shared-data size (pairs in ``R+_G`` or ``TC(Ḡ_R)``),
* optional operation counters,

and **asserts all methods returned identical result sets** -- a
correctness gate built into every benchmark run.

:func:`run_workload` averages measurements over a list of multiple-RPQ
sets, which is how the paper reports every figure ("multiple RPQ sets'
average query response time").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.timing import PHASE_PRE_JOIN, PHASE_REMAINDER, PHASE_SHARED_DATA
from repro.db import GraphDB
from repro.errors import EvaluationError
from repro.graph.multigraph import LabeledMultigraph

__all__ = ["MethodMeasurement", "SetMeasurement", "run_rpq_set", "run_workload", "METHODS"]

#: Method names in the paper's presentation order.
METHODS = ("No", "Full", "RTC")

_ENGINE_NAMES = {"No": "no", "Full": "full", "RTC": "rtc"}


@dataclass
class MethodMeasurement:
    """One method's measurements over one multiple-RPQ set."""

    method: str
    total_time: float
    shared_data_time: float
    pre_join_time: float
    remainder_time: float
    shared_pairs: int
    result_pairs: int
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def phases(self) -> dict[str, float]:
        return {
            PHASE_SHARED_DATA: self.shared_data_time,
            PHASE_PRE_JOIN: self.pre_join_time,
            PHASE_REMAINDER: self.remainder_time,
        }


@dataclass
class SetMeasurement:
    """All methods' measurements over one multiple-RPQ set."""

    queries: tuple[str, ...]
    per_method: dict[str, MethodMeasurement]

    def ratio(self, numerator: str, denominator: str = "RTC") -> float:
        """Response-time ratio, e.g. ``ratio("Full")`` = Full / RTC."""
        denominator_time = self.per_method[denominator].total_time
        if denominator_time == 0.0:
            return float("inf")
        return self.per_method[numerator].total_time / denominator_time


def run_rpq_set(
    graph: LabeledMultigraph,
    queries: Sequence[str],
    methods: Sequence[str] = METHODS,
    engine_kwargs: dict | None = None,
    collect_counters: bool = False,
    check_equal: bool = True,
) -> SetMeasurement:
    """Evaluate one multiple-RPQ set with each method and measure it.

    Each method runs on a fresh :class:`~repro.db.GraphDB` session (so
    the measurement includes the one-time shared-data construction); the
    measurement rows are aggregated from the sessions' engines.
    """
    per_method: dict[str, MethodMeasurement] = {}
    reference_results: list[frozenset] | None = None
    for method in methods:
        kwargs = dict(engine_kwargs or {})
        if collect_counters:
            kwargs["collect_counters"] = True
        db = GraphDB.open(graph, engine=_ENGINE_NAMES[method], **kwargs)
        result_sets = db.execute_many(list(queries))
        results = [result.pairs for result in result_sets]
        if check_equal:
            if reference_results is None:
                reference_results = results
            elif results != reference_results:
                raise EvaluationError(
                    f"method {method} disagreed with {methods[0]} on "
                    f"queries {list(queries)}"
                )
        engine = db.engine
        per_method[method] = MethodMeasurement(
            method=method,
            total_time=engine.total_time,
            shared_data_time=engine.timer.get(PHASE_SHARED_DATA),
            pre_join_time=engine.timer.get(PHASE_PRE_JOIN),
            remainder_time=engine.timer.get(PHASE_REMAINDER),
            shared_pairs=engine.shared_data_size(),
            result_pairs=sum(len(result) for result in results),
            counters=(
                engine.counters.as_dict() if engine.counters is not None else {}
            ),
        )
    return SetMeasurement(queries=tuple(queries), per_method=per_method)


@dataclass
class WorkloadMeasurement:
    """Averages over several multiple-RPQ sets (what the figures plot)."""

    num_sets: int
    num_rpqs: int
    mean_total: dict[str, float]
    mean_shared_data: dict[str, float]
    mean_pre_join: dict[str, float]
    mean_remainder: dict[str, float]
    mean_shared_pairs: dict[str, float]

    def ratio(self, numerator: str, denominator: str = "RTC") -> float:
        """Mean response-time ratio (e.g. Full over RTC)."""
        denominator_time = self.mean_total[denominator]
        if denominator_time == 0.0:
            return float("inf")
        return self.mean_total[numerator] / denominator_time


def run_workload(
    graph: LabeledMultigraph,
    query_sets: Sequence[Sequence[str]],
    methods: Sequence[str] = METHODS,
    engine_kwargs: dict | None = None,
    check_equal: bool = True,
) -> WorkloadMeasurement:
    """Run several multiple-RPQ sets and average per-method measurements."""
    if not query_sets:
        raise ValueError("query_sets must be non-empty")
    sums_total = {method: 0.0 for method in methods}
    sums_shared = dict(sums_total)
    sums_join = dict(sums_total)
    sums_remainder = dict(sums_total)
    sums_pairs = dict(sums_total)
    for queries in query_sets:
        measurement = run_rpq_set(
            graph,
            queries,
            methods=methods,
            engine_kwargs=engine_kwargs,
            check_equal=check_equal,
        )
        for method in methods:
            record = measurement.per_method[method]
            sums_total[method] += record.total_time
            sums_shared[method] += record.shared_data_time
            sums_join[method] += record.pre_join_time
            sums_remainder[method] += record.remainder_time
            sums_pairs[method] += record.shared_pairs
    count = len(query_sets)
    return WorkloadMeasurement(
        num_sets=count,
        num_rpqs=len(query_sets[0]),
        mean_total={m: sums_total[m] / count for m in methods},
        mean_shared_data={m: sums_shared[m] / count for m in methods},
        mean_pre_join={m: sums_join[m] / count for m in methods},
        mean_remainder={m: sums_remainder[m] / count for m in methods},
        mean_shared_pairs={m: sums_pairs[m] / count for m in methods},
    )
