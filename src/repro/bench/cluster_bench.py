"""Throughput measurement of the :mod:`repro.cluster` serving layer.

:func:`run_cluster_benchmark` spins up a :class:`~repro.cluster.ClusterRouter`
per ``(shards, update mix)`` configuration -- real TCP, real client
threads, the exact ``repro serve --shards N`` path -- and replays a
closure-sharing workload, optionally interleaved with streaming edge
updates (every ``update_every``-th request per client toggles an edge).

The update mix is the scenario sharding is *for* on a single machine.
The mixed workload attaches incremental watchers
(:meth:`~repro.db.GraphDB.watch`) for the workload's closure bodies --
the paper's streaming extension -- and every update then pays the
maintenance bill: an edge insertion repairs each watcher incrementally,
an edge removal rebuilds each watcher *from scratch over the whole
session graph*, and either way the session's shared RTC caches drop and
the scheduler drains.  On a 1-shard deployment that bill is priced on
the full graph and stalls the entire service; with N shards only the
owning shard pays, on 1/N of the data, while the other shards keep
serving from hot caches.  The benchmark's gate is therefore: sharded
QPS > 1-shard QPS at high client counts under the mixed workload.

The second axis is the shard *transport*: :func:`run_backend_comparison`
pits ``backend="thread"`` (replica groups in the router's process,
sharing its GIL) against ``backend="process"`` (one worker process per
shard) on a CPU-bound read-heavy mix -- the configuration where process
shards buy true multi-core scale-out rather than just update isolation.

``benchmarks/bench_cluster.py`` is the command-line driver emitting
``BENCH_cluster.json``.
"""

from __future__ import annotations

import threading
import time

from repro.bench.formatting import format_seconds, format_table
from repro.cluster import ClusterConfig, ClusterRouter, GraphCluster
from repro.db import GraphDB
from repro.graph.multigraph import LabeledMultigraph
from repro.server import Client, ServerConfig, ServerThread
from repro.obs import phase_totals
from repro.server.metrics import percentile

__all__ = [
    "closure_bodies",
    "measure_cluster_configuration",
    "run_cluster_benchmark",
    "run_backend_comparison",
    "run_edge_cut_benchmark",
    "run_restart_benchmark",
    "format_cluster_rows",
    "format_restart_rows",
    "pick_update_targets",
]


def closure_bodies(queries: list[str]) -> list[str]:
    """The distinct Kleene-closure bodies of a query list (normalised).

    These are the bodies a streaming deployment watches; the benchmark
    attaches one watcher per body so updates pay the same maintenance
    cost they would in production.
    """
    from repro.core.decompose import decompose_clause
    from repro.core.dnf import to_dnf
    from repro.regex.parser import parse

    bodies: set[str] = set()
    for query in queries:
        for clause in to_dnf(parse(query), 4096):
            unit = decompose_clause(clause)
            if unit.r is not None:
                bodies.add(unit.r.to_string())
    return sorted(bodies)


def pick_update_targets(graph: LabeledMultigraph, count: int) -> list:
    """``count`` well-connected vertices, spread over the graph's hubs.

    Each benchmark client toggles a uniquely-labeled self-loop on "its"
    target vertex, so updates spread across components (and hence across
    shards) without ever colliding between clients.
    """
    by_degree = sorted(
        (vertex for vertex in graph.vertices() if graph.out_degree(vertex) > 0),
        key=lambda vertex: (-graph.out_degree(vertex), str(vertex)),
    )
    if not by_degree:
        raise ValueError("the benchmark graph has no edges to anchor updates")
    return [by_degree[index % len(by_degree)] for index in range(count)]


def measure_cluster_configuration(
    graph: LabeledMultigraph,
    queries: list[str],
    shards: int,
    replicas: int,
    num_clients: int,
    requests_per_client: int,
    workers: int = 2,
    batch_window: float = 0.002,
    update_every: int = 0,
    engine: str = "rtc",
    verify: bool = True,
    watch_bodies: list[str] | None = None,
    backend: str = "thread",
    partition_strategy: str = "component",
) -> dict:
    """One benchmark cell: a ``shards x replicas`` cluster under load.

    When the workload mixes updates in (``update_every > 0``), the cell
    first attaches a watcher per entry of ``watch_bodies`` (default: the
    closure bodies of ``queries``), so every update carries realistic
    incremental-maintenance cost.  ``backend`` picks the shard transport
    (``"thread"`` replica groups in-process, ``"process"`` one worker
    process per shard) -- the exact ``repro serve --backend`` path --
    and ``partition_strategy`` how the graph splits (``"edge-cut"``
    engages the router's boundary join).
    """
    if watch_bodies is None:
        watch_bodies = closure_bodies(queries)
    cluster = GraphCluster.open(
        graph,
        engine=engine,
        config=ClusterConfig(
            shards=shards,
            replicas=replicas,
            workers=workers,
            max_queue=max(4096, num_clients * requests_per_client),
            batch_window=batch_window,
            backend=backend,
            pool_size=max(8, num_clients),
            partition_strategy=partition_strategy,
        ),
        start=False,
    )
    router = ClusterRouter(cluster, ServerConfig(default_timeout=None))
    update_targets = pick_update_targets(graph, num_clients)
    per_client_latencies: list[list[float]] = [[] for _ in range(num_clients)]
    update_counts = [0] * num_clients
    errors: list[BaseException] = []
    phases_before = phase_totals()

    with ServerThread(router) as handle:
        if verify:
            session = GraphDB.open(graph, engine=engine)
            with Client(*handle.address) as probe:
                for query in queries:
                    served = probe.query(query).pairs
                    expected = set(session.execute(query))
                    if served != expected:
                        raise AssertionError(
                            f"cluster answer differs from session for "
                            f"{query!r}: {len(served)} vs {len(expected)} pairs"
                        )
        if update_every:
            with Client(*handle.address) as probe:
                for body in watch_bodies:
                    probe.watch(body)

        barrier = threading.Barrier(num_clients + 1)

        graph_labels = sorted(graph.labels())

        def client_body(index: int) -> None:
            latencies = per_client_latencies[index]
            # Each client toggles its own edge: a real workload label (so
            # watcher maintenance does real work) from its hub vertex to
            # a private new vertex (so clients never collide, and the
            # edge routes to the hub's shard).
            hub = update_targets[index]
            label = graph_labels[index % len(graph_labels)]
            edge = (hub, label, f"bench-w{index}")
            present = False
            try:
                with Client(*handle.address) as client:
                    barrier.wait()
                    for request in range(requests_per_client):
                        if update_every and (request + 1) % update_every == 0:
                            if present:
                                client.update(remove=[edge])
                            else:
                                client.update(add=[edge])
                            present = not present
                            update_counts[index] += 1
                            continue
                        query = queries[request % len(queries)]
                        started = time.perf_counter()
                        client.query(query, pairs=False)
                        latencies.append(time.perf_counter() - started)
            except BaseException as error:  # noqa: BLE001  # repro: noqa[RPR701] -- bench worker thread: the failure is stashed and re-raised by the harness after join
                errors.append(error)
                barrier.abort()

        threads = [
            threading.Thread(target=client_body, args=(index,))
            for index in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            pass  # a client aborted during setup; its error is re-raised below
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        with Client(*handle.address) as probe:
            scheduler_stats = probe.stats()["scheduler"]

    latencies = [
        latency
        for client_latencies in per_client_latencies
        for latency in client_latencies
    ]
    total_queries = len(latencies)
    row = {
        "shards": shards,
        "replicas": replicas,
        "clients": num_clients,
        "engine": engine,
        "backend": backend,
        "strategy": partition_strategy,
        "cut_edges": len(cluster.partition.cut_relation()),
        "update_every": update_every,
        "queries": total_queries,
        "updates": sum(update_counts),
        "elapsed": elapsed,
        "qps": total_queries / elapsed if elapsed > 0 else 0.0,
        "latency_mean": sum(latencies) / len(latencies) if latencies else 0.0,
        "latency_p50": percentile(latencies, 0.50),
        "latency_p95": percentile(latencies, 0.95),
        "cache_hits": scheduler_stats.get("cache", {}).get("hits", 0),
        "cache_misses": scheduler_stats.get("cache", {}).get("misses", 0),
        "verified": verify,
    }
    # This cell's engine/storage phase breakdown (rtc vs evaluate vs
    # join vs wal ...) as a delta over the router process's phase
    # ledger.  Process-backend shards burn their evaluate/wal time in
    # the worker processes; the router-side ledger still captures the
    # join rounds it runs itself.
    phases_after = phase_totals()
    row["phases"] = {
        phase: round(total - phases_before.get(phase, 0.0), 6)
        for phase, total in sorted(phases_after.items())
        if total - phases_before.get(phase, 0.0) > 0.0
    }
    return row


def run_cluster_benchmark(
    graph: LabeledMultigraph,
    queries: list[str],
    shard_counts=(1, 4),
    replicas: int = 2,
    num_clients: int = 32,
    requests_per_client: int = 16,
    workers: int = 2,
    update_every: int = 4,
    engine: str = "rtc",
) -> list[dict]:
    """The sweep: each shard count, read-only and mixed-update workloads."""
    rows = []
    for shards in shard_counts:
        for mix in (0, update_every):
            rows.append(
                measure_cluster_configuration(
                    graph,
                    queries,
                    shards=shards,
                    replicas=replicas,
                    num_clients=num_clients,
                    requests_per_client=requests_per_client,
                    workers=workers,
                    update_every=mix,
                    engine=engine,
                    verify=(mix == 0),
                )
            )
    return rows


def run_backend_comparison(
    graph: LabeledMultigraph,
    queries: list[str],
    shards: int = 4,
    replicas: int = 2,
    num_clients: int = 32,
    requests_per_client: int = 16,
    workers: int = 2,
    engine: str = "rtc",
    backends=("thread", "process"),
) -> list[dict]:
    """Thread-vs-process shard transport on a CPU-bound read-heavy mix.

    Same topology, same workload, read-only (every request is an RTC
    evaluation, the CPU-bound path) -- the only variable is whether the
    shards share the router's GIL or run on their own cores.  On a
    multi-core machine the process backend's QPS should clear the thread
    backend's by ~min(cores, shards)x; on one core they tie minus the
    serialisation overhead.
    """
    return [
        measure_cluster_configuration(
            graph,
            queries,
            shards=shards,
            replicas=replicas,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            workers=workers,
            update_every=0,
            engine=engine,
            verify=True,
            backend=backend,
        )
        for backend in backends
    ]


def run_edge_cut_benchmark(
    graph: LabeledMultigraph,
    queries: list[str],
    shards: int = 2,
    replicas: int = 1,
    num_clients: int = 8,
    requests_per_client: int = 8,
    workers: int = 2,
    engine: str = "rtc",
) -> list[dict]:
    """The giant-component scenario: one WCC, edge-cut sharded.

    ``graph`` must be a single weakly-connected component (e.g.
    :func:`repro.datasets.rmat.rmat_connected_graph`).  Component-disjoint
    partitioning can only put it on one shard; the sweep measures that
    1-shard deployment against an ``shards``-shard edge-cut deployment
    whose every answer goes through the router's boundary join.  Both
    cells verify against a single session, so the sweep doubles as a
    live identity gate for the join path.
    """
    cells = [
        dict(shards=1, partition_strategy="component"),
        dict(shards=shards, partition_strategy="edge-cut"),
    ]
    return [
        measure_cluster_configuration(
            graph,
            queries,
            replicas=replicas,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            workers=workers,
            update_every=0,
            engine=engine,
            verify=True,
            **cell,
        )
        for cell in cells
    ]


def run_restart_benchmark(
    graph: LabeledMultigraph,
    queries: list[str],
    data_dir,
    shards: int = 2,
    replicas: int = 1,
    workers: int = 2,
    engine: str = "rtc",
) -> list[dict]:
    """Cold-vs-warm restart of a durable (``data_dir``-backed) cluster.

    The cold row is the first start over a fresh directory: every
    closure body is constructed from scratch.  The cluster is then
    checkpointed and stopped, and the warm row restarts it over the
    same directory -- the shards recover their graphs from snapshot +
    WAL and their closures from the RTC store.  Startup and query
    times are recorded as context, but the *gate* is cache behaviour,
    not wall-clock: the warm replay of the whole workload must add
    zero RTC constructions (``rtc_constructions == 0``).

    Thread backend, ``engine="rtc"`` only (the row counts the rtc
    engine's construction misses).
    """
    rows = []
    config = ClusterConfig(
        shards=shards, replicas=replicas, workers=workers, data_dir=data_dir
    )
    for phase in ("cold-start", "warm-restart"):
        started = time.perf_counter()
        cluster = GraphCluster.open(graph.copy(), engine=engine, config=config)
        startup = time.perf_counter() - started
        try:
            caches = [
                cluster.backend(shard).replicas[0].db.engine.rtc_cache.stats
                for shard in range(shards)
            ]
            base_misses = sum(cache.misses for cache in caches)
            first_started = time.perf_counter()
            cluster.submit(queries[0]).result(timeout=300)
            first_query = time.perf_counter() - first_started
            replay_started = time.perf_counter()
            for query in queries[1:]:
                cluster.submit(query).result(timeout=300)
            replay = time.perf_counter() - replay_started
            document = cluster.describe()
            storage_docs = [
                entry.get("storage", {}) for entry in document["per_shard"]
            ]
            rows.append(
                {
                    "phase": phase,
                    "shards": shards,
                    "replicas": replicas,
                    "queries": len(queries),
                    "startup_seconds": startup,
                    "first_query_seconds": first_query,
                    "replay_seconds": replay,
                    "recovered": all(
                        doc.get("recovered", False) for doc in storage_docs
                    ),
                    "warm_entries": sum(
                        doc.get("warm", {}).get("entries", 0)
                        for doc in storage_docs
                    ),
                    "rtc_constructions": sum(
                        cache.misses for cache in caches
                    ) - base_misses,
                }
            )
            cluster.checkpoint()
        finally:
            cluster.stop()
    return rows


def format_cluster_rows(rows: list[dict]) -> str:
    """The human-readable table of a cluster benchmark sweep."""
    return format_table(
        [
            "shards",
            "replicas",
            "backend",
            "strategy",
            "clients",
            "workload",
            "queries",
            "updates",
            "QPS",
            "p50",
            "p95",
            "cache hit/miss",
        ],
        [
            [
                row["shards"],
                row["replicas"],
                row.get("backend", "thread"),
                row.get("strategy", "component"),
                row["clients"],
                (
                    f"1 update / {row['update_every']} reqs"
                    if row["update_every"]
                    else "read-only"
                ),
                row["queries"],
                row["updates"],
                f"{row['qps']:.1f}",
                format_seconds(row["latency_p50"]),
                format_seconds(row["latency_p95"]),
                f"{row['cache_hits']}/{row['cache_misses']}",
            ]
            for row in rows
        ],
    )


def format_restart_rows(rows: list[dict]) -> str:
    """The human-readable table of a cold-vs-warm restart sweep."""
    return format_table(
        [
            "phase",
            "shards",
            "queries",
            "startup",
            "first query",
            "replay",
            "warm entries",
            "RTC constructions",
        ],
        [
            [
                row["phase"],
                row["shards"],
                row["queries"],
                format_seconds(row["startup_seconds"]),
                format_seconds(row["first_query_seconds"]),
                format_seconds(row["replay_seconds"]),
                row["warm_entries"],
                row["rtc_constructions"],
            ]
            for row in rows
        ],
    )
