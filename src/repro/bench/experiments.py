"""Experiment drivers: one function per figure/table of the paper.

Each driver assembles the datasets and workloads of Section V, runs the
harness, and returns plain row dictionaries that the ``benchmarks/``
modules print and record.  Scale parameters default to Python-feasible
sizes with the paper's degree sweep preserved (DESIGN.md, substitutions);
everything is overridable for larger runs.

Figure map:

* Fig. 10(a) / 10(b): :func:`experiment1_synthetic` / :func:`experiment1_real`
  -- response time vs vertex degree, 3 methods;
* Fig. 11: the same drivers (phase columns are always measured);
* Fig. 12 / 13: :func:`sharing_statistics` -- shared-data size and vertex
  counts of ``G_R`` vs ``Ḡ_R``;
* Fig. 14 / 15: :func:`experiment2` -- sweep over the number of RPQs;
* Table IV: :func:`dataset_statistics`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bench.harness import METHODS, run_workload
from repro.core.stats import reduction_stats
from repro.datasets.rmat import rmat_n
from repro.datasets.standins import load_standin
from repro.graph.multigraph import LabeledMultigraph
from repro.workloads.generator import generate_workload

__all__ = [
    "experiment1_synthetic",
    "experiment1_real",
    "experiment2",
    "sharing_statistics",
    "dataset_statistics",
    "REAL_DATASETS",
    "DEFAULT_DEGREE_EXPONENTS",
]

#: The paper's synthetic sweep: degree = 2^(N-2) for RMAT_N, N = 0..6.
DEFAULT_DEGREE_EXPONENTS = (0, 1, 2, 3, 4, 5, 6)

#: Real-dataset stand-ins in the paper's degree order.
REAL_DATASETS = ("yago2s", "robots", "advogato", "youtube")


def _measure_on_graph(
    graph: LabeledMultigraph,
    num_rpqs: int,
    num_sets: int,
    seed: int,
    methods: Sequence[str],
) -> dict:
    workload = generate_workload(
        graph, num_sets=num_sets, max_rpqs=max(num_rpqs, 1), seed=seed
    )
    query_sets = [rpq_set.subset(num_rpqs) for rpq_set in workload]
    measurement = run_workload(graph, query_sets, methods=methods)
    row = {
        "degree": graph.average_degree_per_label(),
        "num_rpqs": num_rpqs,
        "num_sets": num_sets,
    }
    for method in methods:
        row[f"total_{method}"] = measurement.mean_total[method]
        row[f"shared_data_{method}"] = measurement.mean_shared_data[method]
        row[f"pre_join_{method}"] = measurement.mean_pre_join[method]
        row[f"remainder_{method}"] = measurement.mean_remainder[method]
        row[f"shared_pairs_{method}"] = measurement.mean_shared_pairs[method]
    return row


def experiment1_synthetic(
    degree_exponents: Sequence[int] = DEFAULT_DEGREE_EXPONENTS,
    scale: int = 10,
    num_rpqs: int = 4,
    num_sets: int = 3,
    seed: int = 0,
    methods: Sequence[str] = METHODS,
) -> list[dict]:
    """Fig. 10(a)/11(a): sweep RMAT_N over the paper's degree range.

    ``degree_exponents`` are the paper's N values (degree = 2^{N-2} with
    4 labels).  One row per N with per-method totals, phases and shared
    sizes.
    """
    rows = []
    for n in degree_exponents:
        graph = rmat_n(n, scale=scale, seed=seed + n)
        row = _measure_on_graph(graph, num_rpqs, num_sets, seed + n, methods)
        row["dataset"] = f"RMAT_{n}"
        row["n"] = n
        rows.append(row)
    return rows


#: Default scale-down fractions for the real stand-ins.  Yago2s is far
#: beyond pure-Python scale; Advogato/Youtube are shrunk only enough to
#: keep the benchmark suite's wall-clock reasonable.  All fractions
#: preserve |E|/(|V||Sigma|), the paper's x-axis variable.
DEFAULT_FRACTIONS = {"yago2s": 1 / 1000, "advogato": 1 / 8, "youtube": 1 / 4}


def experiment1_real(
    datasets: Sequence[str] = REAL_DATASETS,
    num_rpqs: int = 4,
    num_sets: int = 3,
    seed: int = 0,
    methods: Sequence[str] = METHODS,
    fractions: dict | None = None,
) -> list[dict]:
    """Fig. 10(b)/11(b): the four Table-IV stand-ins.

    ``fractions`` maps dataset name -> scale-down fraction (default
    :data:`DEFAULT_FRACTIONS`; pass ``{}`` for published sizes).
    """
    if fractions is None:
        fractions = DEFAULT_FRACTIONS
    rows = []
    for name in datasets:
        kwargs = (
            {"fraction": fractions[name]} if fractions.get(name) else {}
        )
        graph = load_standin(name, seed=seed, **kwargs)
        row = _measure_on_graph(graph, num_rpqs, num_sets, seed, methods)
        row["dataset"] = name
        rows.append(row)
    return rows


def experiment2(
    graph: LabeledMultigraph,
    dataset_name: str,
    set_sizes: Sequence[int] = (1, 2, 4, 6, 8, 10),
    num_sets: int = 3,
    seed: int = 0,
    methods: Sequence[str] = METHODS,
) -> list[dict]:
    """Fig. 14/15: vary the number of RPQs per set on one graph.

    The paper uses RMAT_3 and Advogato (median degrees); callers pass the
    graph so benches can choose scale.
    """
    workload = generate_workload(
        graph, num_sets=num_sets, max_rpqs=max(set_sizes), seed=seed
    )
    rows = []
    for size in set_sizes:
        query_sets = [rpq_set.subset(size) for rpq_set in workload]
        measurement = run_workload(graph, query_sets, methods=methods)
        row = {
            "dataset": dataset_name,
            "degree": graph.average_degree_per_label(),
            "num_rpqs": size,
            "num_sets": num_sets,
        }
        for method in methods:
            row[f"total_{method}"] = measurement.mean_total[method]
            row[f"shared_data_{method}"] = measurement.mean_shared_data[method]
            row[f"pre_join_{method}"] = measurement.mean_pre_join[method]
            row[f"remainder_{method}"] = measurement.mean_remainder[method]
        rows.append(row)
    return rows


def sharing_statistics(
    graph: LabeledMultigraph,
    dataset_name: str,
    num_sets: int = 3,
    seed: int = 0,
) -> list[dict]:
    """Fig. 12/13 inputs: reduction statistics per workload closure body.

    For each workload ``R``: ``|R+_G|`` vs ``|TC(Ḡ_R)|`` (Fig. 12) and
    ``|V_R|`` vs ``|V̄_R|`` (Fig. 13), plus the avg SCC size.
    """
    workload = generate_workload(graph, num_sets=num_sets, max_rpqs=1, seed=seed)
    rows = []
    for rpq_set in workload:
        stats = reduction_stats(graph, rpq_set.r)
        rows.append(
            {
                "dataset": dataset_name,
                "degree": graph.average_degree_per_label(),
                "r": rpq_set.r,
                "full_pairs": stats.full_closure_pairs,
                "rtc_pairs": stats.rtc_pairs,
                "gr_vertices": stats.num_gr_vertices,
                "condensed_vertices": stats.num_condensed_vertices,
                "avg_scc_size": stats.average_scc_size,
                "size_ratio": stats.shared_size_ratio,
                "vertex_ratio": stats.vertex_reduction_ratio,
            }
        )
    return rows


def dataset_statistics(graph: LabeledMultigraph, name: str) -> dict:
    """One Table-IV row: |V|, |E|, |Sigma| and the degree statistic."""
    return {
        "dataset": name,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_labels": graph.num_labels,
        "degree": graph.average_degree_per_label(),
    }
