"""Plain-text tables for the benchmark output.

The benchmarks regenerate the paper's figures as *printed series* (the
environment has no plotting stack); these helpers keep the output aligned
and consistent so EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_seconds", "format_ratio", "banner"]


def format_seconds(seconds: float | None) -> str:
    """Human-scaled time: micro/milli/seconds with 3 significant digits.

    ``None`` (an empty latency reservoir's percentile) renders as ``-``.
    """
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def format_ratio(ratio: float) -> str:
    """A ratio like ``12.3x`` (``inf`` guarded)."""
    if ratio == float("inf"):
        return "inf"
    return f"{ratio:.2f}x"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """An aligned, pipe-separated table (markdown-compatible)."""
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        padded = (cell.ljust(widths[i]) for i, cell in enumerate(cells))
        return "| " + " | ".join(padded) + " |"

    separator = "|" + "|".join("-" * (width + 2) for width in widths) + "|"
    body = [line(headers), separator]
    body.extend(line(row) for row in text_rows)
    return "\n".join(body)


def banner(title: str) -> str:
    """A section banner for benchmark stdout."""
    rule = "=" * max(8, len(title))
    return f"\n{rule}\n{title}\n{rule}"
