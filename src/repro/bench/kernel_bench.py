"""Kernel microbenches: set vs bitmap evaluation, list vs packed wire.

The PR-10 before/after instruments.  ``run_kernel_comparison`` times
the same queries through both kernel routes of
:func:`repro.rpq.eval_rpq` (``kernel="sets"`` is the pre-PR-10 tuple
BFS, ``kernel="bits"`` the interned-bitmap product BFS) and asserts the
answers identical -- a benchmark run is also an identity check.
``run_wire_comparison`` measures the JSON byte footprint of the same
pair relation under the list and ``packed`` encodings of
:mod:`repro.server.protocol`.

A query cell is *closure-heavy* when its regex contains a Kleene
closure -- those are the cells the bitmap kernel is for (frontier
OR-sweeps amortise the quadratic closure walk), and the cells the
fig10/fig11 before/after gate is measured on.
"""

from __future__ import annotations

import json
import time
from collections.abc import Sequence

from repro.graph.multigraph import LabeledMultigraph
from repro.rpq import eval_rpq
from repro.server import protocol

__all__ = [
    "closure_heavy",
    "format_kernel_rows",
    "format_wire_rows",
    "run_kernel_comparison",
    "run_wire_comparison",
]


def closure_heavy(query: str) -> bool:
    """Does the query contain a Kleene closure (``+``/``*``)?"""
    return "+" in query or "*" in query


def run_kernel_comparison(
    graph: LabeledMultigraph,
    queries: Sequence[str],
    repeats: int = 3,
) -> list[dict]:
    """Time each query under both kernels; best-of-``repeats`` per cell.

    Every cell's two answers are checked identical, so a divergent
    kernel fails the benchmark rather than producing a fast wrong row.
    """
    rows: list[dict] = []
    for query in queries:
        timings = {}
        answers = {}
        for kernel in ("sets", "bits"):
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                answers[kernel] = eval_rpq(graph, query, kernel=kernel)
                best = min(best, time.perf_counter() - started)
            timings[kernel] = best
        if answers["sets"] != answers["bits"]:
            raise AssertionError(
                f"kernel divergence on {query!r}: "
                f"{len(answers['sets'])} set pairs vs "
                f"{len(answers['bits'])} bitmap pairs"
            )
        rows.append(
            {
                "query": query,
                "closure_heavy": closure_heavy(query),
                "pairs": len(answers["bits"]),
                "sets_seconds": timings["sets"],
                "bits_seconds": timings["bits"],
                "speedup": timings["sets"] / max(timings["bits"], 1e-12),
            }
        )
    return rows


def run_wire_comparison(relations: dict[str, set]) -> list[dict]:
    """JSON byte footprint of each relation, list vs packed encoding."""
    rows: list[dict] = []
    for name, pairs in relations.items():
        as_list = len(json.dumps(protocol.pairs_to_wire(pairs)))
        as_packed = len(
            json.dumps(protocol.pairs_to_wire(pairs, enc="packed"))
        )
        rows.append(
            {
                "relation": name,
                "pairs": len(pairs),
                "list_bytes": as_list,
                "packed_bytes": as_packed,
                "reduction": as_list / max(as_packed, 1),
            }
        )
    return rows


def format_kernel_rows(rows: list[dict]) -> str:
    from repro.bench.formatting import format_ratio, format_seconds, format_table

    headers = ["query", "closure", "pairs", "sets", "bits", "speedup"]
    body = [
        [
            row["query"],
            "yes" if row["closure_heavy"] else "no",
            str(row["pairs"]),
            format_seconds(row["sets_seconds"]),
            format_seconds(row["bits_seconds"]),
            format_ratio(row["speedup"]),
        ]
        for row in rows
    ]
    return "kernel before/after (sets vs bits)\n" + format_table(headers, body)


def format_wire_rows(rows: list[dict]) -> str:
    from repro.bench.formatting import format_ratio, format_table

    headers = ["relation", "pairs", "list bytes", "packed bytes", "reduction"]
    body = [
        [
            row["relation"],
            str(row["pairs"]),
            str(row["list_bytes"]),
            str(row["packed_bytes"]),
            format_ratio(row["reduction"]),
        ]
        for row in rows
    ]
    return "wire encoding (list vs packed)\n" + format_table(headers, body)
