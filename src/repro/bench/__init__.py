"""Benchmark harness: measurement, experiment drivers and table output."""

from repro.bench.experiments import (
    DEFAULT_DEGREE_EXPONENTS,
    DEFAULT_FRACTIONS,
    REAL_DATASETS,
    dataset_statistics,
    experiment1_real,
    experiment1_synthetic,
    experiment2,
    sharing_statistics,
)
from repro.bench.formatting import banner, format_ratio, format_seconds, format_table
from repro.bench.harness import (
    METHODS,
    MethodMeasurement,
    SetMeasurement,
    run_rpq_set,
    run_workload,
)
from repro.bench.kernel_bench import (
    closure_heavy,
    format_kernel_rows,
    format_wire_rows,
    run_kernel_comparison,
    run_wire_comparison,
)

__all__ = [
    "METHODS",
    "MethodMeasurement",
    "SetMeasurement",
    "run_rpq_set",
    "run_workload",
    "experiment1_synthetic",
    "experiment1_real",
    "experiment2",
    "sharing_statistics",
    "dataset_statistics",
    "REAL_DATASETS",
    "DEFAULT_DEGREE_EXPONENTS",
    "DEFAULT_FRACTIONS",
    "format_table",
    "format_seconds",
    "format_ratio",
    "banner",
    "closure_heavy",
    "run_kernel_comparison",
    "run_wire_comparison",
    "format_kernel_rows",
    "format_wire_rows",
]
