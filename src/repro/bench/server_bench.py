"""Throughput/latency measurement of the :mod:`repro.server` subsystem.

:func:`run_server_benchmark` spins up an in-process server
(:class:`~repro.server.ServerThread`) per ``(engine, client count)``
configuration and drives it with real TCP clients on real threads --
the measured path is exactly what ``repro serve`` serves, protocol
framing included.  All clients start behind a barrier, replay the same
closure-sharing query list (``pairs=False`` keeps the wire cost flat),
and record client-observed latency per request; the server's own
metrics contribute batch sizes and shared-cache hit counts.

``benchmarks/bench_server.py`` is the command-line driver that feeds an
R-MAT workload through this and emits ``BENCH_server.json``.
"""

from __future__ import annotations

import threading
import time

from repro.bench.formatting import format_seconds, format_table
from repro.db import GraphDB
from repro.graph.multigraph import LabeledMultigraph
from repro.obs import phase_totals
from repro.server import Client, ServerConfig, ServerThread
from repro.server.metrics import percentile

__all__ = ["measure_configuration", "run_server_benchmark", "format_benchmark_rows"]


def measure_configuration(
    graph: LabeledMultigraph,
    queries: list[str],
    engine: str,
    num_clients: int,
    requests_per_client: int,
    workers: int = 4,
    batch_window: float = 0.002,
) -> dict:
    """One benchmark cell: ``num_clients`` concurrent clients, one engine."""
    db = GraphDB.open(graph, engine=engine)
    config = ServerConfig(
        workers=workers,
        batch_window=batch_window,
        max_queue=max(4096, num_clients * requests_per_client),
        default_timeout=None,
    )
    per_client_latencies: list[list[float]] = [[] for _ in range(num_clients)]
    errors: list[BaseException] = []
    phases_before = phase_totals()
    with ServerThread(db, config) as handle:
        barrier = threading.Barrier(num_clients + 1)

        def client_body(latencies: list[float]) -> None:
            try:
                with Client(*handle.address) as client:
                    barrier.wait()
                    for index in range(requests_per_client):
                        query = queries[index % len(queries)]
                        started = time.perf_counter()
                        client.query(query, pairs=False)
                        latencies.append(time.perf_counter() - started)
            except BaseException as error:  # noqa: BLE001  # repro: noqa[RPR701] -- bench worker thread: the failure is stashed and re-raised by the harness after join
                errors.append(error)
                barrier.abort()

        threads = [
            threading.Thread(target=client_body, args=(latencies,))
            for latencies in per_client_latencies
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        if errors:
            raise errors[0]
        with Client(*handle.address) as probe:
            scheduler_stats = probe.stats()["scheduler"]

    latencies = [
        latency
        for client_latencies in per_client_latencies
        for latency in client_latencies
    ]
    total_requests = num_clients * requests_per_client
    row = {
        "engine": engine,
        "clients": num_clients,
        "requests": total_requests,
        "elapsed": elapsed,
        "qps": total_requests / elapsed if elapsed > 0 else 0.0,
        "latency_mean": sum(latencies) / len(latencies) if latencies else 0.0,
        "latency_p50": percentile(latencies, 0.50),
        "latency_p95": percentile(latencies, 0.95),
        "batches": scheduler_stats["batches"],
        "mean_batch_size": scheduler_stats["mean_batch_size"],
        "max_batch_size": scheduler_stats["max_batch_size"],
    }
    cache = scheduler_stats.get("cache")
    row["cache_hits"] = cache["hits"] if cache else 0
    row["cache_misses"] = cache["misses"] if cache else 0
    # Where the engine's wall time went during this cell (the always-on
    # phase ledger: rtc construction vs evaluation vs join vs wal ...),
    # as this cell's delta over the process-wide counters.
    phases_after = phase_totals()
    row["phases"] = {
        phase: round(total - phases_before.get(phase, 0.0), 6)
        for phase, total in sorted(phases_after.items())
        if total - phases_before.get(phase, 0.0) > 0.0
    }
    return row


def run_server_benchmark(
    graph: LabeledMultigraph,
    queries: list[str],
    engines=("rtc", "no"),
    client_counts=(1, 8, 32),
    requests_per_client: int = 8,
    workers: int = 4,
    batch_window: float = 0.002,
) -> list[dict]:
    """The full sweep: every engine at every concurrency level."""
    rows = []
    for engine in engines:
        for num_clients in client_counts:
            rows.append(
                measure_configuration(
                    graph,
                    queries,
                    engine,
                    num_clients,
                    requests_per_client,
                    workers=workers,
                    batch_window=batch_window,
                )
            )
    return rows


def format_benchmark_rows(rows: list[dict]) -> str:
    """The human-readable table of a benchmark sweep."""
    return format_table(
        [
            "engine",
            "clients",
            "requests",
            "QPS",
            "p50",
            "p95",
            "mean batch",
            "cache hit/miss",
        ],
        [
            [
                row["engine"],
                row["clients"],
                row["requests"],
                f"{row['qps']:.1f}",
                format_seconds(row["latency_p50"]),
                format_seconds(row["latency_p95"]),
                f"{row['mean_batch_size']:.2f}",
                f"{row['cache_hits']}/{row['cache_misses']}",
            ]
            for row in rows
        ],
    )
