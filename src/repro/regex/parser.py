"""Parser for the textual form of regular path queries.

The concrete syntax follows the paper's notation with ASCII conveniences::

    a.(b.c)+.c         the paper's  d·(b·c)+·c  (the middle dot also works)
    a|b                alternation
    (a.b)*.b+          closures
    a?                 option (= ()|a)
    ()                 epsilon (the empty word)
    <has part>         quoted label when the name is not an identifier

Concatenation may be written with ``.``, with the typographic ``·``, or by
simple juxtaposition (``(a|b)c``).  Operator precedence, loosest to
tightest: ``|``  <  concatenation  <  postfix ``+ * ?``.

:func:`parse` returns an immutable :class:`~repro.regex.ast.RegexNode`;
:class:`~repro.errors.RPQSyntaxError` carries the character offset of the
first offending token.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RPQSyntaxError
from repro.regex.ast import (
    EPSILON,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
    concat,
    union,
)

__all__ = ["parse", "tokenize", "Token"]

_SYMBOLS = {".", "·", "|", "+", "*", "?", "(", ")"}


@dataclass(frozen=True)
class Token:
    """One lexical token: a ``kind`` (``label`` or a symbol), text, offset."""

    kind: str
    text: str
    position: int


def tokenize(query: str) -> list[Token]:
    """Split a query string into tokens; raises on stray characters."""
    tokens: list[Token] = []
    i = 0
    length = len(query)
    while i < length:
        ch = query[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _SYMBOLS:
            kind = "." if ch == "·" else ch
            tokens.append(Token(kind, ch, i))
            i += 1
            continue
        if ch == "<":
            end = query.find(">", i + 1)
            if end == -1:
                raise RPQSyntaxError("unterminated quoted label '<...'", i)
            name = query[i + 1 : end]
            if not name:
                raise RPQSyntaxError("empty quoted label '<>'", i)
            tokens.append(Token("label", name, i))
            i = end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (query[i].isalnum() or query[i] == "_"):
                i += 1
            tokens.append(Token("label", query[start:i], start))
            continue
        raise RPQSyntaxError(f"unexpected character {ch!r}", i)
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token is None:
            raise RPQSyntaxError(f"expected {kind!r}, found end of query", len(self._source))
        if token.kind != kind:
            raise RPQSyntaxError(
                f"expected {kind!r}, found {token.text!r}", token.position
            )
        return self._advance()

    def parse(self) -> RegexNode:
        if not self._tokens:
            raise RPQSyntaxError("empty query", 0)
        node = self._union()
        trailing = self._peek()
        if trailing is not None:
            raise RPQSyntaxError(
                f"unexpected {trailing.text!r} after complete query",
                trailing.position,
            )
        return node

    def _union(self) -> RegexNode:
        alternatives = [self._concat()]
        while True:
            token = self._peek()
            if token is None or token.kind != "|":
                break
            self._advance()
            alternatives.append(self._concat())
        if len(alternatives) == 1:
            return alternatives[0]
        return union(*alternatives)

    def _concat(self) -> RegexNode:
        parts = [self._postfix()]
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == ".":
                self._advance()
                parts.append(self._postfix())
                continue
            # Juxtaposition: the next token can begin an atom.
            if token.kind in ("label", "("):
                parts.append(self._postfix())
                continue
            break
        if len(parts) == 1:
            return parts[0]
        return concat(*parts)

    def _postfix(self) -> RegexNode:
        node = self._atom()
        while True:
            token = self._peek()
            if token is None or token.kind not in ("+", "*", "?"):
                break
            self._advance()
            if token.kind == "+":
                node = Plus(node)
            elif token.kind == "*":
                node = Star(node)
            else:
                node = Optional(node)
        return node

    def _atom(self) -> RegexNode:
        token = self._peek()
        if token is None:
            raise RPQSyntaxError("expected a label or '('", len(self._source))
        if token.kind == "label":
            self._advance()
            return Label(token.text)
        if token.kind == "(":
            self._advance()
            inner = self._peek()
            if inner is not None and inner.kind == ")":
                self._advance()
                return EPSILON
            node = self._union()
            self._expect(")")
            return node
        raise RPQSyntaxError(
            f"expected a label or '(', found {token.text!r}", token.position
        )


def parse(query: str | RegexNode) -> RegexNode:
    """Parse a query string into an AST (idempotent on AST input)."""
    if isinstance(query, RegexNode):
        return query
    return _Parser(tokenize(query), query).parse()
