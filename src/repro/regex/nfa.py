"""Thompson construction and epsilon-free NFAs for RPQ evaluation.

RPQ engines evaluate a query by simulating a finite automaton while
traversing the graph (paper Section II-B, Example 2).  This module compiles
a :class:`~repro.regex.ast.RegexNode` into:

1. an epsilon-NFA via the classic Thompson construction
   (:class:`EpsilonNFA`, one start state, one accept state), then
2. an epsilon-free :class:`LabelNFA` whose transition function is total on
   its reachable state set and whose states carry pre-computed epsilon
   closures -- the representation the product-BFS evaluator consumes.

:class:`LabelNFA` exposes the two facts the evaluator's pruning needs:

* ``nullable`` -- whether the language contains the empty word, in which
  case every vertex pair ``(v, v)`` satisfies the query;
* ``first_labels`` -- the labels that can begin a match, used to restrict
  the set of traversal start vertices (a standard optimisation also used
  by the Yakovets-style baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regex.ast import (
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
    Union,
)

__all__ = ["EpsilonNFA", "LabelNFA", "thompson", "compile_nfa"]


@dataclass
class EpsilonNFA:
    """A Thompson NFA: one start state, one accept state, eps transitions.

    ``transitions`` maps ``state -> label -> set(states)``;
    ``epsilon_transitions`` maps ``state -> set(states)``.
    """

    num_states: int = 0
    start: int = 0
    accept: int = 0
    transitions: dict[int, dict[str, set[int]]] = field(default_factory=dict)
    epsilon_transitions: dict[int, set[int]] = field(default_factory=dict)

    def new_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state

    def add_transition(self, source: int, label: str, target: int) -> None:
        self.transitions.setdefault(source, {}).setdefault(label, set()).add(target)

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon_transitions.setdefault(source, set()).add(target)

    def epsilon_closure(self, states: set[int]) -> frozenset[int]:
        """All states reachable from ``states`` via epsilon transitions."""
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for successor in self.epsilon_transitions.get(state, ()):
                if successor not in closure:
                    closure.add(successor)
                    stack.append(successor)
        return frozenset(closure)


def thompson(node: RegexNode) -> EpsilonNFA:
    """Compile an AST into a Thompson epsilon-NFA."""
    nfa = EpsilonNFA()

    def build(expr: RegexNode) -> tuple[int, int]:
        """Return (entry, exit) states of the fragment for ``expr``."""
        if isinstance(expr, Epsilon):
            entry = nfa.new_state()
            exit_ = nfa.new_state()
            nfa.add_epsilon(entry, exit_)
            return entry, exit_
        if isinstance(expr, Label):
            entry = nfa.new_state()
            exit_ = nfa.new_state()
            nfa.add_transition(entry, expr.name, exit_)
            return entry, exit_
        if isinstance(expr, Concat):
            entry, current_exit = build(expr.parts[0])
            for part in expr.parts[1:]:
                next_entry, next_exit = build(part)
                nfa.add_epsilon(current_exit, next_entry)
                current_exit = next_exit
            return entry, current_exit
        if isinstance(expr, Union):
            entry = nfa.new_state()
            exit_ = nfa.new_state()
            for alternative in expr.alternatives:
                alt_entry, alt_exit = build(alternative)
                nfa.add_epsilon(entry, alt_entry)
                nfa.add_epsilon(alt_exit, exit_)
            return entry, exit_
        if isinstance(expr, Plus):
            body_entry, body_exit = build(expr.body)
            entry = nfa.new_state()
            exit_ = nfa.new_state()
            nfa.add_epsilon(entry, body_entry)
            nfa.add_epsilon(body_exit, exit_)
            nfa.add_epsilon(body_exit, body_entry)  # repeat
            return entry, exit_
        if isinstance(expr, Star):
            body_entry, body_exit = build(expr.body)
            entry = nfa.new_state()
            exit_ = nfa.new_state()
            nfa.add_epsilon(entry, body_entry)
            nfa.add_epsilon(body_exit, exit_)
            nfa.add_epsilon(body_exit, body_entry)
            nfa.add_epsilon(entry, exit_)  # skip
            return entry, exit_
        if isinstance(expr, Optional):
            body_entry, body_exit = build(expr.body)
            entry = nfa.new_state()
            exit_ = nfa.new_state()
            nfa.add_epsilon(entry, body_entry)
            nfa.add_epsilon(body_exit, exit_)
            nfa.add_epsilon(entry, exit_)
            return entry, exit_
        raise TypeError(f"unknown regex node {expr!r}")

    entry, exit_ = build(node)
    nfa.start = entry
    nfa.accept = exit_
    return nfa


@dataclass(frozen=True)
class LabelNFA:
    """Epsilon-free NFA over edge labels, ready for product traversal.

    ``delta`` maps ``state -> label -> frozenset(states)`` where every
    target set is already epsilon-closed; ``start`` is the epsilon-closed
    initial state set.  Only states reachable from ``start`` appear.
    """

    start: frozenset[int]
    accepts: frozenset[int]
    delta: dict[int, dict[str, frozenset[int]]]
    nullable: bool
    first_labels: frozenset[str]
    labels: frozenset[str]

    @property
    def num_states(self) -> int:
        return len(self.delta)

    def step(self, states: frozenset[int], label: str) -> frozenset[int]:
        """All states reachable from ``states`` by one ``label`` edge."""
        result: set[int] = set()
        delta = self.delta
        for state in states:
            targets = delta[state].get(label)
            if targets:
                result.update(targets)
        return frozenset(result)

    def is_accepting(self, states: frozenset[int]) -> bool:
        """True when the state set contains an accept state."""
        return not self.accepts.isdisjoint(states)

    def accepts_word(self, word: list[str] | tuple[str, ...]) -> bool:
        """Membership test for a label sequence (used by tests/oracles)."""
        states = self.start
        for label in word:
            states = self.step(states, label)
            if not states:
                return False
        return self.is_accepting(states)


def compile_nfa(node: RegexNode) -> LabelNFA:
    """Compile an AST into an epsilon-free :class:`LabelNFA`.

    The construction closes every transition target over epsilon edges, so
    the simulator never has to chase epsilons at traversal time -- the
    per-edge work during graph traversal is a single dictionary lookup.
    """
    eps_nfa = thompson(node)
    closures: dict[int, frozenset[int]] = {
        state: eps_nfa.epsilon_closure({state}) for state in range(eps_nfa.num_states)
    }

    start = closures[eps_nfa.start]
    accept_state = eps_nfa.accept

    # Build closed transitions for states reachable from the start closure.
    delta: dict[int, dict[str, frozenset[int]]] = {}
    stack = list(start)
    reachable: set[int] = set(start)
    while stack:
        state = stack.pop()
        out: dict[str, frozenset[int]] = {}
        for label, targets in eps_nfa.transitions.get(state, {}).items():
            closed: set[int] = set()
            for target in targets:
                closed.update(closures[target])
            closed_frozen = frozenset(closed)
            out[label] = closed_frozen
            for target in closed_frozen:
                if target not in reachable:
                    reachable.add(target)
                    stack.append(target)
        delta[state] = out
    # States reachable only as transition targets still need delta entries.
    for state in reachable:
        delta.setdefault(state, {})
        if not eps_nfa.transitions.get(state):
            continue

    accepts = frozenset(
        state for state in delta if accept_state in closures[state] or state == accept_state
    )
    nullable = not start.isdisjoint(accepts)
    first_labels = frozenset(
        label
        for state in start
        for label in delta[state]
        if delta[state][label]
    )
    labels = frozenset(label for out in delta.values() for label in out)
    return LabelNFA(
        start=start,
        accepts=accepts,
        delta=delta,
        nullable=nullable,
        first_labels=first_labels,
        labels=labels,
    )
