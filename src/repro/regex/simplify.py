"""Language-preserving simplification of RPQ expressions.

Queries arriving from users or generators often carry fat the evaluator
then pays for: duplicate union branches, nested closures, epsilon scraps.
:func:`simplify` applies a fixed set of *language-preserving* rewrite
rules bottom-up until a fixpoint:

=====================  =====================
input                  output
=====================  =====================
``(A+)+ / (A*)+``      ``A+`` / ``A*``
``(A+)* / (A*)*``      ``A*``
``(A?)? / (A+)?``      ``A?`` / ``A*``
``(A?)+ / (A?)*``      ``A*``
``epsilon+ / epsilon*``  ``epsilon``
``A|A`` (set dedup)    ``A``
``A|epsilon``          ``A?``  (when A not nullable)
``A? (A nullable)``    ``A``
``epsilon . A``        ``A``
nested concat/union    flattened
=====================  =====================

Every rule is justified by a regular-language identity; the property
tests check word-for-word language equality (and the canonical minimal-
DFA key) on random expressions.  Simplification shrinks the Thompson NFA
and, more importantly for this library, the number of DNF clauses --
``simplified_clause_count`` in the tests documents the win.

The engines do **not** call this implicitly (the paper evaluates queries
as given); it is an opt-in preprocessing step: ``engine.evaluate(
simplify(parse(query)))``.
"""

from __future__ import annotations

from repro.regex.ast import (
    EPSILON,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
    Union,
    concat,
    union,
)

__all__ = ["simplify", "is_nullable_ast"]


def is_nullable_ast(node: RegexNode) -> bool:
    """Whether the language of ``node`` contains the empty word.

    Purely syntactic (no automaton construction): epsilon, star and
    option are nullable; a concatenation is nullable when all parts are;
    a union when any alternative is.
    """
    if isinstance(node, Epsilon):
        return True
    if isinstance(node, Label):
        return False
    if isinstance(node, (Star, Optional)):
        return True
    if isinstance(node, Plus):
        return is_nullable_ast(node.body)
    if isinstance(node, Concat):
        return all(is_nullable_ast(part) for part in node.parts)
    if isinstance(node, Union):
        return any(is_nullable_ast(alt) for alt in node.alternatives)
    raise TypeError(f"unknown regex node {node!r}")


def _simplify_once(node: RegexNode) -> RegexNode:
    """One bottom-up rewrite pass."""
    if isinstance(node, (Epsilon, Label)):
        return node

    if isinstance(node, Concat):
        parts = [_simplify_once(part) for part in node.parts]
        return concat(*parts)  # concat() drops epsilons and flattens

    if isinstance(node, Union):
        alternatives = [_simplify_once(alt) for alt in node.alternatives]
        # A | epsilon -> A? (fold every epsilon branch into one option).
        non_epsilon = [alt for alt in alternatives if not isinstance(alt, Epsilon)]
        had_epsilon = len(non_epsilon) != len(alternatives)
        if not non_epsilon:
            return EPSILON
        merged = union(*non_epsilon)
        if had_epsilon and not is_nullable_ast(merged):
            return _simplify_once(Optional(merged))
        if had_epsilon and is_nullable_ast(merged):
            return merged
        return merged

    if isinstance(node, Plus):
        body = _simplify_once(node.body)
        if isinstance(body, Epsilon):
            return EPSILON
        if isinstance(body, Plus):  # (A+)+ = A+
            return Plus(body.body)
        if isinstance(body, Star):  # (A*)+ = A*
            return body
        if isinstance(body, Optional):  # (A?)+ = A*
            return Star(body.body)
        return Plus(body)

    if isinstance(node, Star):
        body = _simplify_once(node.body)
        if isinstance(body, Epsilon):
            return EPSILON
        if isinstance(body, (Plus, Star, Optional)):  # (A{+,*,?})* = A*
            return Star(body.body)
        return Star(body)

    if isinstance(node, Optional):
        body = _simplify_once(node.body)
        if is_nullable_ast(body):  # (nullable)? = nullable
            return body
        if isinstance(body, Plus):  # (A+)? = A*
            return Star(body.body)
        return Optional(body)

    raise TypeError(f"unknown regex node {node!r}")


def simplify(node: RegexNode, max_passes: int = 16) -> RegexNode:
    """Rewrite ``node`` to a language-equal, usually smaller expression.

    Iterates the single pass to a fixpoint (bounded by ``max_passes``;
    the rule set is strictly size-non-increasing, so the bound is a
    safety net, not a truncation).
    """
    current = node
    for _pass in range(max_passes):
        rewritten = _simplify_once(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current
