"""Deterministic automata, minimisation and canonical language keys.

The RTC cache in :mod:`repro.core.cache` can share one reduced transitive
closure between *syntactically different but language-equal* closure bodies
(for example ``a.b|a.c`` and ``a.(b|c)``).  That requires a canonical key
per regular language, which this module derives the textbook way:

1. subset construction :func:`determinize` over the epsilon-free
   :class:`~repro.regex.nfa.LabelNFA`,
2. Moore partition refinement :func:`minimize` (with an implicit dead
   state, so partial transition tables are handled), and
3. :func:`canonical_key` -- a BFS renumbering of the minimal DFA with
   sorted label order, serialised to a string.  Two regexes denote the
   same language iff their keys are equal (Myhill-Nerode uniqueness of the
   minimal DFA).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.regex.ast import RegexNode
from repro.regex.nfa import LabelNFA, compile_nfa
from repro.regex.parser import parse

__all__ = ["DFA", "determinize", "minimize", "canonical_key", "languages_equal"]


@dataclass(frozen=True)
class DFA:
    """A (possibly partial) deterministic finite automaton over labels.

    Missing transitions go to an implicit non-accepting dead state.
    States are integers ``0..num_states-1``; ``start`` is state id.
    """

    num_states: int
    start: int
    accepts: frozenset[int]
    delta: tuple[dict[str, int], ...]  # state -> label -> state

    def accepts_word(self, word: list[str] | tuple[str, ...]) -> bool:
        """Membership test for a label sequence."""
        state = self.start
        for label in word:
            next_state = self.delta[state].get(label)
            if next_state is None:
                return False
            state = next_state
        return state in self.accepts

    @property
    def labels(self) -> frozenset[str]:
        return frozenset(label for row in self.delta for label in row)


def determinize(nfa: LabelNFA) -> DFA:
    """Subset construction: epsilon-free NFA -> (partial) DFA."""
    state_ids: dict[frozenset[int], int] = {nfa.start: 0}
    rows: list[dict[str, int]] = [{}]
    accepts: set[int] = set()
    if nfa.is_accepting(nfa.start):
        accepts.add(0)
    queue: deque[frozenset[int]] = deque([nfa.start])
    while queue:
        subset = queue.popleft()
        subset_id = state_ids[subset]
        labels = {label for state in subset for label in nfa.delta[state]}
        for label in labels:
            target = nfa.step(subset, label)
            if not target:
                continue
            target_id = state_ids.get(target)
            if target_id is None:
                target_id = len(rows)
                state_ids[target] = target_id
                rows.append({})
                if nfa.is_accepting(target):
                    accepts.add(target_id)
                queue.append(target)
            rows[subset_id][label] = target_id
    return DFA(
        num_states=len(rows),
        start=0,
        accepts=frozenset(accepts),
        delta=tuple(rows),
    )


def minimize(dfa: DFA) -> DFA:
    """Moore partition refinement with an implicit dead state.

    Returns the minimal complete-modulo-dead-state DFA for the same
    language; unreachable states (there are none after
    :func:`determinize`) and the dead state itself are dropped from the
    output, keeping the table partial.
    """
    labels = sorted(dfa.labels)
    dead = dfa.num_states  # implicit dead state id
    total = dfa.num_states + 1

    def target(state: int, label: str) -> int:
        if state == dead:
            return dead
        return dfa.delta[state].get(label, dead)

    # Initial partition: accepting vs non-accepting (dead is non-accepting).
    block_of = [1 if state in dfa.accepts else 0 for state in range(dfa.num_states)]
    block_of.append(0)

    changed = True
    while changed:
        changed = False
        signature_to_block: dict[tuple, int] = {}
        new_block_of = [0] * total
        for state in range(total):
            signature = (
                block_of[state],
                tuple(block_of[target(state, label)] for label in labels),
            )
            block = signature_to_block.get(signature)
            if block is None:
                block = len(signature_to_block)
                signature_to_block[signature] = block
            new_block_of[state] = block
        if new_block_of != block_of:
            block_of = new_block_of
            changed = True

    dead_block = block_of[dead]
    # Renumber the surviving blocks, start block first is not required here
    # (canonical_key does its own BFS renumbering).
    kept_blocks = sorted({b for b in block_of if b != dead_block})
    renumber = {block: i for i, block in enumerate(kept_blocks)}

    num_states = len(kept_blocks)
    rows: list[dict[str, int]] = [{} for _ in range(num_states)]
    accepts: set[int] = set()
    for state in range(dfa.num_states):
        block = block_of[state]
        if block == dead_block:
            continue
        new_id = renumber[block]
        if state in dfa.accepts:
            accepts.add(new_id)
        for label in labels:
            t = target(state, label)
            if block_of[t] != dead_block:
                rows[new_id][label] = renumber[block_of[t]]

    start_block = block_of[dfa.start]
    if start_block == dead_block:
        # Empty language: a single non-accepting start state.
        return DFA(num_states=1, start=0, accepts=frozenset(), delta=({},))
    return DFA(
        num_states=num_states,
        start=renumber[start_block],
        accepts=frozenset(accepts),
        delta=tuple(rows),
    )


def canonical_key(query: str | RegexNode) -> str:
    """A string that is identical for two regexes iff languages are equal.

    BFS-renumbers the minimal DFA (labels visited in sorted order) and
    serialises transitions plus accepting states.
    """
    node = parse(query)
    dfa = minimize(determinize(compile_nfa(node)))

    order: dict[int, int] = {dfa.start: 0}
    queue: deque[int] = deque([dfa.start])
    entries: list[str] = []
    while queue:
        state = queue.popleft()
        for label in sorted(dfa.delta[state]):
            target = dfa.delta[state][label]
            if target not in order:
                order[target] = len(order)
                queue.append(target)
            entries.append(f"{order[state]}-{label}->{order[target]}")
    accepting = sorted(order[state] for state in dfa.accepts if state in order)
    return f"states={len(order)};accept={accepting};delta={';'.join(entries)}"


def languages_equal(first: str | RegexNode, second: str | RegexNode) -> bool:
    """True when the two regular path queries denote the same language."""
    return canonical_key(first) == canonical_key(second)
