"""Abstract syntax tree for regular path queries.

An RPQ is a regular expression over the edge-label alphabet Sigma (paper
Section II-B).  The AST mirrors the operators the paper uses:

* :class:`Label`    -- a single edge label (``a``);
* :class:`Concat`   -- concatenation (``A·B``);
* :class:`Union`    -- alternation (``A|B``), the disjunction the DNF
  conversion distributes;
* :class:`Plus`     -- Kleene plus (``A+``), paths of >= 1 repetition;
* :class:`Star`     -- Kleene star (``A*``), >= 0 repetitions;
* :class:`Optional` -- ``A?`` = ``epsilon | A`` (convenience; the DNF pass
  expands it into two clauses);
* :class:`Epsilon`  -- the empty word.

Nodes are immutable, hashable and comparable, so they can key caches (the
RTC cache keys on normalised sub-expressions).  ``to_string()`` produces a
minimally parenthesised form that re-parses to an equal tree; the test
suite round-trips random ASTs through the parser to guarantee it.
"""

from __future__ import annotations

from collections.abc import Iterator

__all__ = [
    "RegexNode",
    "Epsilon",
    "Label",
    "Concat",
    "Union",
    "Plus",
    "Star",
    "Optional",
    "EPSILON",
    "concat",
    "union",
    "iter_labels",
    "contains_closure",
]

# Precedence levels used for minimal parenthesisation.
_PREC_UNION = 0
_PREC_CONCAT = 1
_PREC_POSTFIX = 2


class RegexNode:
    """Base class of all RPQ AST nodes (immutable value objects)."""

    __slots__ = ()
    precedence: int = _PREC_POSTFIX

    def to_string(self) -> str:
        """Render with minimal parentheses; re-parses to an equal tree."""
        raise NotImplementedError

    def _wrapped(self, parent_precedence: int) -> str:
        text = self.to_string()
        if self.precedence < parent_precedence:
            return f"({text})"
        return text

    def __str__(self) -> str:
        return self.to_string()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_string()!r})"


class Epsilon(RegexNode):
    """The empty word; matches the zero-length path ``(v, v)``."""

    __slots__ = ()
    precedence = _PREC_POSTFIX

    def to_string(self) -> str:
        return "()"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Epsilon)

    def __hash__(self) -> int:
        return hash(Epsilon)


EPSILON = Epsilon()


class Label(RegexNode):
    """A single edge label drawn from the alphabet Sigma."""

    __slots__ = ("name",)
    precedence = _PREC_POSTFIX

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("label name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key: str, value: object) -> None:  # immutability
        raise AttributeError("Label nodes are immutable")

    def to_string(self) -> str:
        if name_is_plain(self.name):
            return self.name
        return f"<{self.name}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Label) and self.name == other.name

    def __hash__(self) -> int:
        return hash((Label, self.name))


def name_is_plain(name: str) -> bool:
    """True when a label can be written without ``<...>`` quoting."""
    if not name:
        return False
    first = name[0]
    if not (first.isalpha() or first == "_"):
        return False
    return all(ch.isalnum() or ch == "_" for ch in name)


class Concat(RegexNode):
    """Concatenation ``parts[0] · parts[1] · ...`` (>= 2 parts, flattened)."""

    __slots__ = ("parts",)
    precedence = _PREC_CONCAT

    def __init__(self, parts: tuple[RegexNode, ...]) -> None:
        if len(parts) < 2:
            raise ValueError("Concat requires at least two parts; use concat()")
        object.__setattr__(self, "parts", parts)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Concat nodes are immutable")

    def to_string(self) -> str:
        return ".".join(part._wrapped(_PREC_CONCAT) for part in self.parts)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Concat) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash((Concat, self.parts))


class Union(RegexNode):
    """Alternation ``alternatives[0] | alternatives[1] | ...`` (flattened)."""

    __slots__ = ("alternatives",)
    precedence = _PREC_UNION

    def __init__(self, alternatives: tuple[RegexNode, ...]) -> None:
        if len(alternatives) < 2:
            raise ValueError("Union requires at least two alternatives; use union()")
        object.__setattr__(self, "alternatives", alternatives)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Union nodes are immutable")

    def to_string(self) -> str:
        return "|".join(alt._wrapped(_PREC_UNION + 1) for alt in self.alternatives)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Union) and self.alternatives == other.alternatives

    def __hash__(self) -> int:
        return hash((Union, self.alternatives))


class _Postfix(RegexNode):
    """Shared machinery of the postfix operators ``+ * ?``."""

    __slots__ = ("body",)
    precedence = _PREC_POSTFIX
    symbol = "?"

    def __init__(self, body: RegexNode) -> None:
        object.__setattr__(self, "body", body)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("regex nodes are immutable")

    def to_string(self) -> str:
        return f"{self.body._wrapped(_PREC_POSTFIX)}{self.symbol}"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.body == other.body

    def __hash__(self) -> int:
        return hash((type(self), self.body))


class Plus(_Postfix):
    """Kleene plus ``A+``: one or more repetitions of ``A``."""

    __slots__ = ()
    symbol = "+"


class Star(_Postfix):
    """Kleene star ``A*``: zero or more repetitions of ``A``."""

    __slots__ = ()
    symbol = "*"


class Optional(_Postfix):
    """Option ``A?``: ``epsilon | A``."""

    __slots__ = ()
    symbol = "?"


def concat(*parts: RegexNode) -> RegexNode:
    """Smart concatenation: flattens, drops epsilons, handles 0/1 parts."""
    flattened: list[RegexNode] = []
    for part in parts:
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flattened.extend(part.parts)
        else:
            flattened.append(part)
    if not flattened:
        return EPSILON
    if len(flattened) == 1:
        return flattened[0]
    return Concat(tuple(flattened))


def union(*alternatives: RegexNode) -> RegexNode:
    """Smart alternation: flattens nested unions, dedupes, handles 1 alt."""
    flattened: list[RegexNode] = []
    seen: set[RegexNode] = set()
    for alternative in alternatives:
        items = (
            alternative.alternatives
            if isinstance(alternative, Union)
            else (alternative,)
        )
        for item in items:
            if item not in seen:
                seen.add(item)
                flattened.append(item)
    if not flattened:
        raise ValueError("union() requires at least one alternative")
    if len(flattened) == 1:
        return flattened[0]
    return Union(tuple(flattened))


def iter_labels(node: RegexNode) -> Iterator[str]:
    """Yield every label name occurring in the expression (with repeats)."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Label):
            yield current.name
        elif isinstance(current, Concat):
            stack.extend(current.parts)
        elif isinstance(current, Union):
            stack.extend(current.alternatives)
        elif isinstance(current, _Postfix):
            stack.append(current.body)


def contains_closure(node: RegexNode) -> bool:
    """True when the expression contains a Kleene closure (``+`` or ``*``).

    ``A?`` does not count: the DNF conversion expands it rather than
    treating it as a closure literal.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (Plus, Star)):
            return True
        if isinstance(current, Concat):
            stack.extend(current.parts)
        elif isinstance(current, Union):
            stack.extend(current.alternatives)
        elif isinstance(current, Optional):
            stack.append(current.body)
    return False
