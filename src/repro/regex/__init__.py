"""Regular-expression substrate for regular path queries.

Public surface:

* AST node classes and smart constructors (:class:`Label`, :class:`Concat`,
  :class:`Union`, :class:`Plus`, :class:`Star`, :class:`Optional`,
  :data:`EPSILON`, :func:`concat`, :func:`union`);
* :func:`parse` -- the textual RPQ syntax (``a.(b.c)+.c``);
* automata: :func:`thompson` (epsilon-NFA), :func:`compile_nfa`
  (epsilon-free :class:`LabelNFA`), :func:`determinize`, :func:`minimize`;
* :func:`canonical_key` / :func:`languages_equal` -- language-level
  equality used for semantic RTC-cache sharing.
"""

from repro.regex.ast import (
    EPSILON,
    Concat,
    Epsilon,
    Label,
    Optional,
    Plus,
    RegexNode,
    Star,
    Union,
    concat,
    contains_closure,
    iter_labels,
    union,
)
from repro.regex.dfa import DFA, canonical_key, determinize, languages_equal, minimize
from repro.regex.nfa import EpsilonNFA, LabelNFA, compile_nfa, thompson
from repro.regex.parser import parse, tokenize
from repro.regex.simplify import is_nullable_ast, simplify

__all__ = [
    "RegexNode",
    "Epsilon",
    "Label",
    "Concat",
    "Union",
    "Plus",
    "Star",
    "Optional",
    "EPSILON",
    "concat",
    "union",
    "iter_labels",
    "contains_closure",
    "parse",
    "tokenize",
    "EpsilonNFA",
    "LabelNFA",
    "thompson",
    "compile_nfa",
    "DFA",
    "determinize",
    "minimize",
    "canonical_key",
    "languages_equal",
    "simplify",
    "is_nullable_ast",
]
