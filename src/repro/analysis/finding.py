"""The :class:`Finding` model -- one rule violation at one source location.

Findings are value objects: rules create them, the engine filters them
through the suppression table, and the CLI renders the survivors either
as ``file:line: RPRxxx message`` lines (the human form, one per finding,
stable-sorted by location) or as the JSON document CI uploads as an
artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One violation of one rule at one location.

    ``severity`` is ``"error"`` (contract violation) or ``"warning"``
    (hygiene/meta finding, e.g. an unused suppression); ``repro lint``
    exits non-zero on *any* unsuppressed finding either way -- severity
    is reporting metadata, not an escape hatch.
    """

    rule: str
    path: str
    line: int
    message: str
    col: int = 0
    severity: str = "error"
    #: Extra machine-readable context (offending name, cycle, ...).
    detail: dict = field(default_factory=dict, compare=False, hash=False)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        document = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }
        if self.detail:
            document["detail"] = self.detail
        return document


def sort_findings(findings: list) -> list:
    """Stable report order: by file, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
