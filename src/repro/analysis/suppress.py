"""Inline suppressions: ``# repro: noqa[RPR101] -- rationale``.

A suppression silences the named rules *on its own physical line* (the
line a finding anchors to -- for a multi-line statement that is the
statement's first line).  The codes are explicit on purpose: a blanket
``# repro: noqa`` is not accepted, because a suppression that does not
name what it hides also hides what it was never meant to.

The engine tracks which suppressions actually matched a finding; ones
that matched nothing are reported as ``RPR000`` warnings, so stale
suppressions cannot linger after the code they excused is fixed.  A
suppression without a trailing rationale (free text after the bracket,
conventionally ``-- why``) is also an ``RPR000``: the reviewer of the
*next* edit to that line needs to know what was being excused.

Comment scanning uses :mod:`tokenize`, not substring search, so the
marker inside a string literal does not suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.analysis.finding import Finding

__all__ = ["Suppression", "scan_suppressions", "apply_suppressions"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[A-Z0-9,\s]+)\]\s*(?P<rationale>.*)$"
)


class Suppression:
    """One ``# repro: noqa[...]`` comment on one line."""

    __slots__ = ("path", "line", "codes", "rationale", "used")

    def __init__(self, path: str, line: int, codes: tuple, rationale: str) -> None:
        self.path = path
        self.line = line
        self.codes = codes
        self.rationale = rationale
        self.used = False

    def matches(self, finding: Finding) -> bool:
        return finding.line == self.line and finding.rule in self.codes


def scan_suppressions(module) -> list:
    """All suppression comments of one module, in line order."""
    suppressions: list = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(module.source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        # The AST parsed but tokenize choked (rare); treat as no comments.
        return []
    for token in comments:
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        codes = tuple(
            code.strip()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        rationale = match.group("rationale").strip().lstrip("-: ").strip()
        suppressions.append(
            Suppression(
                path=str(module.path),
                line=token.start[0],
                codes=codes,
                rationale=rationale,
            )
        )
    return suppressions


def apply_suppressions(
    findings: list, suppressions: list, warn_unused: bool = True
) -> list:
    """Filter suppressed findings; append RPR000 meta-warnings.

    ``warn_unused=False`` skips the unused-suppression warnings -- the
    engine sets it when running a rule *subset* (``--select``/
    ``--ignore``), where a suppression for an unselected rule is not
    evidence of staleness.
    """
    kept: list = []
    by_line: dict = {}
    for suppression in suppressions:
        by_line.setdefault((suppression.path, suppression.line), []).append(
            suppression
        )
    for finding in findings:
        matched = False
        for suppression in by_line.get((finding.path, finding.line), ()):
            if suppression.matches(finding):
                suppression.used = True
                matched = True
        if not matched:
            kept.append(finding)
    if warn_unused:
        for suppression in suppressions:
            if not suppression.used:
                kept.append(
                    Finding(
                        rule="RPR000",
                        path=suppression.path,
                        line=suppression.line,
                        severity="warning",
                        message=(
                            "unused suppression "
                            f"[{', '.join(suppression.codes)}]: no such "
                            "finding on this line -- remove the comment"
                        ),
                    )
                )
            elif not suppression.rationale:
                kept.append(
                    Finding(
                        rule="RPR000",
                        path=suppression.path,
                        line=suppression.line,
                        severity="warning",
                        message=(
                            "suppression without a rationale: say why, "
                            "e.g. # repro: noqa[RPR601] -- wall-clock "
                            "log timestamp"
                        ),
                    )
                )
    return kept
