"""Repo-specific static analysis: ``repro lint``.

Six PRs of growth piled up invariants that were stated only in
docstrings and defended only by end-to-end tests: the lock contracts of
:mod:`repro.core.cache` and :mod:`repro.db.session`, the "no blocking
calls on the asyncio router path" rule, the "ack => WAL append + fsync
first" durability contract, the structured error-code strings of the
wire protocol, and the span/metric/phase name registry of
:mod:`repro.obs`.  This package is the stdlib-only (``ast`` +
``tokenize``) checker that turns each of those contracts into a
machine-enforced rule, wired into CI as a blocking job.

Layers
------
* :mod:`repro.analysis.project`  -- the project loader: walks the given
  paths, parses every module once, and exposes the module set to rules.
* :mod:`repro.analysis.base`     -- the :class:`Rule` API (per-rule id,
  severity, rationale; per-module ``check`` plus cross-module
  ``collect``/``finalize`` for whole-project rules) and the registry.
* :mod:`repro.analysis.finding`  -- the :class:`Finding` model, rendered
  as ``file:line: RPRxxx message`` text or as JSON.
* :mod:`repro.analysis.suppress` -- inline ``# repro: noqa[RPR101]``
  suppressions, with an unused-suppression warning (``RPR000``).
* :mod:`repro.analysis.engine`   -- orchestration: run the selected
  rules over a loaded project and apply suppressions.
* :mod:`repro.analysis.rules`    -- the rule pack (RPR1xx lock
  discipline, RPR2xx async hygiene, RPR3xx wire/error registry, RPR4xx
  durability, RPR5xx observability names, RPR6xx monotonic time, RPR7xx
  exception hygiene).

Entry points: ``repro lint [PATHS]`` on the command line, or
:func:`run_lint` programmatically (the meta-test in ``tests/analysis``
asserts the repo's own tree lints clean).
"""

from __future__ import annotations

from repro.analysis.base import Rule, all_rules, get_rule, register_rule
from repro.analysis.engine import LintResult, run_lint
from repro.analysis.finding import Finding
from repro.analysis.project import Module, Project, load_project

__all__ = [
    "Finding",
    "LintResult",
    "Module",
    "Project",
    "Rule",
    "all_rules",
    "get_rule",
    "load_project",
    "register_rule",
    "run_lint",
]
