"""The :class:`Rule` API and the rule registry.

A rule is a class with identity metadata (``id`` like ``RPR101``,
``name``, ``severity``, ``rationale`` -- what ``--explain`` prints) and
up to three hooks, all optional:

* ``check(module)``   -- per-module analysis; returns findings.
* ``collect(module)`` -- first pass of a cross-module rule; accumulate
  state on ``self`` (each run instantiates fresh rule objects, so
  instance state is run-local).
* ``finalize(project)`` -- second pass; returns findings computed from
  the collected whole-project state (registries, lock-order graphs).

Rules self-register via :func:`register_rule`; the engine instantiates
the selected subset per run.
"""

from __future__ import annotations

from repro.analysis.finding import Finding

__all__ = ["Rule", "register_rule", "all_rules", "get_rule"]

_REGISTRY: dict = {}


class Rule:
    """Base class; subclass, set the metadata, implement the hooks."""

    #: Stable rule id (``RPRxxx``); the suppression/selection key.
    id = "RPR999"
    #: Short human name for listings.
    name = "unnamed rule"
    #: ``"error"`` or ``"warning"`` -- reporting metadata only.
    severity = "error"
    #: The contract this rule enforces and why it exists (``--explain``).
    rationale = ""

    def check(self, module) -> list:
        return []

    def collect(self, module) -> None:
        return None

    def finalize(self, project) -> list:
        return []

    # -- convenience -----------------------------------------------------
    def finding(self, module, node, message: str, **detail) -> Finding:
        """A finding of this rule anchored at ``node`` in ``module``."""
        return Finding(
            rule=self.id,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=self.severity,
            message=message,
            detail=detail,
        )


def register_rule(cls):
    """Class decorator adding a rule to the registry (id-unique)."""
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict:
    """``{rule_id: rule_class}`` -- importing the pack fills this."""
    import repro.analysis.rules  # noqa: F401 -- registration side effect

    return dict(_REGISTRY)


def get_rule(rule_id: str):
    """The rule class for ``rule_id`` (``None`` when unknown)."""
    return all_rules().get(rule_id)
