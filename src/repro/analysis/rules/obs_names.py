"""RPR5xx -- observability name registry.

Dashboards, the forensics CLI (``repro trace``/``repro explain``), and
``phase_totals`` all key on *string* span/metric/phase names; a typo'd
name at an instrumentation site silently produces an empty panel.  PR 9
introduces :mod:`repro.obs.names` as the declared registry
(``SPAN_NAMES``, ``METRIC_NAMES``, ``PHASE_KEYS``); ``RPR501`` checks
every name *literal* at an instrumentation site against it.

Only literals are checked -- a name computed at runtime (e.g. the
scheduler's ``_PHASE_NAMES`` lookup) is out of static reach and is
skipped, not guessed at.  The registry is read from a ``names.py``
module in the linted set when present (fixtures), falling back to the
shipped :mod:`repro.obs.names`.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import dotted_source, string_const
from repro.analysis.base import Rule, register_rule

__all__ = ["ObsNameRule"]

_METRIC_METHODS = {"counter", "gauge", "histogram"}
_REGISTRY_VARS = ("SPAN_NAMES", "METRIC_NAMES", "PHASE_KEYS")


def _declared_sets(module) -> dict | None:
    """``{var: set}`` for the registry assignments of a ``names.py``."""
    declared: dict = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (
                isinstance(target, ast.Name) and target.id in _REGISTRY_VARS
            ):
                continue
            value = node.value
            if isinstance(value, ast.Call) and value.args:
                value = value.args[0]  # frozenset({...})
            if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
                names = {
                    name
                    for name in map(string_const, value.elts)
                    if name is not None
                }
                declared[target.id] = declared.get(target.id, set()) | names
    return declared or None


def _span_literal(call: ast.Call):
    """The span-name literal of a tracer/ambient call, if any."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "ambient_span":
        pass
    elif isinstance(func, ast.Attribute) and func.attr in {"begin", "span"}:
        pass  # begin/span are tracer-specific names in this codebase
    elif isinstance(func, ast.Attribute) and func.attr == "record":
        # .record is generic (the slow-query log has one too): only
        # tracer-ish receivers count -- `tracer.record`, `self._tracer
        # .record`, or the `trace[0].record` tuple-unpacked form.
        receiver = (dotted_source(func.value) or "").lower()
        if "tracer" not in receiver and not isinstance(
            func.value, ast.Subscript
        ):
            return None
    else:
        return None
    if call.args:
        return string_const(call.args[0])
    return None


def _metric_literal(call: ast.Call):
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr in _METRIC_METHODS):
        return None
    if call.args:
        return string_const(call.args[0])
    return None


def _phase_literals(node):
    """Phase-key literals: ``phase="x"`` keywords and ``{"phase": "x"}``
    dict entries."""
    if isinstance(node, ast.Call):
        for keyword in node.keywords:
            if keyword.arg == "phase":
                phase = string_const(keyword.value)
                if phase is not None:
                    yield phase
    elif isinstance(node, ast.Dict):
        for key, value in zip(node.keys, node.values):
            if string_const(key) == "phase":
                phase = string_const(value)
                if phase is not None:
                    yield phase


@register_rule
class ObsNameRule(Rule):
    id = "RPR501"
    name = "span/metric/phase name missing from repro.obs.names"
    rationale = (
        "Traces, metrics dashboards, and phase_totals key on string "
        "names; a typo at an instrumentation site produces an empty "
        "panel, not an error.  Every literal span name (tracer.begin/"
        "span/record, ambient_span), metric name (counter/gauge/"
        "histogram), and phase key must be declared in repro.obs.names."
    )

    def __init__(self) -> None:
        self._declared: dict | None = None
        self._uses: list = []  # (kind, name, module, node)

    def collect(self, module) -> None:
        if module.path.name == "names.py":
            declared = _declared_sets(module)
            if declared:
                merged = self._declared or {}
                for var, names in declared.items():
                    merged[var] = merged.get(var, set()) | names
                self._declared = merged
        if module.name == "repro.obs.names":
            return  # the registry itself is not an instrumentation site
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                span = _span_literal(node)
                if span is not None:
                    self._uses.append(("SPAN_NAMES", span, module, node))
                metric = _metric_literal(node)
                if metric is not None:
                    self._uses.append(("METRIC_NAMES", metric, module, node))
            for phase in _phase_literals(node):
                self._uses.append(("PHASE_KEYS", phase, module, node))

    def finalize(self, project) -> list:
        declared = self._declared
        if declared is None:
            try:
                from repro.obs import names as shipped
            except ImportError:
                return []
            declared = {
                "SPAN_NAMES": set(shipped.SPAN_NAMES),
                "METRIC_NAMES": set(shipped.METRIC_NAMES),
                "PHASE_KEYS": set(shipped.PHASE_KEYS),
            }
        labels = {
            "SPAN_NAMES": "span name",
            "METRIC_NAMES": "metric name",
            "PHASE_KEYS": "phase key",
        }
        findings: list = []
        for kind, name, module, node in self._uses:
            known = declared.get(kind)
            if known is None or name in known:
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    f"{labels[kind]} {name!r} is not declared in "
                    f"repro.obs.names.{kind}; declare it or fix the typo",
                    kind=kind,
                    name=name,
                )
            )
        return findings
