"""RPR8xx -- bit-parallel kernel discipline.

PR 10 moved the RPQ/RTC hot paths onto :mod:`repro.bitset`: pair
relations travel as :class:`~repro.bitset.PairBitmap` rows (one big-int
per source) and only materialise ``(source, target)`` tuples at the
API boundary.  A ``set[tuple[...]]`` accumulator re-introduced inside
``repro/rpq`` or ``repro/relalg`` silently reverts a hot path to
per-pair hashing and tuple allocation -- it still answers correctly,
so nothing but a profile would catch it.

``RPR801`` flags pair-set construction in those two packages: the
``pairs: set[tuple[...]] = ...`` accumulator pattern, set
comprehensions yielding tuples, and ``set(...)``/``frozenset(...)``
over a tuple-yielding comprehension.  Deliberate materialisation (the
set-kernel ablation baseline, declared API surfaces) is fine --
suppress with ``# repro: noqa[RPR801] -- <why tuples here>`` so the
next reader knows the allocation is intentional, not a regression.

Files are recognised by a ``rpq``/``relalg`` path *part* (directory
name), so the rule works on fixture corpora as well as the real tree.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Rule, register_rule

__all__ = ["PairSetRule"]

_HOT_PACKAGES = {"rpq", "relalg"}


def _names_type(node: ast.AST, name: str) -> bool:
    """Does this annotation node name ``set``/``tuple`` (any casing)?"""
    if isinstance(node, ast.Name):
        return node.id.lower() == name
    if isinstance(node, ast.Attribute):  # typing.Set / typing.Tuple
        return node.attr.lower() == name
    return False


def _is_pair_set_annotation(annotation: ast.AST) -> bool:
    """True for ``set[tuple[...]]`` (and ``frozenset``/``Set`` spellings)."""
    if not isinstance(annotation, ast.Subscript):
        return False
    if not (
        _names_type(annotation.value, "set")
        or _names_type(annotation.value, "frozenset")
    ):
        return False
    inner = annotation.slice
    if isinstance(inner, ast.Subscript):
        return _names_type(inner.value, "tuple")
    return _names_type(inner, "tuple")


def _yields_tuples(comprehension: ast.AST) -> bool:
    """Does this comprehension/generator produce tuple elements?"""
    elt = getattr(comprehension, "elt", None)
    if isinstance(elt, ast.Tuple):
        return True
    return (
        isinstance(elt, ast.Call)
        and isinstance(elt.func, ast.Name)
        and elt.func.id == "tuple"
    )


@register_rule
class PairSetRule(Rule):
    id = "RPR801"
    name = "pair-set construction on a bitmap hot path"
    rationale = (
        "repro/rpq and repro/relalg hot paths carry pair relations as "
        "PairBitmap rows (big-int per source, word-parallel union/"
        "intersect); a set[tuple[...]] accumulator there reverts to "
        "per-pair hashing and tuple allocation without failing any "
        "correctness test.  Keep relations packed until the API "
        "boundary, or suppress with `# repro: noqa[RPR801] -- <why "
        "tuples here>` where materialisation is deliberate (the "
        "set-kernel ablation baseline, declared output surfaces)."
    )

    def check(self, module) -> list:
        if _HOT_PACKAGES.isdisjoint(module.path.parts):
            return []
        findings: list = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AnnAssign) and _is_pair_set_annotation(
                node.annotation
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "set[tuple[...]] accumulator on a bitmap hot "
                        "path; build a PairBitmap (repro.bitset) and "
                        "materialise tuples only at the API boundary",
                    )
                )
            elif isinstance(node, ast.SetComp) and _yields_tuples(node):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "set comprehension materialises vertex tuples "
                        "on a bitmap hot path; keep the relation as "
                        "PairBitmap rows instead",
                    )
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"set", "frozenset"}
                and len(node.args) == 1
                and isinstance(node.args[0], (ast.GeneratorExp, ast.ListComp))
                and _yields_tuples(node.args[0])
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{node.func.id}() over a tuple generator "
                        "materialises a pair set on a bitmap hot path; "
                        "keep the relation as PairBitmap rows instead",
                    )
                )
        return findings
