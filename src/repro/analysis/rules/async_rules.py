"""RPR2xx -- async hygiene.

The server's event loop (``server/service.py``) and the cluster router
(``cluster/service.py``) are single-threaded asyncio loops; one
blocking call in a coroutine stalls every connected client.  The repo
contract is that anything blocking runs through ``_in_executor`` (or
``loop.run_in_executor``) -- the coroutine only ever *references* the
blocking callable, it never calls it on the loop.

``RPR201`` flags direct calls to known-blocking APIs in ``async def``
bodies.  The walk stops at nested functions and lambdas, so a blocking
call inside a closure handed to an executor is (correctly) exempt.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import call_name, dotted_source, walk_function_body
from repro.analysis.base import Rule, register_rule

__all__ = ["AsyncBlockingCallRule"]

#: Exact dotted names that block the calling thread.
_BLOCKING_CALLS = {
    "time.sleep",
    "os.fsync",
    "os.fdatasync",
    "open",
    "io.open",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "socket.socket",
    "socket.getaddrinfo",
    "socket.gethostbyname",
    "selectors.DefaultSelector",
}

#: Prefixes that are blocking wholesale.
_BLOCKING_PREFIXES = ("subprocess.", "socket.")


def _is_blocking(resolved: str | None) -> bool:
    if resolved is None:
        return False
    if resolved in _BLOCKING_CALLS:
        return True
    return resolved.startswith(_BLOCKING_PREFIXES)


def _blocking_method(call: ast.Call) -> str | None:
    """Blocking *method* patterns: ``.submit(...).result()`` and
    ``<queue-ish>.get()`` / ``.join()``."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "result" and isinstance(func.value, ast.Call):
        inner = func.value.func
        if isinstance(inner, ast.Attribute) and inner.attr == "submit":
            return ".submit(...).result() blocks until the future resolves"
    if func.attr in {"get", "join"}:
        receiver = dotted_source(func.value) or ""
        if "queue" in receiver.lower():
            # queue.Queue.get(block=False) / get_nowait() don't block.
            for keyword in call.keywords:
                if (
                    keyword.arg == "block"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False
                ):
                    return None
            return f"{receiver}.{func.attr}() blocks the event loop"
    return None


@register_rule
class AsyncBlockingCallRule(Rule):
    id = "RPR201"
    name = "blocking call in async def body"
    rationale = (
        "The query server and cluster router are single-threaded asyncio "
        "loops; a blocking call (time.sleep, sync socket/file I/O, "
        "os.fsync, subprocess, blocking queue.get, .result() on a "
        "just-submitted future) in a coroutine stalls every connected "
        "client at once.  Route blocking work through _in_executor / "
        "loop.run_in_executor -- pass the callable, don't call it."
    )

    def check(self, module) -> list:
        findings: list = []
        for function in ast.walk(module.tree):
            if not isinstance(function, ast.AsyncFunctionDef):
                continue
            for node in walk_function_body(function):
                if not isinstance(node, ast.Call):
                    continue
                resolved = call_name(node, module.imports)
                message = None
                if _is_blocking(resolved):
                    message = f"{resolved}() blocks the event loop"
                else:
                    message = _blocking_method(node)
                if message is not None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"{message} (inside async def "
                            f"{function.name}; route it through "
                            f"_in_executor)",
                            coroutine=function.name,
                        )
                    )
        return findings
