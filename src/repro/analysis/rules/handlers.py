"""RPR7xx -- exception hygiene.

A broad ``except Exception:`` that swallows is how bugs become silent
wrong answers: the connection loop *must* catch everything (never kill
the socket on one bad request), but a warm-up path that hides a
``TypeError`` behind ``except Exception: pass`` just moves the crash
three calls downstream.  ``RPR701`` flags broad handlers -- bare
``except:``, ``except Exception:``, ``except BaseException:`` -- that
do not re-raise.  Handlers whose body contains a bare ``raise`` are
exempt (catch-log-reraise is the *good* broad pattern, e.g. the
partial-update path in ``db/session.py``).  The deliberate broad
catches at the serving boundary carry ``# repro: noqa[RPR701]`` with
their rationale.
"""

from __future__ import annotations

import ast

from repro.analysis.base import Rule, register_rule

__all__ = ["BroadExceptRule"]

_BROAD = {"Exception", "BaseException"}


def _broad_names(handler: ast.ExceptHandler) -> list:
    """The broad exception names this handler catches (possibly [])."""
    if handler.type is None:
        return ["bare except"]
    candidates = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return [
        f"except {node.id}"
        for node in candidates
        if isinstance(node, ast.Name) and node.id in _BROAD
    ]


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


@register_rule
class BroadExceptRule(Rule):
    id = "RPR701"
    name = "broad exception handler that does not re-raise"
    severity = "warning"
    rationale = (
        "except Exception / bare except without a re-raise converts "
        "bugs into silent wrong behaviour.  Catch the specific types a "
        "path can actually raise (usually ReproError subclasses); the "
        "few legitimate catch-alls (connection loops, thread mains) "
        "re-raise or carry a `# repro: noqa[RPR701] -- <why>`."
    )

    def check(self, module) -> list:
        findings: list = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_names(node)
            if not broad or _reraises(node):
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    f"{broad[0]} without re-raise -- catch the specific "
                    f"types this path raises, or suppress with the "
                    f"reason this boundary must never propagate",
                )
            )
        return findings
