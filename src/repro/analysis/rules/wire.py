"""RPR3xx -- wire-protocol and error-code registries.

The JSON-lines protocol has two sides that can drift independently:
clients (``server/client.py``, ``cluster/backends.py``) construct
``{"op": <verb>}`` requests, and servers (``server/service.py``,
``cluster/worker.py``) dispatch on ``self._handlers`` dict keys.  A
verb added on one side but not the other fails only at runtime, with a
``bad_request`` error three hops away from the typo.

``RPR301`` cross-references the two sides (plus the declared ``VERBS``
tuple in ``server/protocol.py``): every constructed verb must have a
handler, every handler key must have a constructor.

``RPR302`` does the same for error codes: every ``code="..."``
raised or assigned on an exception must be declared in the canonical
``ERROR_CODES`` registry in ``errors.py`` -- that registry is what the
client-side ``exception_from_payload`` rehydration is tested against,
so an undeclared code is an error the client cannot reconstruct.

Files are recognised by basename (``client.py``, ``backends.py``,
``service.py``, ``worker.py``, ``protocol.py``, ``errors.py``), so the
rules work on fixture corpora as well as the real tree.  WAL record
shapes (``storage/recovery.py`` ``{"op": "update"}``, the router log's
``{"op": "route"}``) are *storage* formats, not wire verbs -- scoping
senders to client basenames is what keeps them out.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import string_const
from repro.analysis.base import Rule, register_rule

__all__ = ["WireVerbRule", "ErrorCodeRule"]

_SENDER_FILES = {"client.py", "backends.py"}
_HANDLER_FILES = {"service.py", "worker.py"}


def _dict_entries(node: ast.Dict):
    for key, value in zip(node.keys, node.values):
        yield string_const(key), value


def _sent_verbs(module):
    """``(verb, node)`` for every wire request this module constructs."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Dict):
            for key, value in _dict_entries(node):
                if key == "op":
                    verb = string_const(value)
                    if verb is not None:
                        yield verb, node
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "call"
            and node.args
        ):
            verb = string_const(node.args[0])
            if verb is not None:
                yield verb, node


def _handled_verbs(module):
    """``(verb, node)`` for every ``self._handlers = {...}`` key."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Dict
        ):
            continue
        for target in node.targets:
            named = (
                isinstance(target, ast.Attribute) and target.attr == "_handlers"
            ) or (isinstance(target, ast.Name) and target.id == "_handlers")
            if not named:
                continue
            for key, _value in _dict_entries(node.value):
                if key is not None:
                    yield key, node


def _declared_verbs(module):
    """The ``VERBS`` tuple of a ``protocol.py`` module."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "VERBS"
            for target in node.targets
        ):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
            for element in node.value.elts:
                verb = string_const(element)
                if verb is not None:
                    yield verb, node


@register_rule
class WireVerbRule(Rule):
    id = "RPR301"
    name = "wire verb without a matching handler/constructor"
    rationale = (
        "Clients construct {'op': <verb>} requests and servers dispatch "
        "on _handlers keys; the two drift independently and a mismatch "
        "only surfaces as a runtime bad_request.  Every constructed verb "
        "needs a handler, every handler key needs a constructor, and "
        "both must appear in protocol.VERBS when it is declared."
    )

    def __init__(self) -> None:
        self._sent: dict = {}  # verb -> first (module, node)
        self._handled: dict = {}
        self._declared: dict = {}

    def collect(self, module) -> None:
        basename = module.path.name
        if basename in _SENDER_FILES:
            for verb, node in _sent_verbs(module):
                self._sent.setdefault(verb, (module, node))
        if basename in _HANDLER_FILES:
            for verb, node in _handled_verbs(module):
                self._handled.setdefault(verb, (module, node))
        if basename == "protocol.py":
            for verb, node in _declared_verbs(module):
                self._declared.setdefault(verb, (module, node))

    def finalize(self, project) -> list:
        findings: list = []
        # Only cross-reference when both sides are in the linted set --
        # linting client.py alone must not report every verb unhandled.
        if self._sent and self._handled:
            for verb in sorted(set(self._sent) - set(self._handled)):
                module, node = self._sent[verb]
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"wire verb {verb!r} is constructed here but no "
                        f"_handlers entry in service.py/worker.py "
                        f"dispatches it",
                        verb=verb,
                    )
                )
            for verb in sorted(set(self._handled) - set(self._sent)):
                module, node = self._handled[verb]
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"handler for verb {verb!r} is registered here "
                        f"but no client (client.py/backends.py) ever "
                        f"constructs it",
                        verb=verb,
                    )
                )
        if self._declared:
            for verb in sorted(set(self._sent) - set(self._declared)):
                module, node = self._sent[verb]
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"wire verb {verb!r} is constructed here but "
                        f"missing from protocol.VERBS",
                        verb=verb,
                    )
                )
        return findings


def _used_codes(module):
    """``(code, node)`` for every error-code literal this module uses.

    Three shapes: ``code="x"`` call keywords (exception constructors),
    ``<something>.code = "x"`` attribute assigns (post-hoc tagging), and
    -- in ``errors.py``/``protocol.py`` only -- bare ``code = "x"``
    name assigns (class attributes, ``error_payload`` locals).  The
    name-assign shape is scoped because ``code`` is too common a local
    elsewhere.
    """
    scan_names = module.path.name in {"errors.py", "protocol.py"}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "code":
                    code = string_const(keyword.value)
                    if code is not None:
                        yield code, node
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            code = string_const(node.value)
            if code is None:
                continue
            if isinstance(target, ast.Attribute) and target.attr == "code":
                yield code, node
            elif (
                scan_names
                and isinstance(target, ast.Name)
                and target.id == "code"
            ):
                yield code, node


def _registry_codes(module):
    """String keys/members of ``ERROR_CODES`` in an ``errors.py``."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "ERROR_CODES"
            for target in node.targets
        ):
            continue
        value = node.value
        if isinstance(value, ast.Dict):
            for key, _entry in _dict_entries(value):
                if key is not None:
                    yield key
        elif isinstance(value, ast.Call) and value.args:
            # frozenset({...}) / frozenset((...)) wrapper.
            value = value.args[0]
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            for element in value.elts:
                code = string_const(element)
                if code is not None:
                    yield code


@register_rule
class ErrorCodeRule(Rule):
    id = "RPR302"
    name = "error code missing from the ERROR_CODES registry"
    rationale = (
        "exception_from_payload rehydrates wire errors by their string "
        "code; a code raised somewhere but absent from "
        "errors.ERROR_CODES reaches the client as an exception it "
        "cannot classify.  Declare every code (with its meaning) in the "
        "registry -- the round-trip test covers exactly that set."
    )

    def __init__(self) -> None:
        self._registry: set | None = None
        self._uses: list = []  # (code, module, node)

    def collect(self, module) -> None:
        if module.path.name == "errors.py":
            declared = set(_registry_codes(module))
            if declared:
                self._registry = (self._registry or set()) | declared
        for code, node in _used_codes(module):
            self._uses.append((code, module, node))

    def finalize(self, project) -> list:
        registry = self._registry
        if registry is None:
            # No in-project registry (partial lint of a few files):
            # fall back to the shipped canonical one.
            try:
                from repro.errors import ERROR_CODES
            except ImportError:
                return []
            registry = set(ERROR_CODES)
        findings: list = []
        for code, module, node in self._uses:
            if code not in registry:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"error code {code!r} is not declared in "
                        f"errors.ERROR_CODES; add it (with its meaning) "
                        f"so clients can rehydrate it",
                        code=code,
                    )
                )
        return findings
