"""RPR6xx -- monotonic time.

``time.time()`` is wall-clock: NTP steps it backwards and forwards
under you, so elapsed-time arithmetic on it produces negative latencies
and phantom slow queries.  The repo contract: *durations* come from
``time.monotonic()``/``time.perf_counter()``; ``time.time()`` is for
*timestamps* that leave the process (span start epochs, slow-log
records, WAL metadata) -- and each such site carries a
``# repro: noqa[RPR601]`` with the rationale, making the intent
auditable at the call site.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import call_name
from repro.analysis.base import Rule, register_rule

__all__ = ["WallClockRule"]


@register_rule
class WallClockRule(Rule):
    id = "RPR601"
    name = "time.time() call (wall-clock; not for elapsed time)"
    rationale = (
        "time.time() is stepped by NTP; subtracting two readings can go "
        "negative or jump, corrupting latency metrics and deadline "
        "math.  Use time.monotonic()/time.perf_counter() for elapsed "
        "time.  Genuine wall-clock timestamps (epochs that leave the "
        "process in logs/WAL/spans) are fine -- suppress with "
        "`# repro: noqa[RPR601] -- <why this is a timestamp>`."
    )

    def check(self, module) -> list:
        findings: list = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node, module.imports) == "time.time":
                findings.append(
                    self.finding(
                        module,
                        node,
                        "time.time() is wall-clock; use time.monotonic()"
                        "/perf_counter() for elapsed time, or suppress "
                        "with a rationale if this is a genuine timestamp",
                    )
                )
        return findings
