"""RPR4xx -- durability: WAL before ack.

The storage contract (``repro.storage``, PR 7) is that an
acknowledged mutation is on disk: the WAL append (fsync'd) happens
before the mutating call returns to its caller.  Both live examples
follow one shape -- mutate in-memory state, then log:

* ``db/session.py`` ``_update_locked``: ``graph.add_edge`` /
  ``remove_edge`` then ``self._log_applied(...)`` on **every** exit
  path, including the partial-failure ``except`` path.
* ``cluster/service.py`` ``submit_update``: ``partition.assign`` /
  ``record_cut`` / ``discard_cut`` then ``self._router_wal.append``.

``RPR401`` enforces the shape: in a *storage-bound* class (one that
references ``self._storage`` or ``self._router_wal``), a method that
calls a graph/routing mutator must also call a logging API -- and must
not ``return`` between the first mutation and the first log call
(an early ack path that skips the append).  Methods named
``recover*``/``replay*``/``_recover*``/``_replay*`` are exempt: they
*apply* already-logged records, logging again would double them.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import dotted_source, is_self_attr
from repro.analysis.base import Rule, register_rule

__all__ = ["WalBeforeAckRule"]

#: Attribute-call names that mutate graph or routing state.
_MUTATORS = {"add_edge", "remove_edge", "assign", "record_cut", "discard_cut"}
#: Attribute-call names that log durably.
_LOGGERS = {"_log_applied", "log_update"}
#: ``.append``/``.sync``/``.checkpoint`` count as logging only on a
#: storage-ish receiver (``self._router_wal.append``, not
#: ``results.append``).
_RECEIVER_LOGGERS = {"append", "sync", "checkpoint", "commit"}
_STORAGE_ATTRS = {"_storage", "_router_wal", "_wal"}

_EXEMPT_PREFIXES = ("recover", "_recover", "replay", "_replay")


def _storage_bound(classdef: ast.ClassDef) -> bool:
    for node in ast.walk(classdef):
        if is_self_attr(node) and node.attr in _STORAGE_ATTRS:
            return True
    return False


def _is_logging_call(call: ast.Call) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr in _LOGGERS:
        return True
    if func.attr in _RECEIVER_LOGGERS:
        receiver = (dotted_source(func.value) or "").lower()
        return "wal" in receiver or "storage" in receiver or "_log" in receiver
    return False


def _is_mutator_call(call: ast.Call) -> bool:
    func = call.func
    return isinstance(func, ast.Attribute) and func.attr in _MUTATORS


@register_rule
class WalBeforeAckRule(Rule):
    id = "RPR401"
    name = "graph mutation without a WAL append before the ack"
    rationale = (
        "An acknowledged mutation must be on disk: storage-bound code "
        "mutates in-memory state and then appends to the WAL before "
        "returning (db/session.py _update_locked and cluster "
        "submit_update are the canonical shapes).  A mutating method "
        "with no log call -- or a return between the first mutation and "
        "the first append -- is an ack the recovery replay cannot "
        "reproduce.  recover*/replay* methods apply already-logged "
        "records and are exempt."
    )

    def check(self, module) -> list:
        findings: list = []
        for classdef in ast.walk(module.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            if not _storage_bound(classdef):
                continue
            for method in classdef.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name.startswith(_EXEMPT_PREFIXES):
                    continue
                mutators = []
                loggers = []
                returns = []
                for node in ast.walk(method):
                    if isinstance(node, ast.Call):
                        if _is_mutator_call(node):
                            mutators.append(node)
                        if _is_logging_call(node):
                            loggers.append(node)
                    elif isinstance(node, ast.Return):
                        returns.append(node)
                if not mutators:
                    continue
                if not loggers:
                    findings.append(
                        self.finding(
                            module,
                            mutators[0],
                            f"{classdef.name}.{method.name} mutates "
                            f"graph/routing state but never logs to the "
                            f"WAL -- an ack from here is not durable",
                            method=method.name,
                        )
                    )
                    continue
                first_mutation = min(node.lineno for node in mutators)
                first_log = min(node.lineno for node in loggers)
                for node in returns:
                    if first_mutation <= node.lineno < first_log:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"{classdef.name}.{method.name} returns "
                                f"after mutating (line {first_mutation}) "
                                f"but before the first WAL append (line "
                                f"{first_log}) -- early ack skips "
                                f"durability",
                                method=method.name,
                            )
                        )
        return findings
