"""RPR1xx -- lock discipline.

The repo's concurrency contracts (``core/cache.py``, ``db/session.py``,
the scheduler, the cluster router) all follow one convention: shared
mutable attributes are written under ``with self.<lock>:`` where the
lock attribute has ``lock`` in its name.  Two rules lean on exactly
that convention:

``RPR101`` (guarded attribute written without the lock)
    Any attribute that *some* method of a class assigns under a
    ``with``-lock is treated as lock-guarded; an assignment to it
    outside any ``with``-lock in the same class (``__init__``/
    ``__new__`` excepted -- pre-publication writes race with nobody) is
    a data-race candidate.  A write inside a closure defined under a
    lock does **not** count as locked: the closure runs later, when the
    ``with`` block is long gone.

``RPR102`` (lock-acquisition-order cycle)
    Builds the acquisition-order graph over every ``self.<lock>``
    attribute in the project: an edge ``A -> B`` when a ``with A:``
    body acquires ``B`` -- lexically, or through a same-class method
    call that acquires ``B`` at its top level.  A cycle in that graph
    is a deadlock candidate: two threads entering the cycle from
    different edges can block each other forever.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import is_self_attr, iter_methods, lock_attr_name
from repro.analysis.base import Rule, register_rule
from repro.analysis.finding import Finding

__all__ = ["LockGuardRule", "LockOrderRule"]

_PRE_PUBLICATION = {"__init__", "__new__", "__post_init__"}


def _assigned_self_attrs(node):
    """``self.<attr>`` targets of one assignment statement."""
    targets: list = []
    if isinstance(node, ast.Assign):
        raw = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        raw = [node.target]
    else:
        return targets
    stack = list(raw)
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif is_self_attr(target):
            targets.append(target)
    return targets


class _WriteCollector:
    """Attribute writes of one method, tagged locked/unlocked.

    The lock context is lexical *within the method*: entering a nested
    function or lambda resets it (deferred bodies do not inherit the
    ``with`` block they were defined in).
    """

    def __init__(self) -> None:
        self.writes: list = []  # (attr_name, node, locked)
        self.acquisitions: list = []  # (lock_name, with_node, held_stack)
        self.calls: list = []  # (method_name, held_stack)

    def visit(self, node, held: tuple) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            held = ()
        elif isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
            for item in node.items:
                lock = lock_attr_name(item.context_expr)
                if lock is not None:
                    self.acquisitions.append((lock, node, held))
                    held = held + (lock,)
        else:
            for target in _assigned_self_attrs(node):
                self.writes.append((target.attr, node, bool(held)))
            if (
                isinstance(node, ast.Call)
                and is_self_attr(node.func)
            ):
                self.calls.append((node.func.attr, held))
        for child in ast.iter_child_nodes(node):
            self.visit(child, held)


def _scan_class(classdef: ast.ClassDef) -> dict:
    """Per-method write/acquisition facts of one class."""
    facts: dict = {}
    for method in iter_methods(classdef):
        collector = _WriteCollector()
        for statement in method.body:
            collector.visit(statement, ())
        facts[method.name] = collector
    return facts


@register_rule
class LockGuardRule(Rule):
    id = "RPR101"
    name = "lock-guarded attribute written without its lock"
    rationale = (
        "An attribute some method writes under `with self.<lock>:` is "
        "shared mutable state; writing it elsewhere without the lock is "
        "a data race the GIL only hides, not prevents (interleavings "
        "between bytecodes, and read-modify-write like `+=`, still "
        "tear).  Writes in __init__ run before the object is shared and "
        "are exempt."
    )

    def check(self, module) -> list:
        findings: list = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            facts = _scan_class(node)
            guarded: set = set()
            for method_name, collector in facts.items():
                if method_name in _PRE_PUBLICATION:
                    continue
                for attr, _write, locked in collector.writes:
                    if locked:
                        guarded.add(attr)
            if not guarded:
                continue
            for method_name, collector in facts.items():
                if method_name in _PRE_PUBLICATION:
                    continue
                for attr, write, locked in collector.writes:
                    if attr in guarded and not locked:
                        findings.append(
                            self.finding(
                                module,
                                write,
                                f"{node.name}.{attr} is written under a "
                                f"lock elsewhere in this class but "
                                f"mutated here without one (method "
                                f"{method_name})",
                                attribute=attr,
                                method=method_name,
                            )
                        )
        return findings


@register_rule
class LockOrderRule(Rule):
    id = "RPR102"
    name = "lock-acquisition-order cycle (deadlock candidate)"
    rationale = (
        "If one code path takes lock A then B while another takes B "
        "then A, two threads can deadlock.  The acquisition-order graph "
        "over every `with self.<lock>:` site (including one level of "
        "same-class method calls) must stay acyclic."
    )

    def __init__(self) -> None:
        # edge (holder, acquired) -> first (module, node) witnessing it
        self._edges: dict = {}

    def collect(self, module) -> None:
        for classdef in ast.walk(module.tree):
            if not isinstance(classdef, ast.ClassDef):
                continue
            facts = _scan_class(classdef)
            toplevel: dict = {}
            for method_name, collector in facts.items():
                toplevel[method_name] = {
                    lock
                    for lock, _node, held in collector.acquisitions
                    if not held
                }
            qualify = lambda lock: f"{classdef.name}.{lock}"  # noqa: E731
            for collector in facts.values():
                for lock, with_node, held in collector.acquisitions:
                    for holder in held:
                        if holder != lock:
                            self._edges.setdefault(
                                (qualify(holder), qualify(lock)),
                                (module, with_node),
                            )
                for method_name, held in collector.calls:
                    if not held:
                        continue
                    for lock in toplevel.get(method_name, ()):
                        for holder in held:
                            if holder != lock:
                                self._edges.setdefault(
                                    (qualify(holder), qualify(lock)),
                                    (module, None),
                                )

    def finalize(self, project) -> list:
        graph: dict = {}
        for holder, acquired in self._edges:
            graph.setdefault(holder, set()).add(acquired)
        findings: list = []
        seen_cycles: set = set()
        for start in sorted(graph):
            cycle = _find_cycle(graph, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in seen_cycles:
                continue
            seen_cycles.add(key)
            witness = None
            for index, node in enumerate(cycle):
                edge = (node, cycle[(index + 1) % len(cycle)])
                if self._edges.get(edge, (None, None))[1] is not None:
                    witness = self._edges[edge]
                    break
            if witness is None:
                witness = next(
                    self._edges[(node, cycle[(index + 1) % len(cycle)])]
                    for index, node in enumerate(cycle)
                    if (node, cycle[(index + 1) % len(cycle)]) in self._edges
                )
            module, node = witness
            ordered = " -> ".join(cycle + [cycle[0]])
            findings.append(
                Finding(
                    rule=self.id,
                    path=str(module.path),
                    line=getattr(node, "lineno", 1),
                    severity=self.severity,
                    message=(
                        f"lock-acquisition-order cycle: {ordered} "
                        "(deadlock candidate; pick one global order)"
                    ),
                    detail={"cycle": cycle},
                )
            )
        return findings


def _find_cycle(graph: dict, start: str):
    """The first cycle reachable from ``start`` (DFS), or ``None``."""
    path: list = []
    on_path: set = set()
    visited: set = set()

    def dfs(node: str):
        if node in on_path:
            return path[path.index(node):]
        if node in visited:
            return None
        visited.add(node)
        path.append(node)
        on_path.add(node)
        for neighbour in sorted(graph.get(node, ())):
            found = dfs(neighbour)
            if found is not None:
                return found
        path.pop()
        on_path.discard(node)
        return None

    return dfs(start)
