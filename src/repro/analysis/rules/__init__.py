"""The rule pack; importing this package registers every rule.

Families (one module per family):

* ``RPR1xx`` :mod:`~repro.analysis.rules.locks` -- lock discipline.
* ``RPR2xx`` :mod:`~repro.analysis.rules.async_rules` -- async hygiene.
* ``RPR3xx`` :mod:`~repro.analysis.rules.wire` -- wire/error registry.
* ``RPR4xx`` :mod:`~repro.analysis.rules.durability` -- WAL before ack.
* ``RPR5xx`` :mod:`~repro.analysis.rules.obs_names` -- observability
  name registry.
* ``RPR6xx`` :mod:`~repro.analysis.rules.timeapi` -- monotonic time.
* ``RPR7xx`` :mod:`~repro.analysis.rules.handlers` -- exception
  hygiene.
* ``RPR8xx`` :mod:`~repro.analysis.rules.pairsets` -- bit-parallel
  kernel discipline.
"""

from repro.analysis.rules import (  # noqa: F401 -- registration imports
    async_rules,
    durability,
    handlers,
    locks,
    obs_names,
    pairsets,
    timeapi,
    wire,
)
