"""The project loader: paths -> parsed modules -> one :class:`Project`.

Every module is read and parsed exactly once (``ast`` for structure,
plain line splitting for the suppression scanner); rules receive the
shared :class:`Module` objects, so a ten-rule run costs one parse per
file.  The loader also derives each module's dotted name (walking up
through ``__init__.py`` packages), which is how cross-module rules like
the wire-registry check recognise their anchor modules
(``repro.server.client``, ``repro.server.protocol``, ...) without
hard-coding filesystem layouts -- fixture corpora under ``tests/``
reuse the same recognition by file name.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.finding import Finding

__all__ = ["Module", "Project", "load_project"]

#: Directories never worth linting (caches, VCS internals).
_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".mypy_cache", ".ruff_cache"}


class Module:
    """One parsed source file plus the derived metadata rules need."""

    def __init__(self, path: Path, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.name = _dotted_name(path)
        #: ``import``/``from`` aliases visible at module level:
        #: ``{"time": "time", "osp": "os.path", "sleep": "time.sleep"}``.
        self.imports = _collect_imports(tree)

    @property
    def display_path(self) -> str:
        """The path as given on the command line (kept relative)."""
        return str(self.path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Module({self.name!r}, {self.path})"


class Project:
    """The loaded module set one lint run operates on."""

    def __init__(self, modules: list, errors: list) -> None:
        self.modules = modules
        #: Parse failures as ready findings (RPR001); a file the linter
        #: cannot read is a finding, not a crash.
        self.errors = errors
        self._by_name = {module.name: module for module in modules}

    def module(self, name: str):
        """Look up a module by dotted name (``None`` when absent)."""
        return self._by_name.get(name)

    def modules_named(self, basename: str) -> list:
        """Every module whose file name matches (``client.py`` ...)."""
        return [
            module for module in self.modules if module.path.name == basename
        ]

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


def _dotted_name(path: Path) -> str:
    """``src/repro/server/client.py`` -> ``repro.server.client``.

    Walks upward while ``__init__.py`` siblings mark package levels, so
    the name is layout-independent (works from the repo root, from
    ``src/``, or on a fixture tree that is not a package at all -- then
    the bare stem is the name).
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _collect_imports(tree: ast.AST) -> dict:
    imports: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return imports


def iter_python_files(paths) -> list:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set = set()
    files: list = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files


def load_project(paths) -> Project:
    """Read and parse every ``.py`` file under ``paths``.

    Unreadable or syntactically invalid files become ``RPR001``
    findings on the returned project instead of raising -- the linter
    must be able to report on a tree it cannot fully parse.
    """
    modules: list = []
    errors: list = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            errors.append(
                Finding(
                    rule="RPR001",
                    path=str(path),
                    line=1,
                    message=f"cannot read file: {error}",
                )
            )
            continue
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            errors.append(
                Finding(
                    rule="RPR001",
                    path=str(path),
                    line=error.lineno or 1,
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        modules.append(Module(path, source, tree))
    return Project(modules, errors)
