"""Shared AST helpers for the rule pack (stdlib ``ast`` only)."""

from __future__ import annotations

import ast

__all__ = [
    "call_name",
    "dotted_source",
    "iter_methods",
    "is_self_attr",
    "lock_attr_name",
    "string_const",
    "walk_function_body",
]


def string_const(node) -> str | None:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def dotted_source(node) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call, imports: dict | None = None) -> str | None:
    """The dotted target of a call, import-aliases resolved.

    ``sleep(1)`` after ``from time import sleep`` resolves to
    ``time.sleep``; ``t.sleep(1)`` after ``import time as t`` likewise.
    Calls whose target is not a plain name/attribute chain (e.g. a
    subscript) return ``None``.
    """
    dotted = dotted_source(call.func)
    if dotted is None:
        return None
    if imports:
        head, _, rest = dotted.partition(".")
        resolved = imports.get(head)
        if resolved is not None:
            dotted = f"{resolved}.{rest}" if rest else resolved
    return dotted


def is_self_attr(node, name: str | None = None) -> bool:
    """Is ``node`` ``self.<attr>`` (optionally a specific ``<attr>``)?"""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (name is None or node.attr == name)
    )


def lock_attr_name(node) -> str | None:
    """``self.<x>`` where ``<x>`` smells like a lock -> ``<x>``.

    The repo convention: every :class:`threading.Lock`/``RLock``
    attribute has ``lock`` in its name (``_lock``, ``lock``,
    ``_update_lock``, ``_admission_lock``, ...).  The convention is
    itself part of the contract this heuristic leans on.
    """
    if is_self_attr(node) and "lock" in node.attr.lower():
        return node.attr
    return None


def iter_methods(classdef: ast.ClassDef):
    """The direct function definitions of a class body."""
    for statement in classdef.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield statement


def walk_function_body(function, include_nested: bool = False):
    """Walk a function's own statements/expressions.

    With ``include_nested=False`` the walk stops at nested function and
    class definitions (and lambdas) -- the semantics async-hygiene
    needs: a blocking call inside a closure handed to ``_in_executor``
    is not a blocking call *on the event loop*.
    """
    stack = list(function.body)
    while stack:
        node = stack.pop()
        yield node
        if not include_nested and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))
