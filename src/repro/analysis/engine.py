"""Orchestration: load -> run rules -> suppress -> render.

:func:`run_lint` is the single entry point both the CLI and the test
suite use.  One run instantiates fresh rule objects (cross-module rules
keep their accumulated state on the instance), executes the two-pass
protocol (``collect`` over every module, then per-module ``check``,
then ``finalize``), applies the inline suppressions, and returns a
:class:`LintResult` that renders as text or JSON.
"""

from __future__ import annotations

import json

from repro.analysis.base import all_rules
from repro.analysis.finding import sort_findings
from repro.analysis.project import load_project
from repro.analysis.suppress import apply_suppressions, scan_suppressions

__all__ = ["LintResult", "run_lint", "select_rules"]


class LintResult:
    """The outcome of one lint run."""

    def __init__(self, findings: list, modules: int, rules: list) -> None:
        self.findings = sort_findings(findings)
        self.modules = modules
        self.rules = rules

    @property
    def ok(self) -> bool:
        """Clean run?  Any unsuppressed finding -- warnings included --
        fails; severity is reporting metadata, not an exit-code tier."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} "
            f"({self.modules} modules, {len(self.rules)} rules)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "modules": self.modules,
            "rules": list(self.rules),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)


def select_rules(select=None, ignore=None) -> dict:
    """The rule subset of one run; unknown ids raise ``ValueError``.

    ``select``/``ignore`` accept iterables of rule ids or id *prefixes*
    (``RPR1`` selects the whole lock-discipline family).
    """
    registry = all_rules()

    def expand(ids) -> set:
        chosen: set = set()
        for rule_id in ids:
            matches = {
                known for known in registry if known.startswith(rule_id)
            }
            if not matches:
                raise ValueError(
                    f"unknown rule or prefix {rule_id!r}; known rules: "
                    f"{', '.join(sorted(registry))}"
                )
            chosen |= matches
        return chosen

    chosen = expand(select) if select else set(registry)
    if ignore:
        chosen -= expand(ignore)
    return {rule_id: registry[rule_id] for rule_id in sorted(chosen)}


def run_lint(paths, select=None, ignore=None) -> LintResult:
    """Lint ``paths`` with the selected rules; returns a result object."""
    chosen = select_rules(select, ignore)
    project = load_project(paths)
    rules = [cls() for cls in chosen.values()]

    findings: list = list(project.errors)
    for rule in rules:
        for module in project:
            rule.collect(module)
    for rule in rules:
        for module in project:
            findings.extend(rule.check(module))
        findings.extend(rule.finalize(project))

    suppressions: list = []
    for module in project:
        suppressions.extend(scan_suppressions(module))
    # Unused-suppression warnings only make sense against the full rule
    # set: under --select/--ignore, a suppression for an unselected rule
    # is silent by construction, not stale.
    full_run = select is None and ignore is None
    findings = apply_suppressions(findings, suppressions, warn_unused=full_run)
    return LintResult(findings, modules=len(project), rules=sorted(chosen))
