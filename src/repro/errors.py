"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so downstream users can catch one base class.  The
sub-classes are split along the package boundaries: graph-model violations,
RPQ syntax problems, and evaluation-time failures.
"""

from __future__ import annotations

#: The canonical registry of wire-protocol error codes.
#:
#: Every ``code`` attached to an exception anywhere in the library --
#: class attributes below, ``code=`` constructor keywords, post-hoc
#: ``error.code = ...`` tags, and the classification locals in
#: :func:`repro.server.protocol.error_payload` -- must be a key here;
#: ``repro lint`` (rule ``RPR302``) enforces it statically, and the
#: round-trip test drives every key through ``error_payload`` ->
#: ``exception_from_payload`` to prove clients can rehydrate it.
ERROR_CODES = {
    # server/protocol.py classification of evaluation failures
    "syntax": "the query text failed to parse (RPQSyntaxError)",
    "storage": "a durability operation failed (StorageError)",
    "evaluation": "the query could not be evaluated (EvaluationError)",
    "internal": "unclassified server-side failure (ServerError base)",
    # admission control and lifecycle
    "rejected": "admission queue full; back off and retry (AdmissionError)",
    "deadline": "deadline passed before evaluation (DeadlineExpiredError)",
    "closed": "the server/scheduler/backend is shut down",
    "poisoned": "the client connection is in an unrecoverable state",
    "bad_request": "the wire message violated the protocol (ProtocolError)",
    # cluster routing (any `cluster`-prefixed code rehydrates to
    # ClusterError, preserving the sub-code)
    "cluster": "unclassified cluster routing failure (ClusterError base)",
    "cluster.topology": "the shard topology cannot satisfy the request",
    "cluster.unsupported": "a sharded deployment cannot express this op",
    "cluster.unknown_edge": "edge removal references no known shard/cut",
    "cluster.worker_start": "a shard worker process failed to start",
}


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Violation of the graph data model (Section II-A of the paper).

    Raised, for example, when adding a duplicate ``(source, label, target)``
    edge to a :class:`~repro.graph.LabeledMultigraph` -- the paper's data
    model allows parallel edges between two vertices only when their labels
    differ.
    """


class VertexNotFoundError(GraphError):
    """An operation referenced a vertex that is not part of the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class GraphFormatError(GraphError):
    """A serialized graph (edge list / adjacency file) could not be parsed."""


class StorageError(ReproError):
    """A durability operation of :mod:`repro.storage` failed.

    Raised for unusable data directories, manifests that do not match the
    on-disk write-ahead log, vertices/labels the JSON record format cannot
    persist, and operations on closed storage handles.  Corrupt WAL
    *tails* do **not** raise -- the reader truncates them (crash-during-
    append is an expected state, not an error).
    """

    #: Wire-protocol error code (see :data:`ERROR_CODES`).
    code = "storage"


class RPQSyntaxError(ReproError):
    """The textual form of a regular path query could not be parsed.

    Carries the offending ``position`` (character offset into the query
    string) when it is known, so callers can point at the error.
    """

    #: Wire-protocol error code (see :data:`ERROR_CODES`).
    code = "syntax"

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class EvaluationError(ReproError):
    """An RPQ could not be evaluated against the given graph."""

    #: Wire-protocol error code (see :data:`ERROR_CODES`).
    code = "evaluation"


class UnknownEngineError(ReproError, ValueError):
    """An engine name is not present in the engine registry.

    Also derives from :class:`ValueError` so code written against the old
    ``make_engine`` contract (which raised a bare ``ValueError``) keeps
    working.  Carries the offending ``name`` and the ``available`` engine
    names at raise time.
    """

    def __init__(self, name: object, available: tuple = ()) -> None:
        available = tuple(sorted(available))
        message = f"unknown engine {name!r}"
        if available:
            message += f"; registered engines: {', '.join(available)}"
        super().__init__(message)
        self.name = name
        self.available = available


class UnknownLabelError(EvaluationError):
    """The query references an edge label absent from the graph's alphabet.

    Evaluating such a query is still well defined (the label simply matches
    no edge); this error is raised only when the caller explicitly requests
    strict alphabet checking.
    """

    def __init__(self, label: str) -> None:
        super().__init__(f"label {label!r} does not occur in the graph")
        self.label = label


class WorkloadError(ReproError):
    """A synthetic workload could not be generated with the given settings."""


class ServerError(ReproError):
    """Base class for errors raised by the :mod:`repro.server` subsystem.

    Raised on the server for scheduling/lifecycle failures and re-raised
    on the client when a response carries an error payload.  Carries the
    wire-protocol error ``code`` so callers can dispatch without string
    matching.
    """

    #: Wire-protocol error code (see :mod:`repro.server.protocol`).
    code = "internal"


class AdmissionError(ServerError):
    """The server refused a request because its queue is full.

    The backpressure signal of the server's admission control: the
    bounded scheduler queue is at capacity, so the request was rejected
    *before* consuming any evaluation resources.  Clients should back
    off and retry.
    """

    code = "rejected"

    def __init__(self, message: str | None = None, queue_depth: int | None = None) -> None:
        if message is None:
            message = "server queue is full; retry later"
            if queue_depth is not None:
                message = f"server queue is full ({queue_depth} queued); retry later"
        super().__init__(message)
        self.queue_depth = queue_depth


class DeadlineExpiredError(ServerError):
    """A request's deadline passed before (or while) it was evaluated.

    Admission control attaches a deadline to every request (client
    ``timeout`` or the server default); workers drop expired requests
    instead of evaluating them, so an overloaded server sheds exactly the
    work nobody is waiting for any more.
    """

    code = "deadline"


class ClusterError(ServerError):
    """A request could not be routed by the :mod:`repro.cluster` layer.

    Raised for topology violations, worker lifecycle failures and
    operations a sharded deployment cannot express.  Carries structured
    fields so routers and tests can dispatch without string matching:

    ``code``
        ``"cluster"`` or a namespaced sub-code (``"cluster.topology"``,
        ``"cluster.worker_start"``, ``"cluster.unknown_edge"``,
        ``"cluster.unsupported"``).  The wire protocol rehydrates any
        ``cluster``-prefixed code back into this class.
    ``shards``
        The shard ids involved (empty when not shard-specific).
    ``detail``
        An optional machine-readable payload (e.g. the offending edge).
    """

    code = "cluster"

    def __init__(
        self,
        message: str,
        *,
        code: str | None = None,
        shards: tuple = (),
        detail: object = None,
    ) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.shards = tuple(shards)
        self.detail = detail


class ProtocolError(ServerError):
    """A wire message violated the JSON-lines protocol.

    Raised for unparseable JSON, non-object payloads, oversized lines,
    unknown operations and missing required fields.
    """

    code = "bad_request"
