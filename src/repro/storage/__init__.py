"""Durable storage for the serving stack: WAL, snapshots, warm RTC state.

The cluster's shards (and any standalone :class:`~repro.db.GraphDB`
session) are in-memory structures; this package makes them *restartable*:

:mod:`repro.storage.wal`
    A per-shard write-ahead log -- fsync'd JSON-lines records of ``update``
    batches with monotonic log-sequence numbers (LSNs) and a corruption-
    tolerant reader that truncates at the first torn tail record.
:mod:`repro.storage.snapshot`
    Periodic full-graph snapshots built on the :mod:`repro.graph.io`
    edge-list dump (with a JSON-triples fallback for tokens the edge-list
    format refuses) plus an isolated-vertex sidecar.
:mod:`repro.storage.manifest`
    The atomically written ``manifest.json`` naming the live snapshot and
    the WAL position it covers, so crash-during-snapshot is safe.
:mod:`repro.storage.rtc_store`
    Persistence for the expensive shared structures: every cached RTC and
    every incremental watcher, version-stamped with the LSN it was valid
    at, so a restarted replica comes back *hot*.
:mod:`repro.storage.recovery`
    The :class:`ShardStorage` orchestrator tying the four together:
    ``recover()`` replays snapshot + WAL, ``bind()`` attaches logging to a
    session, ``checkpoint()`` rolls the snapshot forward and compacts.

See the README's "Durability & warm restarts" section for the contract
and the ``repro serve --data-dir`` wiring.
"""

from repro.storage.manifest import MANIFEST_NAME, read_manifest, write_manifest
from repro.storage.recovery import RecoveredState, ShardStorage, has_state
from repro.storage.snapshot import read_snapshot, write_snapshot
from repro.storage.wal import WriteAheadLog

__all__ = [
    "MANIFEST_NAME",
    "RecoveredState",
    "ShardStorage",
    "WriteAheadLog",
    "has_state",
    "read_manifest",
    "read_snapshot",
    "write_manifest",
    "write_snapshot",
]
