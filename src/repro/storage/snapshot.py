"""Full-graph snapshots: edge-list fast path, JSON-triples fallback, sidecar.

A snapshot is the graph at one WAL position, written as two files (both
atomic, both named by the covering LSN so generations never collide):

``snapshot-<lsn>.edges``
    The edges.  The fast path is the :mod:`repro.graph.io` edge-list
    format -- human-readable, identical to the dataset dumps.  That
    format deliberately *refuses* tokens that would not round-trip
    (int-lookalike string vertices such as ``"123"``, labels or vertices
    containing whitespace -- see the PR 5 ``GraphFormatError`` work), so
    when it raises, the snapshot falls back to one JSON array
    ``[source, label, target]`` per line, which preserves the int/str
    distinction and arbitrary whitespace exactly.  The manifest records
    which format was used (``edge_format``).

``snapshot-<lsn>.isolated.json``
    The isolated-vertex sidecar: a JSON list of vertices with no edges,
    which neither edge format can carry.

``snapshot-<lsn>.interner.json``
    The vertex-interner sidecar: the graph's vertices *in dense-id
    order*, so a warm restart re-interns them before replaying edges and
    every vertex keeps the id it had when the snapshot was taken.
    Bitmaps are never persisted -- they rebuild from the edges -- but id
    stability means cached artifacts keyed by ids (wire payload tables,
    diagnostic dumps) stay comparable across restarts.  Older manifests
    without the ``interner`` key load fine; ids are then assigned in
    edge-replay order.

Only JSON-representable vertices (``int``/``str``, not ``bool``) and
``str`` labels can be persisted at all; anything else raises
:class:`~repro.errors.StorageError` *before* any file is touched.
Graphs carrying richer vertex types keep working in memory -- they just
cannot be attached to storage (same rule as the cluster's spawn-time
edge-list handoff).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphFormatError, StorageError
from repro.graph.io import format_edge_lines, parse_edge_lines
from repro.graph.multigraph import LabeledMultigraph
from repro.storage.manifest import atomic_write_text

__all__ = [
    "check_persistable_edge",
    "check_persistable_vertex",
    "read_snapshot",
    "write_snapshot",
]

EDGE_LIST = "edge-list"
JSON_TRIPLES = "json-triples"


def check_persistable_vertex(vertex: object) -> None:
    """Raise :class:`StorageError` unless ``vertex`` survives a JSON trip."""
    if isinstance(vertex, bool) or not isinstance(vertex, (int, str)):
        raise StorageError(
            f"vertex {vertex!r} ({type(vertex).__name__}) cannot be "
            "persisted; storage records only int and str vertices"
        )


def check_persistable_edge(source: object, label: object, target: object) -> None:
    """Raise :class:`StorageError` unless the edge survives a JSON trip."""
    check_persistable_vertex(source)
    check_persistable_vertex(target)
    if not isinstance(label, str):
        raise StorageError(
            f"label {label!r} ({type(label).__name__}) cannot be persisted; "
            "storage records only str labels"
        )


def _sorted_edges(graph: LabeledMultigraph) -> list[tuple[object, str, object]]:
    return sorted(graph.edges(), key=lambda edge: (str(edge[0]), str(edge[1]), str(edge[2])))


def write_snapshot(graph: LabeledMultigraph, directory: str | Path, lsn: int) -> dict:
    """Write the snapshot of ``graph`` at ``lsn`` into ``directory``.

    Returns the manifest's ``snapshot`` entry.  Every edge and every
    vertex is validated up front, so a non-persistable token leaves the
    directory untouched.
    """
    directory = Path(directory)
    for source, label, target in graph.edges():
        check_persistable_edge(source, label, target)
    isolated = sorted(
        (
            vertex
            for vertex in graph.vertices()
            if graph.out_degree(vertex) == 0 and graph.in_degree(vertex) == 0
        ),
        key=lambda vertex: (str(vertex), isinstance(vertex, str)),
    )
    for vertex in isolated:
        check_persistable_vertex(vertex)

    try:
        edge_text = "".join(format_edge_lines(graph))
        edge_format = EDGE_LIST
    except GraphFormatError:
        edge_text = "".join(
            json.dumps([source, label, target]) + "\n"
            for source, label, target in _sorted_edges(graph)
        )
        edge_format = JSON_TRIPLES

    edges_name = f"snapshot-{int(lsn)}.edges"
    isolated_name = f"snapshot-{int(lsn)}.isolated.json"
    interner_name = f"snapshot-{int(lsn)}.interner.json"
    atomic_write_text(directory / edges_name, edge_text)
    atomic_write_text(directory / isolated_name, json.dumps(isolated) + "\n")
    atomic_write_text(
        directory / interner_name,
        json.dumps(list(graph.interner.vertices())) + "\n",
    )
    return {
        "edges": edges_name,
        "edge_format": edge_format,
        "isolated": isolated_name,
        "interner": interner_name,
    }


def read_snapshot(directory: str | Path, entry: dict) -> LabeledMultigraph:
    """Rebuild the graph a manifest ``snapshot`` entry describes."""
    directory = Path(directory)
    edges_path = directory / entry["edges"]
    edge_format = entry.get("edge_format", EDGE_LIST)
    if not edges_path.exists():
        raise StorageError(f"manifest names missing snapshot file {edges_path}")

    graph = LabeledMultigraph()
    interner_name = entry.get("interner")
    if interner_name:
        interner_path = directory / interner_name
        if not interner_path.exists():
            raise StorageError(f"manifest names missing sidecar {interner_path}")
        try:
            interned = json.loads(interner_path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise StorageError(
                f"corrupt interner sidecar {interner_path}: {error}"
            ) from error
        # Re-intern in recorded (dense-id) order before any edge is
        # replayed, so the warm graph's id space matches the writer's.
        graph.seed_interner(interned)
    if edge_format == EDGE_LIST:
        with open(edges_path, "r", encoding="utf-8") as handle:
            for source, label, target in parse_edge_lines(handle):
                graph.add_edge(source, label, target)
    elif edge_format == JSON_TRIPLES:
        with open(edges_path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    triple = json.loads(line)
                except ValueError as error:
                    raise StorageError(
                        f"{edges_path} line {line_number}: invalid JSON triple: {error}"
                    ) from error
                if not isinstance(triple, list) or len(triple) != 3:
                    raise StorageError(
                        f"{edges_path} line {line_number}: expected [source, label, target]"
                    )
                graph.add_edge(triple[0], triple[1], triple[2])
    else:
        raise StorageError(f"unknown snapshot edge format {edge_format!r}")

    isolated_name = entry.get("isolated")
    if isolated_name:
        isolated_path = directory / isolated_name
        if not isolated_path.exists():
            raise StorageError(f"manifest names missing sidecar {isolated_path}")
        try:
            isolated = json.loads(isolated_path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise StorageError(f"corrupt isolated-vertex sidecar {isolated_path}: {error}") from error
        for vertex in isolated:
            graph.add_vertex(vertex)
    return graph
