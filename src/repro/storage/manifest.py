"""The storage manifest: which snapshot is live and what WAL position it covers.

``manifest.json`` is the *commit point* of a checkpoint.  The snapshot
files and the RTC store are written first (each atomically, to fresh
LSN-stamped names); only then is the manifest swapped in with the classic
tmp + fsync + rename dance.  A crash at any point leaves either the old
manifest (pointing at intact old files) or the new one (pointing at
intact new files) -- never a manifest naming half-written state.

Payload::

    {
      "format": "repro-storage",
      "version": 1,
      "lsn": 42,                      # WAL position the snapshot covers
      "snapshot": {
        "edges": "snapshot-42.edges",
        "edge_format": "edge-list",   # or "json-triples"
        "isolated": "snapshot-42.isolated.json"
      },
      "rtc_store": "rtc-42.json"      # or null when nothing was cached
    }
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import StorageError

__all__ = ["MANIFEST_NAME", "atomic_write_text", "read_manifest", "write_manifest"]

MANIFEST_NAME = "manifest.json"
_FORMAT = "repro-storage"
_VERSION = 1


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` via tmp + fsync + rename.

    The temporary file lives in the same directory, so the final rename
    is atomic on POSIX; readers never observe a partial file.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def write_manifest(directory: str | Path, lsn: int, snapshot: dict, rtc_store: str | None) -> dict:
    """Atomically commit a checkpoint's manifest; returns the payload."""
    payload = {
        "format": _FORMAT,
        "version": _VERSION,
        "lsn": int(lsn),
        "snapshot": snapshot,
        "rtc_store": rtc_store,
    }
    atomic_write_text(Path(directory) / MANIFEST_NAME, json.dumps(payload, indent=2) + "\n")
    return payload


def read_manifest(directory: str | Path) -> dict | None:
    """The manifest payload of ``directory``, or ``None`` when absent."""
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as error:
        raise StorageError(f"corrupt manifest {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise StorageError(f"{path} is not a {_FORMAT} manifest")
    if payload.get("version") != _VERSION:
        raise StorageError(
            f"unsupported manifest version {payload.get('version')!r} in {path}"
        )
    if not isinstance(payload.get("lsn"), int) or not isinstance(payload.get("snapshot"), dict):
        raise StorageError(f"malformed manifest {path}: missing lsn/snapshot")
    return payload
