"""Persistence for the shared RTC state: cache entries and watchers.

The whole value of the paper's pipeline is the *shared data* -- the RTC
built once per closure body and reused across queries.  Losing it on
restart means every body pays its construction cost again, which is the
difference between a warm replica and a cold one.  This module
serialises, per shard:

* every entry of the ``rtc`` engine's :class:`~repro.core.cache.RTCCache`
  (keyed by the cache's canonical body key, encoded with the existing
  :mod:`repro.core.serialize` codec), and
* every incremental watcher (``G_R`` edges + frozen RTC, restored via
  :meth:`~repro.core.incremental.IncrementalRTC.from_state` without
  re-running ``eval_rpq``),

each **version-stamped with the LSN it was valid at**.  On load, an entry
is installed only when its stamp equals the recovered LSN -- any update
after the checkpoint invalidates it, exactly mirroring the engine's
cache-reset-on-update semantics.  Stale entries are counted, not loaded.

Engines other than ``rtc`` (``full``'s materialised closures, ``none``)
have no RTC-valued cache; for them only watchers are persisted.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.serialize import RtcFormatError, rtc_from_dict, rtc_to_dict
from repro.errors import StorageError
from repro.storage.manifest import atomic_write_text

__all__ = [
    "collect_rtc_state",
    "install_rtc_state",
    "load_rtc_store",
    "write_rtc_store",
]

_FORMAT = "repro-rtc-store"
_VERSION = 1


def _cache_of(db) -> object | None:
    """The session engine's RTC-valued cache, when it has one."""
    return getattr(db.engine, "rtc_cache", None)


def collect_rtc_state(db, lsn: int, extra_sessions: tuple = ()) -> dict:
    """Gather the store payload from a session (plus replica sessions).

    ``extra_sessions`` are sibling replicas of the same shard: they saw
    the same ordered update stream, so their caches hold entries for the
    same graph state and can be merged (last writer wins on equal
    values).  Non-serialisable entries (exotic vertex types) are skipped
    rather than failing the checkpoint.
    """
    entries: dict[str, dict] = {}
    watchers: dict[str, dict] = {}
    skipped = 0
    mode = None
    for session in (db, *extra_sessions):
        cache = _cache_of(session)
        if cache is not None:
            mode = cache.mode if mode is None else mode
            with cache._lock:
                cached = dict(cache._entries)
            for key, rtc in cached.items():
                try:
                    entries[key] = {"lsn": int(lsn), "rtc": rtc_to_dict(rtc)}
                except RtcFormatError:
                    skipped += 1
        for body, watcher in session.watchers.items():
            if body in watchers:
                continue
            gr_edges, rtc = watcher.export_state()
            try:
                watchers[body] = {
                    "lsn": int(lsn),
                    "gr_edges": [list(pair) for pair in gr_edges],
                    "rtc": rtc_to_dict(rtc),
                }
            except RtcFormatError:
                skipped += 1
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "lsn": int(lsn),
        "cache_mode": mode,
        "entries": entries,
        "watchers": watchers,
        "skipped": skipped,
    }


def write_rtc_store(db, directory: str | Path, lsn: int, extra_sessions: tuple = ()) -> str | None:
    """Write the RTC store file for ``lsn``; returns its name, or ``None``.

    Nothing is written when there is nothing warm to keep (empty cache,
    no watchers) -- the manifest then records ``rtc_store: null``.
    """
    payload = collect_rtc_state(db, lsn, extra_sessions)
    if not payload["entries"] and not payload["watchers"]:
        return None
    name = f"rtc-{int(lsn)}.json"
    atomic_write_text(Path(directory) / name, json.dumps(payload))
    return name


def load_rtc_store(directory: str | Path, name: str) -> dict:
    """Read and validate a store file written by :func:`write_rtc_store`."""
    path = Path(directory) / name
    if not path.exists():
        raise StorageError(f"manifest names missing RTC store {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as error:
        raise StorageError(f"corrupt RTC store {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise StorageError(f"{path} is not a {_FORMAT} payload")
    if payload.get("version") != _VERSION:
        raise StorageError(f"unsupported RTC store version {payload.get('version')!r}")
    return payload


def install_rtc_state(db, payload: dict, lsn: int) -> dict:
    """Warm one session from a store payload; returns install statistics.

    Cache entries land only when (a) the session's engine has an RTC
    cache in the same ``cache_mode`` the payload was keyed with, and
    (b) the entry's LSN stamp equals the recovered ``lsn``.  Watchers are
    restored through :meth:`GraphDB.restore_watcher`, bound to *this*
    session's graph.
    """
    stats = {"entries": 0, "watchers": 0, "stale": 0}
    cache = _cache_of(db)
    mode_matches = cache is not None and payload.get("cache_mode") == cache.mode
    for key, entry in payload.get("entries", {}).items():
        if entry.get("lsn") != int(lsn) or not mode_matches:
            stats["stale"] += 1
            continue
        try:
            cache.store(key, rtc_from_dict(entry["rtc"]))
        except (KeyError, RtcFormatError) as error:
            raise StorageError(f"corrupt RTC store entry {key!r}: {error}") from error
        stats["entries"] += 1
    for body, entry in payload.get("watchers", {}).items():
        if entry.get("lsn") != int(lsn):
            stats["stale"] += 1
            continue
        try:
            gr_edges = [tuple(pair) for pair in entry["gr_edges"]]
            rtc = rtc_from_dict(entry["rtc"])
        except (KeyError, TypeError, RtcFormatError) as error:
            raise StorageError(f"corrupt watcher entry {body!r}: {error}") from error
        db.restore_watcher(body, gr_edges, rtc)
        stats["watchers"] += 1
    return stats
