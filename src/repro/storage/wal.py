"""The per-shard write-ahead log: fsync'd JSON-lines with monotonic LSNs.

One record per line::

    {"lsn": 12, "op": "update", "add": [["a", "l0", "b"]], "remove": []}

``lsn`` is assigned by the log itself and is strictly contiguous: the
first record after :meth:`WriteAheadLog.reset`/construction carries
``start_lsn + 1`` and every later record increments by one.  Contiguity
is what makes the reader corruption-*tolerant* rather than corruption-
oblivious: on open, the file is scanned record by record and truncated at
the first line that is torn (no trailing newline), unparseable, or out of
sequence -- everything before that point is trusted, everything after is
discarded.  A torn tail is the expected crash-during-append state, so
truncation is silent; the honest durability story is "whatever ``append``
returned for is on disk, the record being written when the power died is
not".

Every ``append`` flushes and ``os.fsync``\\ s before returning -- an acked
record survives ``kill -9``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.errors import StorageError
from repro.obs import ambient_span, get_registry

__all__ = ["WriteAheadLog"]

_registry = get_registry()
_wal_appends = _registry.counter(
    "repro_wal_appends_total", "Durably appended (fsync'd) WAL records."
)
_wal_seconds = _registry.counter(
    "repro_phase_seconds_total",
    "Wall seconds spent per engine/storage phase.",
    labels=("phase",),
)
_wal_last_lsn = _registry.gauge(
    "repro_wal_last_lsn", "Highest LSN acknowledged by this process's WALs."
)


class WriteAheadLog:
    """An append-only JSON-lines log with contiguous LSNs.

    ``start_lsn`` is the position the log *logically begins after*: the
    manifest's covered LSN on recovery, ``0`` for a fresh directory.  The
    first valid record on disk must carry ``start_lsn + 1``; a mismatch
    (stale file from a different manifest generation) truncates the whole
    file rather than replaying records the snapshot already contains.
    """

    def __init__(self, path: str | Path, start_lsn: int = 0) -> None:
        self.path = Path(path)
        self.start_lsn = int(start_lsn)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._closed = False
        self.truncated_bytes = 0
        records, valid_end, size = self._scan()
        if valid_end < size:
            self.truncated_bytes = size - valid_end
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())
        self.last_lsn = records[-1]["lsn"] if records else self.start_lsn
        self._handle = open(self.path, "ab")

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _scan(self) -> tuple[list[dict], int, int]:
        """``(valid records, byte offset after them, file size)``."""
        if not self.path.exists():
            self.path.touch()
            return [], 0, 0
        data = self.path.read_bytes()
        records: list[dict] = []
        expected = self.start_lsn + 1
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                break  # torn tail: record written without its newline
            line = data[offset:newline]
            try:
                record = json.loads(line)
            except ValueError:
                break
            if not isinstance(record, dict) or record.get("lsn") != expected:
                break
            records.append(record)
            expected += 1
            offset = newline + 1
        return records, offset, len(data)

    def records(self) -> list[dict]:
        """All valid records currently on disk, in LSN order."""
        records, _end, _size = self._scan()
        return records

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: dict) -> int:
        """Durably append ``record``; returns its assigned LSN.

        The record is JSON-encoded with an ``lsn`` field prepended,
        written, flushed and fsync'd before this method returns.
        """
        self._check_open()
        lsn = self.last_lsn + 1
        payload = {"lsn": lsn}
        payload.update(record)
        try:
            line = json.dumps(payload, sort_keys=False)
        except (TypeError, ValueError) as error:
            raise StorageError(f"WAL record is not JSON-serialisable: {error}") from error
        started = time.perf_counter()
        with ambient_span("wal_append") as span:
            self._handle.write(line.encode("utf-8") + b"\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            if span is not None:
                span.attrs["lsn"] = lsn
        _wal_appends.inc()
        _wal_seconds.inc(time.perf_counter() - started, phase="wal")
        _wal_last_lsn.set(lsn)
        self.last_lsn = lsn
        return lsn

    def reset(self, start_lsn: int) -> None:
        """Truncate the log and rebase it after ``start_lsn``.

        Called after a checkpoint: the manifest now covers everything up
        to ``start_lsn``, so the records are dead weight.
        """
        self._check_open()
        self._handle.close()
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self.start_lsn = int(start_lsn)
        self.last_lsn = int(start_lsn)
        self._handle = open(self.path, "ab")

    def sync(self) -> None:
        """Flush and fsync the log handle (appends already do this)."""
        self._check_open()
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Fsync and close; idempotent."""
        if self._closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"write-ahead log {self.path} is closed")

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"WriteAheadLog({str(self.path)!r}, last_lsn={self.last_lsn}, {state})"
