""":class:`ShardStorage` -- one shard's durable state, end to end.

The lifecycle a worker (or a standalone session) drives::

    storage = ShardStorage(data_dir)
    if storage.has_state():
        state = storage.recover()        # snapshot + WAL replay
        db = GraphDB.open(state.graph, storage=storage)   # comes back hot
    else:
        db = GraphDB.open(seed_graph, storage=storage)    # initial checkpoint
    ...
    db.update(add=[...])                 # logged + fsync'd before returning
    db.checkpoint()                      # roll snapshot forward, compact WAL

``recover()`` loads the manifest's snapshot, replays every valid WAL
record on top of it (truncating a torn tail), and keeps the warm RTC
payload around; ``bind()`` (called by ``GraphDB.open``) attaches the WAL
for logging and installs the warm payload into the session.  Replica
siblings of the primary session are warmed with :meth:`install`.

A directory with existing state refuses a *fresh* bind (a new graph over
an old log would silently diverge from disk): recover first, or point the
session at an empty directory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StorageError
from repro.graph.multigraph import LabeledMultigraph
from repro.obs import ambient_span, get_registry
from repro.storage.manifest import MANIFEST_NAME, read_manifest, write_manifest
from repro.storage.rtc_store import install_rtc_state, load_rtc_store, write_rtc_store
from repro.storage.snapshot import check_persistable_edge, read_snapshot, write_snapshot
from repro.storage.wal import WriteAheadLog

__all__ = ["RecoveredState", "ShardStorage", "has_state"]

_registry = get_registry()
_checkpoints_total = _registry.counter(
    "repro_checkpoints_total", "Committed checkpoints (manifest renames)."
)
_phase_seconds = _registry.counter(
    "repro_phase_seconds_total",
    "Wall seconds spent per engine/storage phase.",
    labels=("phase",),
)

WAL_NAME = "wal.jsonl"


def has_state(directory: str | Path) -> bool:
    """Whether ``directory`` holds a committed storage generation.

    The manifest is the commit point, so its existence *is* the test --
    cheap enough for a spawning parent to decide "seed or recover"
    without opening any handle.
    """
    return (Path(directory) / MANIFEST_NAME).exists()


@dataclass
class RecoveredState:
    """What :meth:`ShardStorage.recover` reconstructed from disk."""

    graph: LabeledMultigraph
    lsn: int
    replayed_records: int
    snapshot_lsn: int
    edge_format: str
    truncated_bytes: int
    rtc_payload: dict | None = field(default=None, repr=False)


class ShardStorage:
    """The durable home of one shard: WAL + snapshots + RTC store.

    Not thread-safe on its own; every mutating call is made under the
    owning session's lock (``GraphDB`` routes ``log_update`` and
    ``checkpoint`` through it).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._wal: WriteAheadLog | None = None
        self._recovered: RecoveredState | None = None
        self._closed = False
        self._last_checkpoint_lsn = 0

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def has_state(self) -> bool:
        return has_state(self.directory)

    @property
    def recovered(self) -> RecoveredState | None:
        return self._recovered

    @property
    def last_lsn(self) -> int:
        return self._wal.last_lsn if self._wal is not None else 0

    def recover(self) -> RecoveredState:
        """Rebuild the graph from snapshot + WAL; idempotent per instance."""
        self._check_open()
        if self._recovered is not None:
            return self._recovered
        manifest = read_manifest(self.directory)
        if manifest is None:
            raise StorageError(
                f"{self.directory} has no manifest to recover from; "
                "bind a fresh session instead"
            )
        snapshot_lsn = manifest["lsn"]
        graph = read_snapshot(self.directory, manifest["snapshot"])
        self._wal = WriteAheadLog(self.directory / WAL_NAME, start_lsn=snapshot_lsn)
        records = self._wal.records()
        for record in records:
            if record.get("op") != "update":
                raise StorageError(
                    f"unknown WAL record op {record.get('op')!r} at lsn {record.get('lsn')}"
                )
            for source, label, target in record.get("add", ()):
                graph.add_edge(source, label, target)
            for source, label, target in record.get("remove", ()):
                graph.remove_edge(source, label, target)
        rtc_payload = None
        if manifest.get("rtc_store"):
            rtc_payload = load_rtc_store(self.directory, manifest["rtc_store"])
        self._last_checkpoint_lsn = snapshot_lsn
        self._recovered = RecoveredState(
            graph=graph,
            lsn=self._wal.last_lsn,
            replayed_records=len(records),
            snapshot_lsn=snapshot_lsn,
            edge_format=manifest["snapshot"].get("edge_format", "edge-list"),
            truncated_bytes=self._wal.truncated_bytes,
            rtc_payload=rtc_payload,
        )
        return self._recovered

    # ------------------------------------------------------------------
    # binding and logging
    # ------------------------------------------------------------------
    def bind(self, db) -> dict:
        """Attach this storage to its primary session; returns warm stats.

        Fresh directory: writes the initial checkpoint (snapshot of the
        seed graph at LSN 0) so the manifest exists from the first
        moment.  Recovered directory: requires :meth:`recover` to have
        produced the very graph the session binds (identity check), then
        installs the warm RTC payload.
        """
        self._check_open()
        if db.closed:
            raise StorageError("cannot bind storage to a closed session")
        if self._recovered is not None:
            if db.graph is not self._recovered.graph:
                raise StorageError(
                    "session graph is not the recovered graph; pass "
                    "storage.recover().graph (or the storage itself) to GraphDB.open"
                )
            return self.install(db)
        if self.has_state():
            raise StorageError(
                f"{self.directory} already holds state; call recover() "
                "before binding a session (a fresh graph would diverge from disk)"
            )
        self._wal = WriteAheadLog(self.directory / WAL_NAME, start_lsn=0)
        self._wal.reset(0)
        self._checkpoint_locked(db, ())
        return {"entries": 0, "watchers": 0, "stale": 0}

    def install(self, db) -> dict:
        """Warm one session (primary or replica sibling) from the store."""
        self._check_open()
        if self._recovered is None or self._recovered.rtc_payload is None:
            return {"entries": 0, "watchers": 0, "stale": 0}
        return install_rtc_state(db, self._recovered.rtc_payload, self._recovered.lsn)

    def validate_edges(self, edges) -> None:
        """Refuse non-persistable edges *before* the session applies them."""
        for source, label, target in edges:
            check_persistable_edge(source, label, target)

    def log_update(self, add: list, remove: list) -> int | None:
        """Durably record one applied ``update`` batch; returns its LSN.

        No-op (and no LSN is consumed) for an empty batch.  Called by the
        session *after* the batch mutated the graph, with exactly the
        applied prefix -- so replay reproduces the graph byte for byte
        even when the original batch failed midway.
        """
        self._check_open()
        if self._wal is None:
            raise StorageError("storage is not bound to a session yet")
        if not add and not remove:
            return None
        return self._wal.append(
            {
                "op": "update",
                "add": [list(edge) for edge in add],
                "remove": [list(edge) for edge in remove],
            }
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, db, extra_sessions: tuple = ()) -> dict:
        """Roll the snapshot forward to the current LSN and compact the WAL.

        Order matters for crash safety: snapshot files and the RTC store
        are written to fresh LSN-stamped names first, the manifest rename
        commits them, and only then is the now-covered WAL truncated and
        the previous generation's files deleted.
        """
        self._check_open()
        if self._wal is None:
            raise StorageError("storage is not bound to a session yet")
        return self._checkpoint_locked(db, tuple(extra_sessions))

    def _checkpoint_locked(self, db, extra_sessions: tuple) -> dict:
        lsn = self._wal.last_lsn
        started = time.perf_counter()
        with ambient_span("checkpoint") as span:
            old_manifest = read_manifest(self.directory)
            with ambient_span("snapshot"):
                snapshot_entry = write_snapshot(db.graph, self.directory, lsn)
            store_name = write_rtc_store(db, self.directory, lsn, extra_sessions)
            write_manifest(self.directory, lsn, snapshot_entry, store_name)
            self._wal.reset(lsn)
            self._last_checkpoint_lsn = lsn
            if old_manifest is not None:
                self._remove_generation(old_manifest, keep_lsn=lsn)
            if span is not None:
                span.attrs["lsn"] = lsn
        _checkpoints_total.inc()
        _phase_seconds.inc(time.perf_counter() - started, phase="checkpoint")
        return {"lsn": lsn, "snapshot": snapshot_entry, "rtc_store": store_name}

    def _remove_generation(self, manifest: dict, keep_lsn: int) -> None:
        """Delete a superseded generation's files (same-LSN names survive)."""
        names = [
            manifest.get("snapshot", {}).get("edges"),
            manifest.get("snapshot", {}).get("isolated"),
            manifest.get("rtc_store"),
        ]
        for name in names:
            if not name or str(keep_lsn) == str(manifest.get("lsn")):
                continue
            path = self.directory / name
            if path.exists():
                path.unlink()

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Storage state for the ``stats`` verb: LSN, recovery, layout."""
        recovered = self._recovered
        return {
            "directory": str(self.directory),
            "lsn": self.last_lsn,
            "last_checkpoint_lsn": self._last_checkpoint_lsn,
            "recovered": recovered is not None,
            "replayed_records": recovered.replayed_records if recovered else 0,
            "truncated_bytes": recovered.truncated_bytes if recovered else 0,
            "snapshot_format": recovered.edge_format if recovered else None,
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def sync(self) -> None:
        """Flush and fsync pending WAL state (appends already fsync)."""
        if self._wal is not None and not self._wal.closed:
            self._wal.sync()

    def close(self) -> None:
        """Fsync and release the WAL handle; idempotent."""
        if self._closed:
            return
        if self._wal is not None:
            self._wal.close()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"storage at {self.directory} is closed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"ShardStorage({str(self.directory)!r}, lsn={self.last_lsn}, {state})"
