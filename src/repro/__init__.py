"""repro -- Regular Path Query evaluation sharing a Reduced Transitive Closure.

A from-scratch Python reproduction of

    Na, Moon, Yi, Whang, Hyun:
    "Regular Path Query Evaluation Sharing a Reduced Transitive Closure
    Based on Graph Reduction", ICDE 2022 (arXiv:2111.06918).

Quickstart::

    from repro import GraphDB

    db = GraphDB.open([
        (0, "d", 1), (1, "b", 2), (2, "c", 1), (2, "c", 3),
    ])
    result = db.execute("d.(b.c)+.c")   # a ResultSet
    pairs = result.pairs

The top-level package re-exports the most commonly used names; the full
surface lives in the subpackages:

* :mod:`repro.db`       -- the session facade: :class:`GraphDB`,
  :class:`PreparedQuery`, :class:`ResultSet`, the engine registry;
* :mod:`repro.graph`    -- graph data model, SCC, transitive closures;
* :mod:`repro.regex`    -- RPQ syntax, automata, language equality;
* :mod:`repro.rpq`      -- automaton / join evaluation primitives;
* :mod:`repro.core`     -- graph reduction, the RTC, the three engines;
* :mod:`repro.relalg`   -- the paper's relational-algebra expressions;
* :mod:`repro.datasets` -- R-MAT and Table-IV dataset stand-ins;
* :mod:`repro.workloads`-- the Section V-A multiple-RPQ-set generator;
* :mod:`repro.bench`    -- the experiment harness behind ``benchmarks/``;
* :mod:`repro.server`   -- the concurrent, sharing-aware query server
  (``repro serve`` / ``repro.server.Client``);
* :mod:`repro.cluster`  -- the sharded, replicated serving layer with
  thread- or process-based shard backends
  (``repro serve --shards N --replicas R [--backend process]``).
"""

from repro.core.batch_unit import BatchUnitOptions
from repro.core.engines import (
    FullSharingEngine,
    NoSharingEngine,
    RTCSharingEngine,
    make_engine,
)
from repro.core.reduction import edge_level_reduce, reduce_graph, vertex_level_reduce
from repro.core.rtc import ReducedTransitiveClosure, compute_rtc
from repro.db import (
    GraphDB,
    PreparedQuery,
    ResultSet,
    available_engines,
    create_engine,
    register_engine,
)
from repro.errors import (
    AdmissionError,
    DeadlineExpiredError,
    ERROR_CODES,
    EvaluationError,
    GraphError,
    ProtocolError,
    ReproError,
    RPQSyntaxError,
    ServerError,
    UnknownEngineError,
    UnknownLabelError,
)
from repro.graph.digraph import DiGraph
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.parser import parse
from repro.rpq.evaluate import eval_rpq

__version__ = "1.9.0"

__all__ = [
    "GraphDB",
    "PreparedQuery",
    "ResultSet",
    "register_engine",
    "available_engines",
    "create_engine",
    "LabeledMultigraph",
    "DiGraph",
    "parse",
    "eval_rpq",
    "RTCSharingEngine",
    "FullSharingEngine",
    "NoSharingEngine",
    "make_engine",
    "BatchUnitOptions",
    "ReducedTransitiveClosure",
    "compute_rtc",
    "edge_level_reduce",
    "vertex_level_reduce",
    "reduce_graph",
    "ERROR_CODES",
    "ReproError",
    "GraphError",
    "RPQSyntaxError",
    "EvaluationError",
    "UnknownLabelError",
    "UnknownEngineError",
    "ServerError",
    "AdmissionError",
    "DeadlineExpiredError",
    "ProtocolError",
    "__version__",
]
