"""repro -- Regular Path Query evaluation sharing a Reduced Transitive Closure.

A from-scratch Python reproduction of

    Na, Moon, Yi, Whang, Hyun:
    "Regular Path Query Evaluation Sharing a Reduced Transitive Closure
    Based on Graph Reduction", ICDE 2022 (arXiv:2111.06918).

Quickstart::

    from repro import LabeledMultigraph, RTCSharingEngine

    g = LabeledMultigraph.from_edges([
        (0, "d", 1), (1, "b", 2), (2, "c", 1), (2, "c", 3),
    ])
    engine = RTCSharingEngine(g)
    pairs = engine.evaluate("d.(b.c)+.c")

The top-level package re-exports the most commonly used names; the full
surface lives in the subpackages:

* :mod:`repro.graph`    -- graph data model, SCC, transitive closures;
* :mod:`repro.regex`    -- RPQ syntax, automata, language equality;
* :mod:`repro.rpq`      -- automaton / join evaluation primitives;
* :mod:`repro.core`     -- graph reduction, the RTC, the three engines;
* :mod:`repro.relalg`   -- the paper's relational-algebra expressions;
* :mod:`repro.datasets` -- R-MAT and Table-IV dataset stand-ins;
* :mod:`repro.workloads`-- the Section V-A multiple-RPQ-set generator;
* :mod:`repro.bench`    -- the experiment harness behind ``benchmarks/``.
"""

from repro.core.batch_unit import BatchUnitOptions
from repro.core.engines import (
    FullSharingEngine,
    NoSharingEngine,
    RTCSharingEngine,
    make_engine,
)
from repro.core.reduction import edge_level_reduce, reduce_graph, vertex_level_reduce
from repro.core.rtc import ReducedTransitiveClosure, compute_rtc
from repro.errors import (
    EvaluationError,
    GraphError,
    ReproError,
    RPQSyntaxError,
    UnknownLabelError,
)
from repro.graph.digraph import DiGraph
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.parser import parse
from repro.rpq.evaluate import eval_rpq

__version__ = "1.0.0"

__all__ = [
    "LabeledMultigraph",
    "DiGraph",
    "parse",
    "eval_rpq",
    "RTCSharingEngine",
    "FullSharingEngine",
    "NoSharingEngine",
    "make_engine",
    "BatchUnitOptions",
    "ReducedTransitiveClosure",
    "compute_rtc",
    "edge_level_reduce",
    "vertex_level_reduce",
    "reduce_graph",
    "ReproError",
    "GraphError",
    "RPQSyntaxError",
    "EvaluationError",
    "UnknownLabelError",
    "__version__",
]
