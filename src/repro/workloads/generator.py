"""Multiple-RPQ workload generation -- paper Section V-A.

The paper's controlled workload: every RPQ is one batch unit
``Pre . R{+} . Post`` where

* ``R`` is a concatenation of random labels of length 1 to 3 (a clause
  without Kleene closure) -- one ``R`` per multiple-RPQ set, so the set's
  queries share the closure as a common sub-query;
* ``Pre`` and ``Post`` are single random labels (simulating their effect);
* each multiple-RPQ set is generated at sizes {1, 2, 4, 6, 8, 10} and "a
  larger multiple RPQ set contains smaller multiple RPQ sets" -- i.e. the
  size-k set is the first k queries of the size-10 set.

:func:`generate_workload` reproduces that procedure against any graph's
label alphabet.  With ``require_nonempty`` the generator retries ``R``
draws whose evaluation result is empty (pointless sharing measurements);
that check evaluates ``R`` once per draw, so keep it off for huge graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from collections.abc import Sequence

from repro.errors import WorkloadError
from repro.graph.multigraph import LabeledMultigraph
from repro.rpq.evaluate import eval_rpq

__all__ = ["MultiRPQSet", "generate_workload", "PAPER_SET_SIZES"]

#: The set sizes of Experiment 2 (Fig. 14).
PAPER_SET_SIZES = (1, 2, 4, 6, 8, 10)


@dataclass(frozen=True)
class MultiRPQSet:
    """One multiple-RPQ set: a shared ``R`` and its batch-unit queries.

    ``queries`` has the maximum set size; :meth:`subset` yields the
    nested smaller sets the paper prescribes.
    """

    r: str
    r_length: int
    queries: tuple[str, ...]

    def subset(self, size: int) -> list[str]:
        """The first ``size`` queries (paper: larger sets contain smaller)."""
        if size < 1 or size > len(self.queries):
            raise ValueError(
                f"set size {size} out of range 1..{len(self.queries)}"
            )
        return list(self.queries[:size])

    def __len__(self) -> int:
        return len(self.queries)


def _draw_r(
    rng: Random,
    labels: Sequence[str],
    length: int,
    graph: LabeledMultigraph,
    require_nonempty: bool,
    max_attempts: int,
) -> str:
    for _attempt in range(max_attempts):
        r = ".".join(rng.choice(labels) for _ in range(length))
        if not require_nonempty:
            return r
        if eval_rpq(graph, r):
            return r
    raise WorkloadError(
        f"no length-{length} concatenation with non-empty result found in "
        f"{max_attempts} attempts"
    )


def generate_workload(
    graph: LabeledMultigraph,
    num_sets: int = 9,
    lengths: Sequence[int] = (1, 2, 3),
    max_rpqs: int = 10,
    seed: int = 0,
    closure_type: str = "+",
    require_nonempty: bool = False,
    max_attempts: int = 64,
) -> list[MultiRPQSet]:
    """Generate ``num_sets`` multiple-RPQ sets against ``graph``.

    ``R`` lengths cycle through ``lengths`` (the paper draws equally many
    per length); ``closure_type`` selects ``+`` (paper) or ``*``
    (extension).  Deterministic for a fixed ``seed``.
    """
    labels = sorted(graph.labels())
    if not labels:
        raise WorkloadError("graph has no labels; cannot generate a workload")
    if closure_type not in ("+", "*"):
        raise WorkloadError(f"closure type must be '+' or '*', got {closure_type!r}")
    rng = Random(seed)

    sets: list[MultiRPQSet] = []
    for set_index in range(num_sets):
        length = lengths[set_index % len(lengths)]
        r = _draw_r(rng, labels, length, graph, require_nonempty, max_attempts)
        queries = []
        for _query_index in range(max_rpqs):
            pre = rng.choice(labels)
            post = rng.choice(labels)
            queries.append(f"{pre}.({r}){closure_type}.{post}")
        sets.append(MultiRPQSet(r=r, r_length=length, queries=tuple(queries)))
    return sets
