"""Workload generation for multiple-RPQ experiments (paper Section V-A)."""

from repro.workloads.generator import PAPER_SET_SIZES, MultiRPQSet, generate_workload

__all__ = ["MultiRPQSet", "generate_workload", "PAPER_SET_SIZES"]
