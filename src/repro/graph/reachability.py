"""Reachability oracles over directed graphs.

The paper's related-work section (VI) observes that the result of ``R+`` on
``G`` equals the result of a *reachability query* on the edge-level reduced
graph ``G_R``.  This module provides two oracles over a :class:`DiGraph`:

* :class:`OnlineBfsOracle` -- no index; answers each query with a BFS.
  Mirrors the "traverse at run-time if needed" family [25], [26].
* :class:`SccIntervalOracle` -- index-only oracle in the spirit of [23],
  [24]: condenses the graph once, computes the DAG closure with bitsets,
  and answers queries with two dictionary lookups and one bit test.

Both answer *positive-length* reachability (``u`` reaches ``v`` via a path
of >= 1 edge), consistent with Kleene-plus semantics everywhere else in the
library.  They are used by the extension API
:meth:`repro.core.engines.RTCSharingEngine.exists` and by ablation benches.
"""

from __future__ import annotations

from collections import deque

from repro.graph.digraph import DiGraph
from repro.graph.scc import condense
from repro.graph.transitive_closure import dag_closure_bitsets

__all__ = ["OnlineBfsOracle", "SccIntervalOracle"]


class OnlineBfsOracle:
    """Index-free reachability: answer each query with a fresh BFS.

    Cheap to build (nothing to build), expensive to query -- the classic
    trade-off anchor for reachability-index papers.
    """

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    def reaches(self, source: object, target: object) -> bool:
        """True when a path of length >= 1 runs from ``source`` to ``target``."""
        graph = self._graph
        if source not in graph:
            return False
        seen: set[object] = set()
        queue: deque = deque(graph.successors(source))
        while queue:
            vertex = queue.popleft()
            if vertex == target:
                return True
            if vertex in seen:
                continue
            seen.add(vertex)
            for successor in graph.successors(vertex):
                if successor not in seen:
                    queue.append(successor)
        return False


class SccIntervalOracle:
    """Index-only reachability via the condensation closure.

    Building cost is one Tarjan pass plus the bitset DP; queries are O(1).
    The index is exactly the paper's RTC, which is why the RTC doubles as a
    reachability index for ``G_R``.
    """

    def __init__(self, graph: DiGraph) -> None:
        self._condensation = condense(graph)
        self._reach = dag_closure_bitsets(self._condensation)

    @property
    def index_size(self) -> int:
        """Total number of (scc, scc) pairs stored in the index."""
        return sum(mask.bit_count() for mask in self._reach.values())

    def reaches(self, source: object, target: object) -> bool:
        """True when a path of length >= 1 runs from ``source`` to ``target``."""
        scc_of = self._condensation.scc_of
        source_id = scc_of.get(source)
        target_id = scc_of.get(target)
        if source_id is None or target_id is None:
            return False
        return bool(self._reach[source_id] & (1 << target_id))
