"""Transitive-closure algorithms for directed graphs.

The paper's pipeline computes ``TC(Ḡ_R)`` -- the transitive closure of the
*condensation* of the edge-level reduced graph -- instead of ``TC(G_R)``
(Lemma 3 / Theorem 1).  This module supplies every building block plus the
historical algorithms the paper cites as prior art:

* :func:`tc_bfs`       -- per-vertex BFS, O(|V| * |E|).  This is the closure
  computation FullSharing performs on ``G_R`` to materialise ``R+_G``.
* :func:`tc_warshall`  -- O(|V|^3) dynamic programming; only sensible for
  tiny graphs, kept as an independent oracle for tests.
* :func:`dag_closure_bitsets` / :func:`scc_closure` -- reverse-topological
  DP over a :class:`~repro.graph.scc.Condensation` with Python-int bitsets
  (fast set union via ``|``).  This is the engine behind the RTC.
* :func:`tc_purdom`    -- Purdom's algorithm [12]: condense, compute the DAG
  closure, then expand SCC pairs into vertex pairs (Lemma 3 made explicit).
* :func:`tc_nuutila`   -- Nuutila's improvement [13]: interleaves closure
  computation with Tarjan's SCC detection in a single pass.

All pair-returning functions agree exactly; the test suite cross-checks
them on random graphs.  ``(v, v)`` belongs to the closure iff ``v`` lies on
a cycle (including a self-loop) -- the closure is of *paths of length >= 1*,
matching the paper's ``R+`` semantics.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation, condense

__all__ = [
    "tc_bfs",
    "tc_warshall",
    "dag_closure_bitsets",
    "scc_closure",
    "tc_purdom",
    "tc_nuutila",
    "transitive_closure_pairs",
    "iter_bits",
]


def tc_bfs(graph: DiGraph) -> set[tuple[object, object]]:
    """Transitive closure by BFS from every vertex -- O(|V| * |E|).

    The pair ``(v, v)`` is included only when ``v`` can reach itself through
    at least one edge (v lies on a cycle), matching Kleene-plus semantics.
    """
    closure: set[tuple[object, object]] = set()
    for start in graph.vertices():
        seen: set[object] = set()
        queue: deque = deque(graph.successors(start))
        while queue:
            vertex = queue.popleft()
            if vertex in seen:
                continue
            seen.add(vertex)
            closure.add((start, vertex))
            for successor in graph.successors(vertex):
                if successor not in seen:
                    queue.append(successor)
    return closure


def tc_warshall(graph: DiGraph) -> set[tuple[object, object]]:
    """Warshall's O(|V|^3) transitive closure.

    Kept as a slow, independent oracle: it shares no code with the
    SCC-based algorithms, so agreement on random graphs is strong evidence
    of correctness.
    """
    vertices = list(graph.vertices())
    index = {vertex: i for i, vertex in enumerate(vertices)}
    n = len(vertices)
    reach = [0] * n
    for source, target in graph.edges():
        reach[index[source]] |= 1 << index[target]
    for k in range(n):
        bit_k = 1 << k
        reach_k = reach[k]
        for i in range(n):
            if reach[i] & bit_k:
                reach[i] |= reach_k
    closure: set[tuple[object, object]] = set()
    for i in range(n):
        row = reach[i]
        source = vertices[i]
        for j in iter_bits(row):
            closure.add((source, vertices[j]))
    return closure


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indexes of the set bits of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def dag_closure_bitsets(condensation: Condensation) -> dict[int, int]:
    """Closure of the condensation as ``scc_id -> bitmask of reachable ids``.

    Relies on the id-order invariant of :func:`~repro.graph.scc.condense`:
    every condensation edge points from a higher id to a lower id, so a
    single ascending sweep is a reverse-topological DP.  A cyclic SCC
    (self-loop) reaches itself.
    """
    reach: dict[int, int] = {}
    dag = condensation.dag
    for scc_id in range(condensation.num_sccs):
        mask = 0
        for successor in dag.successors(scc_id):
            if successor == scc_id:
                mask |= 1 << scc_id
            else:
                mask |= (1 << successor) | reach[successor]
        # A vertex on a cycle through *other* SCCs cannot exist (they would
        # be one SCC), so self-reachability comes only from the self-loop.
        reach[scc_id] = mask
    return reach


def scc_closure(condensation: Condensation) -> dict[int, frozenset[int]]:
    """Closure of the condensation as ``scc_id -> frozenset of ids``."""
    bitsets = dag_closure_bitsets(condensation)
    return {
        scc_id: frozenset(iter_bits(mask)) for scc_id, mask in bitsets.items()
    }


def _expand_scc_pairs(
    condensation: Condensation, bitsets: dict[int, int]
) -> set[tuple[object, object]]:
    """Lemma 3 expansion: SCC-level closure -> vertex-level closure pairs."""
    closure: set[tuple[object, object]] = set()
    members = condensation.members
    for source_id, mask in bitsets.items():
        source_members = members[source_id]
        for target_id in iter_bits(mask):
            for source in source_members:
                for target in members[target_id]:
                    closure.add((source, target))
    return closure


def tc_purdom(graph: DiGraph) -> set[tuple[object, object]]:
    """Purdom's transitive-closure algorithm [12].

    Condense the graph, compute the closure of the condensation, then take
    the Cartesian product of member sets for every closed SCC pair --
    exactly the construction Lemma 3 formalises.
    """
    condensation = condense(graph)
    bitsets = dag_closure_bitsets(condensation)
    return _expand_scc_pairs(condensation, bitsets)


def tc_nuutila(graph: DiGraph) -> set[tuple[object, object]]:
    """Nuutila's transitive-closure algorithm [13].

    Interleaves the closure DP with Tarjan's SCC detection: when Tarjan
    finishes a component, every component reachable from it is already
    finished (components complete in reverse topological order), so its
    successor set can be unioned immediately -- no separate condensation
    pass.  Implemented iteratively.
    """
    index_of: dict[object, int] = {}
    lowlink: dict[object, int] = {}
    on_stack: set[object] = set()
    stack: list[object] = []
    scc_of: dict[object, int] = {}
    members: list[list[object]] = []
    reach: list[int] = []  # scc id -> bitmask of reachable scc ids
    counter = 0

    for root in graph.vertices():
        if root in index_of:
            continue
        work: list[tuple[object, Iterator]] = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)

        while work:
            vertex, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    if index_of[successor] < lowlink[vertex]:
                        lowlink[vertex] = index_of[successor]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[vertex] < lowlink[parent]:
                    lowlink[parent] = lowlink[vertex]
            if lowlink[vertex] == index_of[vertex]:
                scc_id = len(members)
                component: list[object] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc_of[member] = scc_id
                    component.append(member)
                    if member == vertex:
                        break
                members.append(component)
                # Interleaved closure step: union the (already complete)
                # reach sets of adjacent components.
                mask = 0
                cyclic = len(component) > 1
                for member in component:
                    for successor in graph.successors(member):
                        if successor == member:
                            cyclic = True
                            continue
                        successor_id = scc_of[successor]
                        if successor_id == scc_id:
                            cyclic = True
                        else:
                            mask |= (1 << successor_id) | reach[successor_id]
                if cyclic:
                    mask |= 1 << scc_id
                reach.append(mask)

    closure: set[tuple[object, object]] = set()
    for source_id, mask in enumerate(reach):
        for target_id in iter_bits(mask):
            for source in members[source_id]:
                for target in members[target_id]:
                    closure.add((source, target))
    return closure


_ALGORITHMS = {
    "bfs": tc_bfs,
    "warshall": tc_warshall,
    "purdom": tc_purdom,
    "nuutila": tc_nuutila,
}


def transitive_closure_pairs(
    graph: DiGraph, algorithm: str = "purdom"
) -> set[tuple[object, object]]:
    """Dispatch to one of the closure algorithms by name.

    ``algorithm`` is one of ``"bfs"``, ``"warshall"``, ``"purdom"``,
    ``"nuutila"``.  Purdom is the default: it is the SCC-based method the
    paper builds on and the fastest on graphs with non-trivial SCCs.
    """
    try:
        implementation = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown transitive-closure algorithm {algorithm!r}; "
            f"expected one of {sorted(_ALGORITHMS)}"
        ) from None
    return implementation(graph)
