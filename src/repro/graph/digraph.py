"""Unlabeled simple directed graph -- the target of the paper's reductions.

Both reduction products of Section III are plain directed graphs:

* ``G_R``  (edge-level reduction): one unlabeled edge per vertex pair
  connected by a path satisfying ``R`` -- a *simple* graph because parallel
  paths collapse onto one edge;
* ``Ḡ_R`` (vertex-level reduction): the condensation of ``G_R`` where each
  SCC becomes one vertex; self-loops mark cyclic SCCs.

:class:`DiGraph` keeps successor and predecessor adjacency sets.  Vertices
are arbitrary hashable objects (the library uses ints for ``G_R`` and SCC
ids for ``Ḡ_R``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import VertexNotFoundError

__all__ = ["DiGraph"]


class DiGraph:
    """A simple directed graph with O(1) edge insertion and membership.

    >>> g = DiGraph.from_pairs([(0, 1), (1, 2), (2, 0)])
    >>> sorted(g.successors(0))
    [1]
    >>> g.has_edge(2, 0)
    True
    """

    __slots__ = ("_succ", "_pred", "_vertices", "_num_edges")

    def __init__(self) -> None:
        self._succ: dict[object, set[object]] = {}
        self._pred: dict[object, set[object]] = {}
        self._vertices: set[object] = set()
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: object) -> None:
        """Add an isolated vertex (no-op when present)."""
        self._vertices.add(vertex)

    def add_edge(self, source: object, target: object) -> bool:
        """Add the edge ``source -> target``; return True when it was new.

        Duplicate insertions are silently ignored (the graph is simple),
        which is exactly the collapse behaviour the edge-level reduction
        needs: many satisfying paths map onto one reduced edge.
        """
        successors = self._succ.setdefault(source, set())
        if target in successors:
            return False
        successors.add(target)
        self._pred.setdefault(target, set()).add(source)
        self._vertices.add(source)
        self._vertices.add(target)
        self._num_edges += 1
        return True

    def add_edges(self, pairs: Iterable[tuple[object, object]]) -> None:
        """Add many ``(source, target)`` pairs."""
        for source, target in pairs:
            self.add_edge(source, target)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[object, object]]) -> "DiGraph":
        """Build a graph from an iterable of edge pairs."""
        graph = cls()
        graph.add_edges(pairs)
        return graph

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (isolated ones included)."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self._num_edges

    def vertices(self) -> Iterator[object]:
        """Iterate over the vertex set."""
        return iter(self._vertices)

    def edges(self) -> Iterator[tuple[object, object]]:
        """Iterate over all edges as ``(source, target)`` pairs."""
        for source, successors in self._succ.items():
            for target in successors:
                yield (source, target)

    def edge_set(self) -> set[tuple[object, object]]:
        """All edges materialised as a set of pairs."""
        return set(self.edges())

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def has_edge(self, source: object, target: object) -> bool:
        """True when the edge ``source -> target`` exists."""
        return target in self._succ.get(source, ())

    def has_self_loop(self, vertex: object) -> bool:
        """True when ``vertex`` has an edge to itself."""
        return vertex in self._succ.get(vertex, ())

    def successors(self, vertex: object) -> frozenset:
        """Vertices reachable from ``vertex`` by one edge."""
        successors = self._succ.get(vertex)
        return frozenset(successors) if successors else frozenset()

    def predecessors(self, vertex: object) -> frozenset:
        """Vertices with an edge into ``vertex``."""
        predecessors = self._pred.get(vertex)
        return frozenset(predecessors) if predecessors else frozenset()

    def out_degree(self, vertex: object) -> int:
        """Number of out-edges of ``vertex``."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        return len(self._succ.get(vertex, ()))

    def in_degree(self, vertex: object) -> int:
        """Number of in-edges of ``vertex``."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        return len(self._pred.get(vertex, ()))

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """A new graph with all edges flipped."""
        reversed_graph = DiGraph()
        for vertex in self._vertices:
            reversed_graph.add_vertex(vertex)
        for source, target in self.edges():
            reversed_graph.add_edge(target, source)
        return reversed_graph

    def subgraph(self, vertices: Iterable[object]) -> "DiGraph":
        """The induced subgraph on ``vertices``."""
        keep = set(vertices)
        sub = DiGraph()
        for vertex in keep:
            if vertex in self._vertices:
                sub.add_vertex(vertex)
        for source, target in self.edges():
            if source in keep and target in keep:
                sub.add_edge(source, target)
        return sub

    def copy(self) -> "DiGraph":
        """An independent deep copy."""
        duplicate = DiGraph()
        for vertex in self._vertices:
            duplicate.add_vertex(vertex)
        duplicate.add_edges(self.edges())
        return duplicate

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._vertices == other._vertices and self.edge_set() == other.edge_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
