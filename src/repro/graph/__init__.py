"""Graph substrate: the paper's data model and every reduction target.

Public surface:

* :class:`LabeledMultigraph` -- the edge-labeled directed multigraph
  ``G = (V, E, f, Sigma, l)`` RPQs run against (paper Section II-A);
* :class:`DiGraph` -- unlabeled simple digraph, the type of both reduction
  products ``G_R`` and ``Ḡ_R``;
* SCC / condensation (:func:`tarjan_scc`, :func:`kosaraju_scc`,
  :func:`condense`, :class:`Condensation`) -- the vertex-level reduction;
* transitive-closure algorithms (:func:`tc_bfs`, :func:`tc_warshall`,
  :func:`tc_purdom`, :func:`tc_nuutila`, :func:`transitive_closure_pairs`,
  :func:`scc_closure`, :func:`dag_closure_bitsets`);
* reachability oracles (:class:`OnlineBfsOracle`, :class:`SccIntervalOracle`);
* edge-list IO (:func:`load_edge_list`, :func:`dump_edge_list`);
* deterministic builders (:func:`paper_figure1_graph`, ...).
"""

from repro.graph.builders import (
    digraph_cycle,
    digraph_path,
    labeled_complete,
    labeled_cycle,
    labeled_path,
    layered_graph,
    paper_figure1_graph,
)
from repro.graph.digraph import DiGraph
from repro.graph.io import dump_edge_list, load_edge_list
from repro.graph.multigraph import LabeledMultigraph
from repro.graph.reachability import OnlineBfsOracle, SccIntervalOracle
from repro.graph.scc import Condensation, condense, kosaraju_scc, tarjan_scc
from repro.graph.transitive_closure import (
    dag_closure_bitsets,
    iter_bits,
    scc_closure,
    tc_bfs,
    tc_nuutila,
    tc_purdom,
    tc_warshall,
    transitive_closure_pairs,
)

__all__ = [
    "LabeledMultigraph",
    "DiGraph",
    "Condensation",
    "condense",
    "tarjan_scc",
    "kosaraju_scc",
    "tc_bfs",
    "tc_warshall",
    "tc_purdom",
    "tc_nuutila",
    "transitive_closure_pairs",
    "scc_closure",
    "dag_closure_bitsets",
    "iter_bits",
    "OnlineBfsOracle",
    "SccIntervalOracle",
    "load_edge_list",
    "dump_edge_list",
    "paper_figure1_graph",
    "labeled_path",
    "labeled_cycle",
    "labeled_complete",
    "layered_graph",
    "digraph_path",
    "digraph_cycle",
]
