"""Serialisation of labeled multigraphs to and from edge-list text files.

The on-disk format is one edge per line::

    <source> <label> <target>

Fields are whitespace-separated; lines starting with ``#`` and blank lines
are ignored.  Vertices are parsed as integers when they look like integers
and kept as strings otherwise, so both the synthetic datasets (int VIDs)
and RDF-ish datasets (string IRIs) round-trip.

This mirrors the plain edge-list dumps the paper's real datasets (Robots,
Advogato, Youtube) ship as.
"""

from __future__ import annotations

import io
from pathlib import Path
from collections.abc import Iterable, Iterator

from repro.errors import GraphFormatError
from repro.graph.multigraph import LabeledMultigraph

__all__ = ["load_edge_list", "dump_edge_list", "parse_edge_lines", "format_edge_lines"]


def _parse_vertex(token: str) -> object:
    """Integers stay integers; everything else stays a string."""
    try:
        return int(token)
    except ValueError:
        return token


def parse_edge_lines(lines: Iterable[str]) -> Iterator[tuple[object, str, object]]:
    """Yield ``(source, label, target)`` triples from edge-list lines."""
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 3:
            raise GraphFormatError(
                f"line {line_number}: expected 'source label target', got {raw!r}"
            )
        source, label, target = fields
        yield (_parse_vertex(source), label, _parse_vertex(target))


def load_edge_list(path: str | Path) -> LabeledMultigraph:
    """Read a labeled multigraph from an edge-list file."""
    graph = LabeledMultigraph()
    with open(path, "r", encoding="utf-8") as handle:
        for source, label, target in parse_edge_lines(handle):
            graph.add_edge_if_absent(source, label, target)
    return graph


def format_edge_lines(graph: LabeledMultigraph) -> Iterator[str]:
    """Yield the edge-list lines for ``graph`` in deterministic order."""
    triples = sorted(graph.edges(), key=lambda edge: (str(edge[0]), edge[1], str(edge[2])))
    for source, label, target in triples:
        yield f"{source} {label} {target}\n"


def dump_edge_list(graph: LabeledMultigraph, path: str | Path) -> None:
    """Write ``graph`` to an edge-list file (deterministic line order)."""
    buffer = io.StringIO()
    for line in format_edge_lines(graph):
        buffer.write(line)
    Path(path).write_text(buffer.getvalue(), encoding="utf-8")
