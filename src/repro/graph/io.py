"""Serialisation of labeled multigraphs to and from edge-list text files.

The on-disk format is one edge per line::

    <source> <label> <target>

Fields are whitespace-separated; lines starting with ``#`` and blank lines
are ignored.

**The int-vs-string coercion rule.**  The format is untyped, so vertex
tokens are coerced on load: a token that parses as a Python ``int``
*becomes* an ``int``, everything else stays a string.  Both the synthetic
datasets (int VIDs) and RDF-ish datasets (string IRIs) round-trip under
this rule -- but a *string* vertex that looks like an integer (``"123"``)
would silently come back as ``int`` ``123``, and tokens containing
whitespace would shatter into extra fields.  Rather than corrupt data,
:func:`format_edge_lines` / :func:`dump_edge_list` refuse to serialise
such graphs: they raise :class:`~repro.errors.GraphFormatError` for

* vertices that are neither ``int`` nor ``str`` (including ``bool``);
* string vertices that are empty, contain whitespace, start with ``#``
  (the comment marker), or parse as an integer;
* labels that are not ``str``, are empty, or contain whitespace.

Graphs carrying such tokens need a richer transport -- e.g. the cluster's
``shard_loader`` spawn-time callable instead of an edge-list dump.
Labels are *never* coerced (``"123"`` is a fine label and loads back as
the string ``"123"``).

This mirrors the plain edge-list dumps the paper's real datasets (Robots,
Advogato, Youtube) ship as.
"""

from __future__ import annotations

import io
from pathlib import Path
from collections.abc import Iterable, Iterator

from repro.errors import GraphFormatError
from repro.graph.multigraph import LabeledMultigraph

__all__ = ["load_edge_list", "dump_edge_list", "parse_edge_lines", "format_edge_lines"]


def _parse_vertex(token: str) -> object:
    """Integers stay integers; everything else stays a string."""
    try:
        return int(token)
    except ValueError:
        return token


def parse_edge_lines(lines: Iterable[str]) -> Iterator[tuple[object, str, object]]:
    """Yield ``(source, label, target)`` triples from edge-list lines."""
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if len(fields) != 3:
            raise GraphFormatError(
                f"line {line_number}: expected 'source label target', got {raw!r}"
            )
        source, label, target = fields
        yield (_parse_vertex(source), label, _parse_vertex(target))


def load_edge_list(path: str | Path) -> LabeledMultigraph:
    """Read a labeled multigraph from an edge-list file."""
    graph = LabeledMultigraph()
    with open(path, "r", encoding="utf-8") as handle:
        for source, label, target in parse_edge_lines(handle):
            graph.add_edge_if_absent(source, label, target)
    return graph


def _vertex_token(vertex: object) -> str:
    """The wire token of a vertex, or raise if it cannot round-trip."""
    if isinstance(vertex, bool) or not isinstance(vertex, (int, str)):
        raise GraphFormatError(
            f"vertex {vertex!r} ({type(vertex).__name__}) is not "
            "serialisable as an edge-list token; only int and str vertices "
            "round-trip"
        )
    if isinstance(vertex, int):
        return str(vertex)
    if not vertex or any(ch.isspace() for ch in vertex):
        raise GraphFormatError(
            f"string vertex {vertex!r} is empty or contains whitespace and "
            "cannot be written as a whitespace-separated edge-list token"
        )
    if vertex.startswith("#"):
        raise GraphFormatError(
            f"string vertex {vertex!r} starts with '#' (the comment marker) "
            "and would be skipped on load"
        )
    try:
        int(vertex)
    except ValueError:
        return vertex
    raise GraphFormatError(
        f"string vertex {vertex!r} looks like an integer and would load "
        "back as int (see the module's int-vs-string coercion rule)"
    )


def _label_token(label: object) -> str:
    """The wire token of a label, or raise if it cannot round-trip."""
    if not isinstance(label, str):
        raise GraphFormatError(
            f"label {label!r} ({type(label).__name__}) is not serialisable; "
            "edge-list labels are strings"
        )
    if not label or any(ch.isspace() for ch in label):
        raise GraphFormatError(
            f"label {label!r} is empty or contains whitespace and cannot be "
            "written as a whitespace-separated edge-list token"
        )
    return label


def format_edge_lines(graph: LabeledMultigraph) -> Iterator[str]:
    """Yield the edge-list lines for ``graph`` in deterministic order.

    Raises :class:`~repro.errors.GraphFormatError` for any vertex or
    label the format cannot round-trip (see the module docstring).
    """
    triples = sorted(graph.edges(), key=lambda edge: (str(edge[0]), str(edge[1]), str(edge[2])))
    for source, label, target in triples:
        yield (
            f"{_vertex_token(source)} {_label_token(label)} "
            f"{_vertex_token(target)}\n"
        )


def dump_edge_list(graph: LabeledMultigraph, path: str | Path) -> None:
    """Write ``graph`` to an edge-list file (deterministic line order).

    The lines are buffered first, so an unserialisable token
    (:class:`~repro.errors.GraphFormatError`) leaves the target file
    untouched.
    """
    buffer = io.StringIO()
    for line in format_edge_lines(graph):
        buffer.write(line)
    Path(path).write_text(buffer.getvalue(), encoding="utf-8")
