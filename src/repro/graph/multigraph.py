"""Edge-labeled directed multigraph -- the paper's data model (Section II-A).

The paper defines the RPQ data model as a 5-tuple ``G = (V, E, f, Sigma, l)``:
a set of vertices, a set of directed edges, an incidence function mapping each
edge to an ordered vertex pair, a label alphabet, and a labeling function.
Parallel edges between the same ordered vertex pair are allowed **only when
their labels differ**, so an edge is fully identified by the triple
``(source, label, target)``.

:class:`LabeledMultigraph` stores three indexes so that every access pattern
used by the RPQ evaluators is O(1)-ish:

* ``_out``:  ``source -> label -> set(targets)`` -- forward traversal during
  automaton evaluation;
* ``_in``:   ``target -> label -> set(sources)`` -- backward traversal (used
  by the rare-label join evaluator and by reverse reachability);
* ``_by_label``: ``label -> set((source, target))`` -- whole-label scans used
  by the label-join evaluator and by workload statistics.

Alongside the set indexes the graph maintains the bit-parallel kernel's
view of the same adjacency: a :class:`~repro.bitset.VertexInterner`
assigning every vertex a dense, never-reused int id, plus forward and
reverse **bitmap adjacency rows** (``label -> src_id -> dst bitmap`` and
``label -> dst_id -> src bitmap``, one Python big-int per row).  The
rows are updated incrementally by :meth:`add_edge` / :meth:`remove_edge`
so :mod:`repro.bitset.kernel` can sweep them without any rebuild step.

Vertices may be any hashable object; the library and the paper use small
integers throughout, which keeps the indexes compact.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import TypeVar

from repro.bitset.interner import VertexInterner
from repro.errors import GraphError, VertexNotFoundError

Vertex = TypeVar("Vertex", bound=Hashable)

__all__ = ["LabeledMultigraph", "Edge"]

Edge = tuple  # (source, label, target); alias for documentation purposes


class LabeledMultigraph:
    """An edge-labeled directed multigraph ``G = (V, E, f, Sigma, l)``.

    >>> g = LabeledMultigraph()
    >>> g.add_edge(0, "a", 1)
    >>> g.add_edge(0, "b", 1)      # parallel edge, different label: allowed
    >>> g.add_edge(1, "a", 0)
    >>> sorted(g.targets(0, "a"))
    [1]
    >>> g.num_edges
    3
    """

    __slots__ = (
        "_out",
        "_in",
        "_by_label",
        "_vertices",
        "_num_edges",
        "_interner",
        "_fwd",
        "_rev",
    )

    def __init__(self) -> None:
        self._out: dict[object, dict[str, set[object]]] = {}
        self._in: dict[object, dict[str, set[object]]] = {}
        self._by_label: dict[str, set[tuple[object, object]]] = {}
        self._vertices: set[object] = set()
        self._num_edges = 0
        self._interner = VertexInterner()
        # label -> src_id -> dst bitmap / label -> dst_id -> src bitmap
        self._fwd: dict[str, dict[int, int]] = {}
        self._rev: dict[str, dict[int, int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: object) -> None:
        """Add an isolated vertex (a no-op if it already exists)."""
        self._vertices.add(vertex)
        self._interner.intern(vertex)

    def add_edge(self, source: object, label: str, target: object) -> None:
        """Add the edge ``e(source, label, target)``.

        Raises :class:`~repro.errors.GraphError` if the identical labeled
        edge already exists: the data model forbids two parallel edges with
        the same label.
        """
        if not isinstance(label, str):
            raise GraphError(f"edge labels must be strings, got {label!r}")
        targets = self._out.setdefault(source, {}).setdefault(label, set())
        if target in targets:
            raise GraphError(
                f"duplicate edge ({source!r}, {label!r}, {target!r}); the data "
                "model allows parallel edges only with distinct labels"
            )
        targets.add(target)
        self._in.setdefault(target, {}).setdefault(label, set()).add(source)
        self._by_label.setdefault(label, set()).add((source, target))
        self._vertices.add(source)
        self._vertices.add(target)
        source_id = self._interner.intern(source)
        target_id = self._interner.intern(target)
        fwd = self._fwd.setdefault(label, {})
        fwd[source_id] = fwd.get(source_id, 0) | (1 << target_id)
        rev = self._rev.setdefault(label, {})
        rev[target_id] = rev.get(target_id, 0) | (1 << source_id)
        self._num_edges += 1

    def add_edges(self, edges: Iterable[tuple[object, str, object]]) -> None:
        """Add many ``(source, label, target)`` triples."""
        for source, label, target in edges:
            self.add_edge(source, label, target)

    def add_edge_if_absent(self, source: object, label: str, target: object) -> bool:
        """Add the edge unless it already exists; return True when added.

        Random generators (R-MAT) produce duplicate triples; this is the
        tolerant insertion they use.
        """
        targets = self._out.get(source, {}).get(label)
        if targets is not None and target in targets:
            return False
        self.add_edge(source, label, target)
        return True

    def remove_edge(self, source: object, label: str, target: object) -> None:
        """Remove the edge ``e(source, label, target)``.

        Endpoint vertices stay in the graph even when they become
        isolated (``|V|`` is unchanged, matching the data model where
        ``V`` is independent of ``E``).  Raises
        :class:`~repro.errors.GraphError` when the edge is absent.
        """
        targets = self._out.get(source, {}).get(label)
        if targets is None or target not in targets:
            raise GraphError(
                f"edge ({source!r}, {label!r}, {target!r}) is not in the graph"
            )
        targets.discard(target)
        if not targets:
            del self._out[source][label]
            if not self._out[source]:
                del self._out[source]
        sources = self._in[target][label]
        sources.discard(source)
        if not sources:
            del self._in[target][label]
            if not self._in[target]:
                del self._in[target]
        by_label = self._by_label[label]
        by_label.discard((source, target))
        if not by_label:
            del self._by_label[label]
        source_id = self._interner.id_of(source)
        target_id = self._interner.id_of(target)
        fwd = self._fwd[label]
        remaining = fwd[source_id] & ~(1 << target_id)
        if remaining:
            fwd[source_id] = remaining
        else:
            del fwd[source_id]
            if not fwd:
                del self._fwd[label]
        rev = self._rev[label]
        remaining = rev[target_id] & ~(1 << source_id)
        if remaining:
            rev[target_id] = remaining
        else:
            del rev[target_id]
            if not rev:
                del self._rev[label]
        self._num_edges -= 1

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[object, str, object]]
    ) -> "LabeledMultigraph":
        """Build a graph from an iterable of ``(source, label, target)``."""
        graph = cls()
        graph.add_edges(edges)
        return graph

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``|V|`` -- number of vertices, including isolated ones."""
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        """``|E|`` -- number of labeled edges."""
        return self._num_edges

    @property
    def num_labels(self) -> int:
        """``|Sigma|`` -- size of the label alphabet actually used."""
        return len(self._by_label)

    def vertices(self) -> Iterator[object]:
        """Iterate over all vertices."""
        return iter(self._vertices)

    def labels(self) -> Iterator[str]:
        """Iterate over the label alphabet Sigma."""
        return iter(self._by_label)

    def edges(self) -> Iterator[tuple[object, str, object]]:
        """Iterate over all edges as ``(source, label, target)`` triples."""
        for source, by_label in self._out.items():
            for label, targets in by_label.items():
                for target in targets:
                    yield (source, label, target)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def has_edge(self, source: object, label: str, target: object) -> bool:
        """True when the exact labeled edge exists."""
        return target in self._out.get(source, {}).get(label, ())

    def has_vertex(self, vertex: object) -> bool:
        """True when the vertex exists (possibly isolated)."""
        return vertex in self._vertices

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def out_edges(self, vertex: object) -> Iterator[tuple[str, object]]:
        """Iterate ``(label, target)`` over the out-edges of ``vertex``."""
        for label, targets in self._out.get(vertex, {}).items():
            for target in targets:
                yield (label, target)

    def in_edges(self, vertex: object) -> Iterator[tuple[str, object]]:
        """Iterate ``(label, source)`` over the in-edges of ``vertex``."""
        for label, sources in self._in.get(vertex, {}).items():
            for source in sources:
                yield (label, source)

    def out_labels(self, vertex: object) -> Iterator[str]:
        """Labels that appear on at least one out-edge of ``vertex``."""
        return iter(self._out.get(vertex, {}))

    _EMPTY_OUT: dict = {}

    def out_map(self, vertex: object) -> dict:
        """Read-only view ``label -> set(targets)`` of ``vertex``'s out-edges.

        Hot-path accessor for the automaton evaluators; callers must not
        mutate the returned mapping.
        """
        return self._out.get(vertex, self._EMPTY_OUT)

    def targets(self, vertex: object, label: str) -> frozenset:
        """Set of targets reachable from ``vertex`` via one ``label`` edge."""
        targets = self._out.get(vertex, {}).get(label)
        return frozenset(targets) if targets else frozenset()

    def sources(self, vertex: object, label: str) -> frozenset:
        """Set of sources with a ``label`` edge into ``vertex``."""
        sources = self._in.get(vertex, {}).get(label)
        return frozenset(sources) if sources else frozenset()

    def edges_with_label(self, label: str) -> frozenset:
        """All ``(source, target)`` pairs connected by an edge labeled ``label``."""
        pairs = self._by_label.get(label)
        return frozenset(pairs) if pairs else frozenset()

    def label_count(self, label: str) -> int:
        """Number of edges carrying ``label`` (selectivity statistic)."""
        return len(self._by_label.get(label, ()))

    def out_degree(self, vertex: object) -> int:
        """Total number of out-edges of ``vertex`` across all labels."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        return sum(len(t) for t in self._out.get(vertex, {}).values())

    def in_degree(self, vertex: object) -> int:
        """Total number of in-edges of ``vertex`` across all labels."""
        if vertex not in self._vertices:
            raise VertexNotFoundError(vertex)
        return sum(len(s) for s in self._in.get(vertex, {}).values())

    def average_degree_per_label(self) -> float:
        """The paper's x-axis statistic ``|E| / (|V| * |Sigma|)``.

        Returns 0.0 for a graph with no vertices or no labels.
        """
        if not self._vertices or not self._by_label:
            return 0.0
        return self._num_edges / (len(self._vertices) * len(self._by_label))

    # ------------------------------------------------------------------
    # bit-parallel kernel view
    # ------------------------------------------------------------------
    @property
    def interner(self) -> VertexInterner:
        """The graph's dense vertex-id space (ids stable across updates)."""
        return self._interner

    def seed_interner(self, vertices: Iterable[object]) -> None:
        """Pre-assign ids in the given order (snapshot warm-start path).

        Must run before edges are loaded so restored bitmaps and caches
        keyed on ids stay meaningful; vertices are added to ``V`` as a
        side effect, matching how snapshots record isolated vertices.
        """
        for vertex in vertices:
            self.add_vertex(vertex)

    _EMPTY_ROWS: dict = {}

    def bit_rows(self, label: str) -> dict[int, int]:
        """Read-only ``src_id -> dst bitmap`` rows for one label.

        Hot-path accessor for :mod:`repro.bitset.kernel`; callers must
        not mutate the returned mapping.
        """
        return self._fwd.get(label, self._EMPTY_ROWS)

    def rev_bit_rows(self, label: str) -> dict[int, int]:
        """Read-only ``dst_id -> src bitmap`` reverse rows for one label."""
        return self._rev.get(label, self._EMPTY_ROWS)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "LabeledMultigraph":
        """A new graph with every edge direction flipped (labels kept)."""
        reversed_graph = LabeledMultigraph()
        for vertex in self._vertices:
            reversed_graph.add_vertex(vertex)
        for source, label, target in self.edges():
            reversed_graph.add_edge(target, label, source)
        return reversed_graph

    def subgraph(self, vertices: Iterable[object]) -> "LabeledMultigraph":
        """The induced subgraph on ``vertices`` (edges with both ends kept)."""
        keep = set(vertices)
        sub = LabeledMultigraph()
        for vertex in keep:
            if vertex in self._vertices:
                sub.add_vertex(vertex)
        for source, label, target in self.edges():
            if source in keep and target in keep:
                sub.add_edge(source, label, target)
        return sub

    def copy(self) -> "LabeledMultigraph":
        """An independent deep copy of the graph."""
        duplicate = LabeledMultigraph()
        for vertex in self._vertices:
            duplicate.add_vertex(vertex)
        duplicate.add_edges(self.edges())
        return duplicate

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabeledMultigraph):
            return NotImplemented
        return self._vertices == other._vertices and set(self.edges()) == set(
            other.edges()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabeledMultigraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|Sigma|={self.num_labels})"
        )
