"""Deterministic graph constructors used by tests, examples and docs.

Includes :func:`paper_figure1_graph`, a faithful transcription of the
running example graph of the paper (Fig. 1), against which every worked
example of the paper (Examples 1-6) is asserted in the test suite.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graph.digraph import DiGraph
from repro.graph.multigraph import LabeledMultigraph

__all__ = [
    "paper_figure1_graph",
    "labeled_path",
    "labeled_cycle",
    "labeled_complete",
    "layered_graph",
    "digraph_path",
    "digraph_cycle",
]


def paper_figure1_graph() -> LabeledMultigraph:
    """The edge-labeled directed multigraph of the paper's Fig. 1.

    Vertices ``v0..v9``; the edge set is read off the figure and validated
    against the paper's worked examples:

    * Example 3: the paths satisfying ``b·c`` are exactly ``(v2,v4), (v2,v6),
      (v3,v5), (v4,v2), (v5,v3)``;
    * Example 4: ``TC(G_{b·c})`` has the ten listed pairs;
    * Example 2: ``(d·(b·c)+·c)_G = {(v7,v5), (v7,v3)}``.
    """
    return LabeledMultigraph.from_edges(
        [
            (0, "a", 2),
            (7, "a", 0),
            (1, "c", 2),
            (2, "b", 3),
            (2, "b", 5),
            (2, "c", 5),
            (3, "b", 2),
            (4, "b", 1),
            (5, "c", 4),
            (5, "c", 6),
            (5, "b", 6),
            (6, "c", 3),
            (7, "d", 4),
            (7, "b", 8),
            (8, "e", 9),
            (9, "f", 8),
        ]
    )


def labeled_path(length: int, label: str = "a") -> LabeledMultigraph:
    """A path ``0 -label-> 1 -label-> ... -label-> length``."""
    graph = LabeledMultigraph()
    graph.add_vertex(0)
    for i in range(length):
        graph.add_edge(i, label, i + 1)
    return graph


def labeled_cycle(size: int, label: str = "a") -> LabeledMultigraph:
    """A directed cycle of ``size`` vertices, all edges labeled ``label``."""
    if size < 1:
        raise ValueError("cycle size must be >= 1")
    graph = LabeledMultigraph()
    for i in range(size):
        graph.add_edge(i, label, (i + 1) % size)
    return graph


def labeled_complete(size: int, labels: Sequence[str] = ("a",)) -> LabeledMultigraph:
    """A complete digraph (no self-loops) with every label on every arc."""
    graph = LabeledMultigraph()
    for i in range(size):
        graph.add_vertex(i)
        for j in range(size):
            if i == j:
                continue
            for label in labels:
                graph.add_edge(i, label, j)
    return graph


def layered_graph(layers: Sequence[int], labels: Sequence[str]) -> LabeledMultigraph:
    """A DAG of consecutive complete bipartite layers.

    ``layers[k]`` is the width of layer ``k``; all edges between layer ``k``
    and ``k+1`` carry ``labels[k % len(labels)]``.  Useful for exercising
    ``Pre·R+·Post`` workloads with controlled fan-out and no cycles.
    """
    graph = LabeledMultigraph()
    offsets = [0]
    for width in layers:
        offsets.append(offsets[-1] + width)
    for vertex in range(offsets[-1]):
        graph.add_vertex(vertex)
    for k in range(len(layers) - 1):
        label = labels[k % len(labels)]
        for i in range(offsets[k], offsets[k + 1]):
            for j in range(offsets[k + 1], offsets[k + 2]):
                graph.add_edge(i, label, j)
    return graph


def digraph_path(length: int) -> DiGraph:
    """An unlabeled path ``0 -> 1 -> ... -> length``."""
    graph = DiGraph()
    graph.add_vertex(0)
    for i in range(length):
        graph.add_edge(i, i + 1)
    return graph


def digraph_cycle(size: int) -> DiGraph:
    """An unlabeled directed cycle on ``size`` vertices."""
    if size < 1:
        raise ValueError("cycle size must be >= 1")
    graph = DiGraph()
    for i in range(size):
        graph.add_edge(i, (i + 1) % size)
    return graph
