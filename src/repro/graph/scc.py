"""Strongly connected components and the condensation (vertex-level reduction).

The paper's vertex-level reduction (Section III-B) maps every SCC of the
edge-level reduced graph ``G_R`` to a single vertex of ``Ḡ_R``.  The paper
uses Tarjan's algorithm [14] because its O(|V|+|E|) cost is negligible next
to closure evaluation (Table III discussion).

Two independent SCC algorithms are provided -- an **iterative** Tarjan (no
recursion-depth limits on long path graphs) and Kosaraju's two-pass DFS --
so the test suite can cross-check them against each other and against
networkx.

:class:`Condensation` packages everything the vertex-level reduction needs:

* ``scc_of``   -- vertex -> SCC id (the paper's SID),
* ``members``  -- SCC id -> tuple of member vertices (the set ``s_i``),
* ``dag``      -- the condensed graph ``Ḡ_R`` as a :class:`DiGraph`, with a
  self-loop on every *cyclic* SCC (size > 1, or a single vertex with a
  self-loop in ``G_R``) exactly as Example 5 of the paper constructs it.

SCC ids are assigned in **reverse topological order of discovery**: Tarjan
emits components only after all components reachable from them, so
``scc_of[u] >= scc_of[v]`` never holds for an edge ``u -> v`` with
``scc_of[u] != scc_of[v]``... more precisely every edge of the condensation
goes from a *higher* id to a *lower* id.  The transitive-closure DP exploits
this: iterating ids ``0, 1, 2, ...`` is a valid reverse-topological sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from repro.graph.digraph import DiGraph

__all__ = [
    "Condensation",
    "tarjan_scc",
    "kosaraju_scc",
    "condense",
]


def tarjan_scc(graph: DiGraph) -> list[list]:
    """Tarjan's SCC algorithm [14], iterative formulation.

    Returns the list of components; each component is a list of vertices.
    Components are emitted in reverse topological order (a component is
    produced only after every component it can reach), which downstream
    code relies on.
    """
    index_of: dict[object, int] = {}
    lowlink: dict[object, int] = {}
    on_stack: set[object] = set()
    stack: list[object] = []
    components: list[list] = []
    counter = 0

    for root in graph.vertices():
        if root in index_of:
            continue
        # Each work-stack frame is (vertex, iterator over its successors).
        work: list[tuple[object, Iterator]] = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)

        while work:
            vertex, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    if index_of[successor] < lowlink[vertex]:
                        lowlink[vertex] = index_of[successor]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[vertex] < lowlink[parent]:
                    lowlink[parent] = lowlink[vertex]
            if lowlink[vertex] == index_of[vertex]:
                component: list = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
    return components


def kosaraju_scc(graph: DiGraph) -> list[list]:
    """Kosaraju's two-pass SCC algorithm (iterative DFS).

    An independent implementation used to cross-validate
    :func:`tarjan_scc`.  Components come out in *topological* order of the
    condensation; callers needing Tarjan's reverse order can reverse the
    list.
    """
    finish_order: list[object] = []
    visited: set[object] = set()
    for root in graph.vertices():
        if root in visited:
            continue
        # Iterative post-order DFS: (vertex, expanded?) entries.
        stack: list[tuple[object, bool]] = [(root, False)]
        while stack:
            vertex, expanded = stack.pop()
            if expanded:
                finish_order.append(vertex)
                continue
            if vertex in visited:
                continue
            visited.add(vertex)
            stack.append((vertex, True))
            for successor in graph.successors(vertex):
                if successor not in visited:
                    stack.append((successor, False))

    reversed_graph = graph.reverse()
    assigned: set[object] = set()
    components: list[list] = []
    for vertex in reversed(finish_order):
        if vertex in assigned:
            continue
        component: list = []
        stack2: list[object] = [vertex]
        assigned.add(vertex)
        while stack2:
            member = stack2.pop()
            component.append(member)
            for predecessor in reversed_graph.successors(member):
                if predecessor not in assigned:
                    assigned.add(predecessor)
                    stack2.append(predecessor)
        components.append(component)
    return components


@dataclass(frozen=True)
class Condensation:
    """The vertex-level reduced graph ``Ḡ_R`` plus SCC bookkeeping.

    Attributes
    ----------
    scc_of:
        Maps every vertex of the underlying graph to its SCC id.
    members:
        Maps every SCC id to the tuple of vertices it contains (sorted when
        the vertices are orderable, insertion order otherwise).
    dag:
        The condensed graph.  Self-loops appear exactly on cyclic SCCs, so
        ``dag`` is a DAG *except* for those self-loops -- matching the
        paper's ``Ḡ_R`` in Example 5 (``e(v̄_0, v̄_0)`` etc.).
    """

    scc_of: dict
    members: dict
    dag: DiGraph

    @property
    def num_sccs(self) -> int:
        """Number of SCCs, i.e. ``|V̄_R|``."""
        return len(self.members)

    def is_cyclic(self, scc_id: int) -> bool:
        """True when the SCC contains a cycle (so it reaches itself)."""
        return self.dag.has_self_loop(scc_id)

    def scc_sizes(self) -> list[int]:
        """Sizes of all SCCs (used for the paper's avg-SCC-size statistic)."""
        return [len(members) for members in self.members.values()]

    def average_scc_size(self) -> float:
        """Average number of vertices per SCC (1.0 means reduction is moot)."""
        if not self.members:
            return 0.0
        total = sum(len(members) for members in self.members.values())
        return total / len(self.members)


def condense(graph: DiGraph) -> Condensation:
    """Vertex-level reduction ``G_R -> Ḡ_R`` (paper Section III-B).

    Every SCC of ``graph`` becomes one vertex of the result.  Edges between
    two vertices of the same SCC become a self-loop on that SCC's vertex;
    edges between different SCCs become one condensed edge.  SCC ids follow
    Tarjan's emission order, so iterating ids ascending is a valid
    reverse-topological order of the condensation.
    """
    components = tarjan_scc(graph)
    scc_of: dict = {}
    members: dict = {}
    for scc_id, component in enumerate(components):
        try:
            ordered = tuple(sorted(component))
        except TypeError:  # mixed/unorderable vertex types
            ordered = tuple(component)
        members[scc_id] = ordered
        for vertex in component:
            scc_of[vertex] = scc_id

    dag = DiGraph()
    for scc_id in members:
        dag.add_vertex(scc_id)
    for scc_id, component in members.items():
        if len(component) > 1:
            dag.add_edge(scc_id, scc_id)
    for source, target in graph.edges():
        source_id = scc_of[source]
        target_id = scc_of[target]
        if source_id == target_id and source == target:
            # Single-vertex SCC with a self-loop in G_R stays cyclic.
            dag.add_edge(source_id, source_id)
        else:
            dag.add_edge(source_id, target_id)
    return Condensation(scc_of=scc_of, members=members, dag=dag)
