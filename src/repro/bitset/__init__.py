"""``repro.bitset`` -- the bit-parallel evaluation kernel.

Every hot path of the reproduction -- DFA-product BFS, label joins, RTC
expansion, router-side pair unions -- historically manipulated Python
``set[tuple[vertex, vertex]]``, paying per-pair hashing and tuple
allocation.  This package moves those kernels onto word-parallel Python
big-int bitmaps (stdlib-only: ``|``, ``&``, shifts,
``int.bit_count()``), extending the pattern
:func:`repro.graph.transitive_closure.dag_closure_bitsets` already
proved for the condensation DP to the whole evaluation stack:

* :class:`VertexInterner` -- dense int ids for arbitrary hashable
  vertices, stable across updates (ids are never reused) and persisted
  through :mod:`repro.storage` snapshots so warm restarts keep the
  interning;
* :class:`PairBitmap` -- a ``src_id -> dst bitmap`` pair relation with
  O(words) union/intersection and ``int.bit_count()`` cardinality;
* :mod:`repro.bitset.kernel` -- frontier BFS over the automaton product
  as OR-sweeps of the graph's label-indexed adjacency rows
  (:meth:`repro.graph.multigraph.LabeledMultigraph.bit_rows`), bitmap
  label joins, and the Theorem-1 closure expansion.

The set-based evaluators remain as the *oracle* kernel: they carry the
paper's operation counters and gate the bitmap kernel's answers in the
``tests/bitset`` identity suite and the before/after benchmark rows.
"""

from repro.bitset.interner import VertexInterner
from repro.bitset.pairbitmap import PairBitmap
from repro.bitset.kernel import (
    alphabet_reachable_mask,
    eval_label_sequence_bits,
    eval_rpq_bits,
    eval_rpq_dfa_bits,
    expand_rtc_bits,
    iter_bits,
)

__all__ = [
    "VertexInterner",
    "PairBitmap",
    "alphabet_reachable_mask",
    "eval_label_sequence_bits",
    "eval_rpq_bits",
    "eval_rpq_dfa_bits",
    "expand_rtc_bits",
    "iter_bits",
]
