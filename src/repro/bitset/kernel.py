"""Bit-parallel evaluation primitives over interned adjacency rows.

The kernels here mirror the set-based evaluators of :mod:`repro.rpq`
one-to-one -- same semantics, same pruning -- but carry their frontiers
as Python big-int bitmaps and advance them with OR-sweeps of the
graph's label-indexed adjacency rows
(:meth:`~repro.graph.multigraph.LabeledMultigraph.bit_rows`).  One
traversal step per automaton state ORs whole target rows instead of
inserting ``(vertex, state)`` tuples one at a time, so the per-edge
cost collapses to a fraction of a word operation.

The set evaluators remain the oracle: they carry the paper's
:class:`~repro.rpq.counters.OpCounters` instrumentation, and the
``tests/bitset`` identity suite asserts both kernels return identical
answers on randomized graphs, the benchmark workloads, and mid-run
updates.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.bitset.pairbitmap import PairBitmap
from repro.graph.transitive_closure import iter_bits

__all__ = [
    "alphabet_reachable_mask",
    "eval_label_sequence_bits",
    "eval_rpq_bits",
    "eval_rpq_dfa_bits",
    "expand_rtc_bits",
    "iter_bits",
    "sweep",
]


def sweep(rows: dict[int, int], mask: int) -> int:
    """OR together the adjacency rows of every vertex id set in ``mask``.

    The elementary bit-parallel traversal step: one label's frontier
    advances in a single pass over its set bits, each contributing a
    whole target row.
    """
    reached = 0
    get = rows.get
    while mask:
        low = mask & -mask
        row = get(low.bit_length() - 1)
        if row:
            reached |= row
        mask ^= low
    return reached


def _bfs_mask(graph, delta, accepts, start_states, start_id: int) -> int:
    """Product BFS from one start id; returns the accepted-vertex bitmap.

    The frontier is one bitmap per automaton state; each level ORs the
    adjacency rows of the frontier's vertices, per transition label,
    into the successor states' bitmaps.  ``visited`` masks give the
    same duplicate-avoidance as the set evaluator's per-start visited
    set (paper Example 2).
    """
    bit = 1 << start_id
    frontier = {state: bit for state in start_states}
    visited = dict(frontier)
    result = 0
    bit_rows = graph.bit_rows
    while frontier:
        next_frontier: dict[int, int] = {}
        for state, mask in frontier.items():
            row = delta.get(state)
            if not row:
                continue
            for label, next_states in row.items():
                reached = sweep(bit_rows(label), mask)
                if not reached:
                    continue
                for next_state in next_states:
                    fresh = reached & ~visited.get(next_state, 0)
                    if not fresh:
                        continue
                    visited[next_state] = visited.get(next_state, 0) | fresh
                    next_frontier[next_state] = (
                        next_frontier.get(next_state, 0) | fresh
                    )
                    if next_state in accepts:
                        result |= fresh
        frontier = next_frontier
    return result


def _candidate_start_ids(graph, first_labels) -> set[int]:
    """Ids of vertices with an out-edge that can begin a match."""
    starts: set[int] = set()
    for label in first_labels:
        starts.update(graph.bit_rows(label))
    return starts


def eval_rpq_bits(
    graph,
    nfa,
    starts: Iterable | None = None,
) -> set[tuple[object, object]]:
    """Bit-parallel :func:`repro.rpq.evaluate.eval_rpq` (same contract).

    ``nfa`` is a compiled :class:`~repro.regex.nfa.LabelNFA`; the
    nullable language contributes reflexive pairs exactly as the set
    kernel does.
    """
    interner = graph.interner
    if starts is None:
        start_ids = _candidate_start_ids(graph, nfa.first_labels)
        reflexive: Iterable = graph.vertices() if nfa.nullable else ()
    else:
        kept = [vertex for vertex in starts if graph.has_vertex(vertex)]
        start_ids = {interner.id_of(vertex) for vertex in kept}
        start_ids.discard(None)
        reflexive = kept if nfa.nullable else ()

    results: set[tuple[object, object]] = set()
    for vertex in reflexive:
        results.add((vertex, vertex))

    delta = nfa.delta
    accepts = nfa.accepts
    vertex_of = interner.vertex_of
    for start_id in start_ids:
        mask = _bfs_mask(graph, delta, accepts, nfa.start, start_id)
        if not mask:
            continue
        start = vertex_of(start_id)
        for target_id in iter_bits(mask):
            results.add((start, vertex_of(target_id)))
    return results


def eval_rpq_dfa_bits(
    graph,
    dfa,
    starts: Iterable | None = None,
) -> set[tuple[object, object]]:
    """Bit-parallel :func:`repro.rpq.dfa_eval.eval_rpq_dfa` (same contract)."""
    interner = graph.interner
    first_labels = set(dfa.delta[dfa.start])
    if starts is None:
        start_ids = _candidate_start_ids(graph, first_labels)
        reflexive: Iterable = (
            graph.vertices() if dfa.start in dfa.accepts else ()
        )
    else:
        kept = [vertex for vertex in starts if graph.has_vertex(vertex)]
        start_ids = {interner.id_of(vertex) for vertex in kept}
        start_ids.discard(None)
        reflexive = kept if dfa.start in dfa.accepts else ()

    # The DFA's delta is a tuple of label -> one-state rows; wrap the
    # targets in tuples so the product BFS sees the NFA shape.
    delta = {
        state: {label: (target,) for label, target in row.items()}
        for state, row in enumerate(dfa.delta)
    }
    accepts = dfa.accepts
    results: set[tuple[object, object]] = set()
    for vertex in reflexive:
        results.add((vertex, vertex))
    vertex_of = interner.vertex_of
    for start_id in start_ids:
        mask = _bfs_mask(graph, delta, accepts, (dfa.start,), start_id)
        if not mask:
            continue
        start = vertex_of(start_id)
        for target_id in iter_bits(mask):
            results.add((start, vertex_of(target_id)))
    return results


def _extend_right_bits(graph, bitmap: PairBitmap, label: str) -> PairBitmap:
    """``{(s, t') | (s, t) in bitmap, t -label-> t'}`` as row sweeps."""
    rows = graph.bit_rows(label)
    result = PairBitmap(interner=bitmap.interner)
    for source_id, mask in bitmap.rows.items():
        reached = sweep(rows, mask)
        if reached:
            result.rows[source_id] = reached
    return result


def _extend_left_bits(graph, bitmap: PairBitmap, label: str) -> PairBitmap:
    """``{(s', t) | (s, t) in bitmap, s' -label-> s}`` via reverse rows."""
    rev_rows = graph.rev_bit_rows(label)
    result = PairBitmap(interner=bitmap.interner)
    rows = result.rows
    for middle_id, target_mask in bitmap.rows.items():
        sources = rev_rows.get(middle_id)
        if not sources:
            continue
        while sources:
            low = sources & -sources
            source_id = low.bit_length() - 1
            rows[source_id] = rows.get(source_id, 0) | target_mask
            sources ^= low
    return result


def label_rows_bitmap(graph, label: str) -> PairBitmap:
    """The one-label edge relation as a :class:`PairBitmap` (copied rows)."""
    return PairBitmap(dict(graph.bit_rows(label)), interner=graph.interner)


def eval_label_sequence_bits(
    graph,
    labels: Sequence[str],
    order: str = "rare-first",
) -> set[tuple[object, object]]:
    """Bit-parallel :func:`repro.rpq.label_join.eval_label_sequence`.

    Same join-order strategies (``left-right`` folds, ``rare-first``
    anchors at the rarest label and grows toward the cheaper side); the
    per-step relation is a :class:`PairBitmap` and each extension is a
    row AND/OR sweep instead of a tuple join.
    """
    if not labels:
        return {(vertex, vertex) for vertex in graph.vertices()}
    if order == "left-right":
        bitmap = label_rows_bitmap(graph, labels[0])
        for label in labels[1:]:
            if not bitmap:
                return set()
            bitmap = _extend_right_bits(graph, bitmap, label)
        return bitmap.to_pairs(graph.interner)
    if order != "rare-first":
        raise ValueError(f"unknown join order {order!r}")

    anchor = min(range(len(labels)), key=lambda i: graph.label_count(labels[i]))
    bitmap = label_rows_bitmap(graph, labels[anchor])
    left = anchor - 1
    right = anchor + 1
    while bitmap and (left >= 0 or right < len(labels)):
        extend_left = False
        if right >= len(labels):
            extend_left = True
        elif left >= 0:
            extend_left = graph.label_count(labels[left]) <= graph.label_count(
                labels[right]
            )
        if extend_left:
            bitmap = _extend_left_bits(graph, bitmap, labels[left])
            left -= 1
        else:
            bitmap = _extend_right_bits(graph, bitmap, labels[right])
            right += 1
    if left >= 0 or right < len(labels):
        return set()
    return bitmap.to_pairs(graph.interner)


def alphabet_reachable_mask(
    graph,
    labels: Iterable[str],
    sources: Iterable,
    reverse: bool = False,
) -> int:
    """Vertices reachable from ``sources`` via edges labeled in ``labels``.

    A label-order-blind BFS over the union of the given labels' rows --
    an *over*-approximation of any RPQ over that alphabet, which makes
    it a sound pruning filter: a vertex outside the mask cannot end any
    matching path.  ``reverse=True`` sweeps the reverse adjacency rows
    instead, answering "which vertices can reach ``sources``" -- the
    membership prefilter of the cluster's cut-relevant ``reaches`` fast
    path.  Source bits are included in the returned mask.
    """
    rows_of = graph.rev_bit_rows if reverse else graph.bit_rows
    label_rows = [rows_of(label) for label in labels]
    label_rows = [rows for rows in label_rows if rows]
    seen = graph.interner.mask_of(sources)
    frontier = seen
    while frontier:
        reached = 0
        for rows in label_rows:
            reached |= sweep(rows, frontier)
        frontier = reached & ~seen
        seen |= frontier
    return seen


def expand_rtc_bits(rtc, interner=None) -> PairBitmap:
    """Theorem 1 as bitmaps: ``R+_G`` from an RTC, one row per member.

    Every closed SCC pair contributes its member Cartesian product by
    ORing the target SCC's member bitmap into each source member's row
    -- the product is never enumerated pair by pair.  Builds a private
    interner over ``V_R`` unless one is supplied.
    """
    members = rtc.condensation.members
    if interner is None:
        from repro.bitset.interner import VertexInterner

        interner = VertexInterner()
    member_masks: dict[int, int] = {}
    for scc_id in sorted(members):
        mask = 0
        for vertex in members[scc_id]:
            mask |= 1 << interner.intern(vertex)
        member_masks[scc_id] = mask
    result = PairBitmap(interner=interner)
    rows = result.rows
    for source_id, targets in rtc.closure.items():
        target_mask = 0
        for target_id in targets:
            target_mask |= member_masks[target_id]
        if not target_mask:
            continue
        source_mask = member_masks[source_id]
        while source_mask:
            low = source_mask & -source_mask
            member = low.bit_length() - 1
            rows[member] = rows.get(member, 0) | target_mask
            source_mask ^= low
    return result
