"""Dense vertex interning -- the id space under every bitmap.

Bitmaps index vertices by bit position, so every graph (and every wire
payload) needs a mapping from its arbitrary hashable vertices to dense
``int`` ids.  The contract that makes bitmaps safe to cache and
persist:

* ids are assigned in first-``intern`` order, starting at 0;
* ids are **never reused or reassigned** -- removing every edge of a
  vertex leaves its id in place, so bitmaps built before an update
  still mean the same thing after it;
* the interner round-trips as the plain vertex list in id order
  (:meth:`VertexInterner.vertices` / the ``vertices=`` constructor
  argument), which is how :mod:`repro.storage` snapshots persist it and
  how packed wire payloads describe themselves.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["VertexInterner"]


class VertexInterner:
    """Assign dense, stable ``int`` ids to hashable vertices.

    >>> interner = VertexInterner()
    >>> interner.intern("a"), interner.intern("b"), interner.intern("a")
    (0, 1, 0)
    >>> interner.vertex_of(1)
    'b'
    """

    __slots__ = ("_ids", "_vertices")

    def __init__(self, vertices: Iterable = ()) -> None:
        self._ids: dict = {}
        self._vertices: list = []
        for vertex in vertices:
            self.intern(vertex)

    def intern(self, vertex: object) -> int:
        """The id of ``vertex``, assigning the next dense id if new."""
        vertex_id = self._ids.get(vertex)
        if vertex_id is None:
            vertex_id = len(self._vertices)
            self._ids[vertex] = vertex_id
            self._vertices.append(vertex)
        return vertex_id

    def id_of(self, vertex: object) -> int | None:
        """The id of an already-interned vertex, else ``None``."""
        return self._ids.get(vertex)

    def vertex_of(self, vertex_id: int) -> object:
        """The vertex an id denotes (raises ``IndexError`` when unknown)."""
        return self._vertices[vertex_id]

    def vertices(self) -> list:
        """All interned vertices in id order (a copy; snapshot format)."""
        return list(self._vertices)

    def mask_of(self, vertices: Iterable) -> int:
        """One bitmap with the bit of every *interned* vertex given set.

        Vertices the interner has never seen are skipped (they cannot
        appear in any bitmap built over this id space either).
        """
        ids = self._ids
        mask = 0
        for vertex in vertices:
            vertex_id = ids.get(vertex)
            if vertex_id is not None:
                mask |= 1 << vertex_id
        return mask

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._ids

    def __iter__(self) -> Iterator:
        return iter(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VertexInterner({len(self._vertices)} vertices)"
