"""``PairBitmap`` -- a vertex-pair relation as per-source dst bitmaps.

The bitmap analogue of ``set[tuple[vertex, vertex]]``: one Python
big-int per source id, bit ``j`` set when ``(source_i, vertex_j)`` is in
the relation.  Union is a per-row ``|``, intersection a per-row ``&``,
cardinality a sum of ``int.bit_count()`` -- all word-parallel, no tuple
allocation and no per-pair hashing.

A ``PairBitmap`` may carry the :class:`~repro.bitset.VertexInterner`
that defines its id space, in which case :meth:`to_pairs` /
:meth:`pairs` can materialise vertex tuples without the caller
re-supplying it -- that is how lazy tuple materialisation in
:class:`repro.db.ResultSet` works: the bitmap travels, the tuples are
built only when someone actually iterates the result.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.bitset.interner import VertexInterner

__all__ = ["PairBitmap"]


class PairBitmap:
    """A binary relation over interned vertex ids, stored row-wise.

    >>> pb = PairBitmap()
    >>> pb.add(0, 2); pb.add(0, 5); pb.add(3, 2)
    >>> pb.count()
    3
    >>> sorted(pb.id_pairs())
    [(0, 2), (0, 5), (3, 2)]
    """

    __slots__ = ("rows", "interner")

    def __init__(
        self,
        rows: dict[int, int] | None = None,
        interner: VertexInterner | None = None,
    ) -> None:
        #: ``source_id -> dst bitmap``; rows with an empty bitmap are
        #: dropped eagerly so ``bool(rows)`` means "non-empty relation".
        self.rows: dict[int, int] = {} if rows is None else rows
        #: The id space, when known (enables :meth:`pairs`).
        self.interner = interner

    # -- construction ------------------------------------------------------
    def add(self, source_id: int, target_id: int) -> None:
        """Insert one pair (idempotent)."""
        self.rows[source_id] = self.rows.get(source_id, 0) | (1 << target_id)

    def add_row(self, source_id: int, mask: int) -> None:
        """OR a dst bitmap into ``source_id``'s row."""
        if mask:
            self.rows[source_id] = self.rows.get(source_id, 0) | mask

    def update_pairs(self, pairs: Iterable[tuple]) -> None:
        """OR vertex tuples in through the attached interner."""
        intern = self._require_interner().intern
        rows = self.rows
        for source, target in pairs:
            source_id = intern(source)
            rows[source_id] = rows.get(source_id, 0) | (1 << intern(target))

    def add_pair(self, source: object, target: object) -> None:
        """Insert one vertex pair through the attached interner."""
        intern = self._require_interner().intern
        self.add(intern(source), intern(target))

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple], interner: VertexInterner
    ) -> "PairBitmap":
        """Build from vertex tuples, interning as needed."""
        bitmap = cls(interner=interner)
        intern = interner.intern
        rows = bitmap.rows
        for source, target in pairs:
            source_id = intern(source)
            rows[source_id] = rows.get(source_id, 0) | (1 << intern(target))
        return bitmap

    # -- algebra -----------------------------------------------------------
    def union_update(self, other: "PairBitmap") -> None:
        """In-place union (id spaces must match)."""
        rows = self.rows
        for source_id, mask in other.rows.items():
            rows[source_id] = rows.get(source_id, 0) | mask

    def __ior__(self, other: "PairBitmap") -> "PairBitmap":
        self.union_update(other)
        return self

    def intersect(self, other: "PairBitmap") -> "PairBitmap":
        """The pairwise intersection (same id space), as a new bitmap."""
        rows = {}
        other_rows = other.rows
        for source_id, mask in self.rows.items():
            common = mask & other_rows.get(source_id, 0)
            if common:
                rows[source_id] = common
        return PairBitmap(rows, interner=self.interner)

    def __and__(self, other: "PairBitmap") -> "PairBitmap":
        return self.intersect(other)

    # -- inspection --------------------------------------------------------
    def count(self) -> int:
        """Number of pairs -- a sum of ``int.bit_count()``, no iteration."""
        return sum(mask.bit_count() for mask in self.rows.values())

    def __len__(self) -> int:
        return self.count()

    def __bool__(self) -> bool:
        return any(self.rows.values())

    def contains_ids(self, source_id: int, target_id: int) -> bool:
        """Membership by id -- one shift and one AND."""
        return bool(self.rows.get(source_id, 0) >> target_id & 1)

    def contains(self, source: object, target: object) -> bool:
        """Membership by vertex (requires an attached interner)."""
        interner = self._require_interner()
        source_id = interner.id_of(source)
        target_id = interner.id_of(target)
        if source_id is None or target_id is None:
            return False
        return self.contains_ids(source_id, target_id)

    def id_pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(source_id, target_id)`` pairs."""
        for source_id, mask in self.rows.items():
            while mask:
                low = mask & -mask
                yield (source_id, low.bit_length() - 1)
                mask ^= low

    def row(self, source_id: int) -> int:
        """The dst bitmap of one source id (0 when absent)."""
        return self.rows.get(source_id, 0)

    # -- materialisation ---------------------------------------------------
    def _require_interner(self) -> VertexInterner:
        if self.interner is None:
            raise ValueError(
                "this PairBitmap carries no interner; pass one to to_pairs()"
            )
        return self.interner

    def to_pairs(self, interner: VertexInterner | None = None) -> set:
        """Materialise the vertex-tuple set (the lazy, expensive step)."""
        interner = interner if interner is not None else self._require_interner()
        vertex_of = interner.vertex_of
        pairs: set = set()
        add = pairs.add
        for source_id, mask in self.rows.items():
            source = vertex_of(source_id)
            while mask:
                low = mask & -mask
                add((source, vertex_of(low.bit_length() - 1)))
                mask ^= low
        return pairs

    @property
    def pairs(self) -> set:
        """:meth:`to_pairs` through the attached interner."""
        return self.to_pairs()

    # -- set interop -------------------------------------------------------
    # A PairBitmap with an interner quacks like ``set[tuple[v, v]]``:
    # iteration, membership, equality and right-union against real sets
    # all behave as the materialised pair set would, so engine results
    # can stay packed until a consumer genuinely needs tuples.
    def __iter__(self) -> Iterator[tuple]:
        vertex_of = self._require_interner().vertex_of
        for source_id, target_id in self.id_pairs():
            yield (vertex_of(source_id), vertex_of(target_id))

    def __contains__(self, pair: object) -> bool:
        if not isinstance(pair, tuple) or len(pair) != 2:
            return False
        return self.contains(pair[0], pair[1])

    def __ror__(self, other: set) -> set:
        """``set | bitmap`` (and thus ``set |= bitmap``) materialises."""
        if isinstance(other, (set, frozenset)):
            return other | self.pairs
        return NotImplemented

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PairBitmap):
            mine = {s: m for s, m in self.rows.items() if m}
            theirs = {s: m for s, m in other.rows.items() if m}
            return mine == theirs
        if isinstance(other, (set, frozenset)):
            return self.count() == len(other) and self.pairs == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairBitmap({self.count()} pairs, {len(self.rows)} rows)"
