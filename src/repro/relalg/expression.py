"""Relational-algebra expression trees.

The paper manipulates batch units *symbolically* -- Eq. (3)-(10) are
algebra expressions, not code.  This module gives those expressions an
explicit tree form with an evaluator and a printer, so the library can

* build the exact expression of Lemma 4 / Theorem 2 / Eq. (6)-(10)
  (:mod:`repro.relalg.builders`),
* evaluate it with textbook operator semantics, and
* compare the result against the optimised imperative Algorithm 2
  (the tests' strongest internal consistency check).

Nodes are immutable; :meth:`RelExpr.evaluate` returns a
:class:`~repro.relalg.relation.Relation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relalg.relation import Relation

__all__ = [
    "RelExpr",
    "Scan",
    "Select",
    "Project",
    "Rename",
    "Join",
    "Union",
    "BoundaryJoin",
]


class RelExpr:
    """Base class of relational-algebra expression nodes."""

    def evaluate(self) -> Relation:
        """Evaluate the subtree bottom-up."""
        raise NotImplementedError

    def to_algebra(self) -> str:
        """A textual rendering close to the paper's notation."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_algebra()


@dataclass(frozen=True)
class Scan(RelExpr):
    """A named base relation (``Pre_G``, ``SCC``, ``R̄+_G``, ...)."""

    relation: Relation
    label: str

    def evaluate(self) -> Relation:
        return self.relation

    def to_algebra(self) -> str:
        return self.label


@dataclass(frozen=True)
class Select(RelExpr):
    """``sigma_{column = value}(child)``."""

    child: RelExpr
    column: str
    value: object

    def evaluate(self) -> Relation:
        return self.child.evaluate().select_eq(self.column, self.value)

    def to_algebra(self) -> str:
        return f"σ[{self.column}={self.value}]({self.child.to_algebra()})"


@dataclass(frozen=True)
class Project(RelExpr):
    """``pi_columns(child)``."""

    child: RelExpr
    columns: tuple[str, ...]

    def evaluate(self) -> Relation:
        return self.child.evaluate().project(self.columns)

    def to_algebra(self) -> str:
        return f"π[{', '.join(self.columns)}]({self.child.to_algebra()})"


@dataclass(frozen=True)
class Rename(RelExpr):
    """``rho_mapping(child)`` -- the paper's ``ρ_SSCC`` / ``ρ_ESCC``."""

    child: RelExpr
    mapping: tuple[tuple[str, str], ...]  # ((old, new), ...)

    def evaluate(self) -> Relation:
        return self.child.evaluate().rename(dict(self.mapping))

    def to_algebra(self) -> str:
        renames = ", ".join(f"{old}→{new}" for old, new in self.mapping)
        return f"ρ[{renames}]({self.child.to_algebra()})"


@dataclass(frozen=True)
class Join(RelExpr):
    """Equi-join ``left ⋈_{left_column = right_column} right``."""

    left: RelExpr
    right: RelExpr
    left_column: str
    right_column: str

    def evaluate(self) -> Relation:
        return self.left.evaluate().join(
            self.right.evaluate(), self.left_column, self.right_column
        )

    def to_algebra(self) -> str:
        return (
            f"({self.left.to_algebra()} ⋈[{self.left_column}="
            f"{self.right_column}] {self.right.to_algebra()})"
        )


@dataclass(frozen=True)
class Union(RelExpr):
    """Set union of two schema-compatible expressions."""

    left: RelExpr
    right: RelExpr

    def evaluate(self) -> Relation:
        return self.left.evaluate().union(self.right.evaluate())

    def to_algebra(self) -> str:
        return f"({self.left.to_algebra()} ∪ {self.right.to_algebra()})"


@dataclass(frozen=True, eq=False)
class BoundaryJoin(RelExpr):
    """One cut-edge expansion step of the cluster's boundary join.

    Joins a partial-path relation ``P(START_V, END_V, STATE)`` (see
    :data:`repro.rpq.partial.PARTIAL_COLUMNS`) with the cut-edge
    relation ``C(SRC, LABEL, DST)`` on ``END_V = SRC`` and advances the
    query automaton over the crossed edge's label::

        π[START_V, DST, δ(STATE, LABEL)](P ⋈[END_V=SRC] C)

    producing the next partial-path relation -- the traversal state after
    following exactly one cut edge.  Rows whose ``(STATE, LABEL)`` has no
    automaton transition are dropped (the crossed edge cannot extend any
    accepted word).  The router iterates this node to a fixpoint; see
    :meth:`repro.cluster.service.GraphCluster.submit`.

    ``eq=False`` keeps identity hashing: the automaton's transition
    table is a dict and has no value hash.
    """

    partials: RelExpr
    cuts: RelExpr
    nfa: object  # a repro.regex.nfa.LabelNFA

    def evaluate(self) -> Relation:
        joined = self.partials.evaluate().join(
            self.cuts.evaluate(), "END_V", "SRC"
        )
        columns = joined.columns
        start_i = columns.index("START_V")
        state_i = columns.index("STATE")
        label_i = columns.index("LABEL")
        dst_i = columns.index("DST")
        delta = self.nfa.delta
        advanced = set()
        for row in joined.rows:
            transitions = delta.get(row[state_i])
            if not transitions:
                continue
            for next_state in transitions.get(row[label_i], ()):
                advanced.add((row[start_i], row[dst_i], next_state))
        return Relation(("START_V", "END_V", "STATE"), advanced)

    def to_algebra(self) -> str:
        return (
            f"π[START_V, DST, δ(STATE, LABEL)]({self.partials.to_algebra()} "
            f"⋈[END_V=SRC] {self.cuts.to_algebra()})"
        )
