"""Relational-algebra expression trees.

The paper manipulates batch units *symbolically* -- Eq. (3)-(10) are
algebra expressions, not code.  This module gives those expressions an
explicit tree form with an evaluator and a printer, so the library can

* build the exact expression of Lemma 4 / Theorem 2 / Eq. (6)-(10)
  (:mod:`repro.relalg.builders`),
* evaluate it with textbook operator semantics, and
* compare the result against the optimised imperative Algorithm 2
  (the tests' strongest internal consistency check).

Nodes are immutable; :meth:`RelExpr.evaluate` returns a
:class:`~repro.relalg.relation.Relation`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relalg.relation import Relation

__all__ = ["RelExpr", "Scan", "Select", "Project", "Rename", "Join", "Union"]


class RelExpr:
    """Base class of relational-algebra expression nodes."""

    def evaluate(self) -> Relation:
        """Evaluate the subtree bottom-up."""
        raise NotImplementedError

    def to_algebra(self) -> str:
        """A textual rendering close to the paper's notation."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_algebra()


@dataclass(frozen=True)
class Scan(RelExpr):
    """A named base relation (``Pre_G``, ``SCC``, ``R̄+_G``, ...)."""

    relation: Relation
    label: str

    def evaluate(self) -> Relation:
        return self.relation

    def to_algebra(self) -> str:
        return self.label


@dataclass(frozen=True)
class Select(RelExpr):
    """``sigma_{column = value}(child)``."""

    child: RelExpr
    column: str
    value: object

    def evaluate(self) -> Relation:
        return self.child.evaluate().select_eq(self.column, self.value)

    def to_algebra(self) -> str:
        return f"σ[{self.column}={self.value}]({self.child.to_algebra()})"


@dataclass(frozen=True)
class Project(RelExpr):
    """``pi_columns(child)``."""

    child: RelExpr
    columns: tuple[str, ...]

    def evaluate(self) -> Relation:
        return self.child.evaluate().project(self.columns)

    def to_algebra(self) -> str:
        return f"π[{', '.join(self.columns)}]({self.child.to_algebra()})"


@dataclass(frozen=True)
class Rename(RelExpr):
    """``rho_mapping(child)`` -- the paper's ``ρ_SSCC`` / ``ρ_ESCC``."""

    child: RelExpr
    mapping: tuple[tuple[str, str], ...]  # ((old, new), ...)

    def evaluate(self) -> Relation:
        return self.child.evaluate().rename(dict(self.mapping))

    def to_algebra(self) -> str:
        renames = ", ".join(f"{old}→{new}" for old, new in self.mapping)
        return f"ρ[{renames}]({self.child.to_algebra()})"


@dataclass(frozen=True)
class Join(RelExpr):
    """Equi-join ``left ⋈_{left_column = right_column} right``."""

    left: RelExpr
    right: RelExpr
    left_column: str
    right_column: str

    def evaluate(self) -> Relation:
        return self.left.evaluate().join(
            self.right.evaluate(), self.left_column, self.right_column
        )

    def to_algebra(self) -> str:
        return (
            f"({self.left.to_algebra()} ⋈[{self.left_column}="
            f"{self.right_column}] {self.right.to_algebra()})"
        )


@dataclass(frozen=True)
class Union(RelExpr):
    """Set union of two schema-compatible expressions."""

    left: RelExpr
    right: RelExpr

    def evaluate(self) -> Relation:
        return self.left.evaluate().union(self.right.evaluate())

    def to_algebra(self) -> str:
        return f"({self.left.to_algebra()} ∪ {self.right.to_algebra()})"
