"""A minimal set-semantics relation for the paper's formal expressions.

Section IV-B of the paper *represents* the batch-unit evaluation as a
relational-algebra expression over three relations::

    R_G(START_V, END_V)      evaluation result of any regular expression
    SCC(V, S)                vertex-to-SCC membership of G_R
    R̄+_G(START_S, END_S)     the RTC (closure of the condensation)

:class:`Relation` implements exactly what those expressions need: named
columns, set semantics (automatic duplicate elimination -- the "union the
intermediate results" of the paper), selection, projection, equi-join,
renaming and union.  It is deliberately simple and is used to *specify*
behaviour: the optimised imperative Algorithm 2 is validated against the
declarative pipeline built from these operators.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["Relation"]


class Relation:
    """An immutable relation: a tuple of column names and a set of rows.

    >>> r = Relation(("START_V", "END_V"), {(1, 2), (2, 3)})
    >>> r.project(("END_V",)).rows
    frozenset({(2,), (3,)})
    """

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Iterable[str], rows: Iterable[tuple]) -> None:
        columns = tuple(columns)
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {columns}")
        object.__setattr__(self, "columns", columns)
        frozen = frozenset(tuple(row) for row in rows)  # repro: noqa[RPR801] -- Relation stores rows as a frozenset by contract (any arity, hashable)
        for row in frozen:
            if len(row) != len(columns):
                raise ValueError(
                    f"row {row} has {len(row)} values for {len(columns)} columns"
                )
        object.__setattr__(self, "rows", frozen)

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Relation is immutable")

    # ------------------------------------------------------------------
    def _index_of(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(
                f"no column {column!r} in relation with columns {self.columns}"
            ) from None

    @property
    def cardinality(self) -> int:
        """Number of rows."""
        return len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self.rows == other.rows

    def __hash__(self) -> int:
        return hash((self.columns, self.rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation(columns={self.columns}, |rows|={len(self.rows)})"

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def select_eq(self, column: str, value: object) -> "Relation":
        """``sigma_{column = value}`` -- keep rows with the given value."""
        index = self._index_of(column)
        return Relation(
            self.columns, {row for row in self.rows if row[index] == value}
        )

    def select(self, predicate) -> "Relation":
        """``sigma_p`` with an arbitrary row predicate (dict-per-row)."""
        columns = self.columns
        kept = set()
        for row in self.rows:
            if predicate(dict(zip(columns, row))):
                kept.add(row)
        return Relation(columns, kept)

    def project(self, columns: Iterable[str]) -> "Relation":
        """``pi_columns`` -- duplicate-eliminating projection."""
        columns = tuple(columns)
        indexes = [self._index_of(column) for column in columns]
        return Relation(
            columns, {tuple(row[i] for i in indexes) for row in self.rows}  # repro: noqa[RPR801] -- projection materialises rows per the Relation set-semantics contract
        )

    def rename(self, mapping: dict[str, str]) -> "Relation":
        """``rho`` -- rename columns (``mapping`` maps old -> new)."""
        new_columns = tuple(mapping.get(column, column) for column in self.columns)
        return Relation(new_columns, self.rows)

    def union(self, other: "Relation") -> "Relation":
        """Set union; schemas must match exactly."""
        if self.columns != other.columns:
            raise ValueError(
                f"union schema mismatch: {self.columns} vs {other.columns}"
            )
        return Relation(self.columns, self.rows | other.rows)

    def join(self, other: "Relation", left_column: str, right_column: str) -> "Relation":
        """Equi-join ``self ⋈_{left_column = right_column} other``.

        Output columns are ``self.columns + other.columns`` with the other
        relation's columns suffixed by ``_r`` whenever a name collides.
        A hash join: builds an index on the right side.
        """
        left_index = self._index_of(left_column)
        right_index = other._index_of(right_column)

        suffix_needed = set(self.columns) & set(other.columns)
        right_columns = tuple(
            f"{column}_r" if column in suffix_needed else column
            for column in other.columns
        )
        by_key: dict[object, list[tuple]] = {}
        for row in other.rows:
            by_key.setdefault(row[right_index], []).append(row)
        joined = set()
        for row in self.rows:
            for match in by_key.get(row[left_index], ()):
                joined.add(row + match)
        return Relation(self.columns + right_columns, joined)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple], columns: tuple[str, str] = ("START_V", "END_V")
    ) -> "Relation":
        """Build a binary relation from vertex pairs."""
        return cls(columns, set(pairs))

    def to_pairs(self) -> set[tuple]:
        """Rows of a binary relation as a plain set of pairs."""
        if len(self.columns) != 2:
            raise ValueError(
                f"to_pairs needs a binary relation, got columns {self.columns}"
            )
        return set(self.rows)
