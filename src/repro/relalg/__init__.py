"""Relational-algebra substrate: executable form of the paper's Eq. (1)-(10).

Public surface:

* :class:`Relation` -- set-semantics relations with select / project /
  join / rename / union;
* expression nodes (:class:`Scan`, :class:`Select`, :class:`Project`,
  :class:`Rename`, :class:`Join`, :class:`Union`, :class:`BoundaryJoin`
  -- the cluster's cut-edge expansion step);
* builders for the paper's formal expressions
  (:func:`concat_expression` for Lemma 4, :func:`theorem2_expression` for
  Theorem 2, :func:`batch_unit_expression` for Eq. (6)-(10)).
"""

from repro.relalg.builders import (
    batch_unit_expression,
    concat_expression,
    pairs_relation,
    rtc_relation,
    scc_relation,
    theorem2_expression,
)
from repro.relalg.expression import (
    BoundaryJoin,
    Join,
    Project,
    RelExpr,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.relalg.relation import Relation

__all__ = [
    "Relation",
    "RelExpr",
    "Scan",
    "Select",
    "Project",
    "Rename",
    "Join",
    "Union",
    "BoundaryJoin",
    "pairs_relation",
    "scc_relation",
    "rtc_relation",
    "concat_expression",
    "theorem2_expression",
    "batch_unit_expression",
]
