"""Builders for the paper's relational-algebra expressions.

These functions transcribe the formal results of Section IV-B:

* :func:`concat_expression`     -- Lemma 4 / Eq. (1): ``(A.B)_G`` as a join
  of ``A_G`` and ``B_G``;
* :func:`scc_relation` / :func:`rtc_relation` -- the base relations
  ``SCC(V, S)`` and ``R̄+_G(START_S, END_S)`` extracted from an RTC;
* :func:`theorem2_expression`   -- Theorem 2 / Eq. (2): ``R+_G`` as
  ``π(ρ_SSCC(SCC) ⋈ R̄+_G ⋈ ρ_ESCC(SCC))``;
* :func:`batch_unit_expression` -- Eq. (6)-(10): the full
  ``(Pre.R+.Post)_G`` pipeline.

They serve as executable *specifications*: the optimised imperative
Algorithm 2 must produce exactly the same relation, which the test suite
verifies on hand-built and randomised inputs.  They are intentionally
unoptimised -- evaluating the expression materialises every intermediate
relation, which is precisely the work Algorithm 2 avoids.
"""

from __future__ import annotations

from repro.core.rtc import ReducedTransitiveClosure
from repro.relalg.expression import Join, Project, RelExpr, Rename, Scan, Union
from repro.relalg.relation import Relation

__all__ = [
    "pairs_relation",
    "scc_relation",
    "rtc_relation",
    "concat_expression",
    "theorem2_expression",
    "batch_unit_expression",
]


def pairs_relation(pairs, label: str = "R_G") -> Scan:
    """``R_G(START_V, END_V)`` from a set of vertex pairs."""
    return Scan(Relation.from_pairs(pairs), label)


def scc_relation(rtc: ReducedTransitiveClosure) -> Scan:
    """``SCC(V, S)`` -- vertex-to-SCC membership of ``G_R``."""
    rows = {(vertex, scc_id) for vertex, scc_id in rtc.condensation.scc_of.items()}  # repro: noqa[RPR801] -- Relation rows are the declared set-semantics surface of the algebra
    return Scan(Relation(("V", "S"), rows), "SCC")


def rtc_relation(rtc: ReducedTransitiveClosure) -> Scan:
    """``R̄+_G(START_S, END_S)`` -- the transitive closure of ``Ḡ_R``."""
    return Scan(Relation(("START_S", "END_S"), set(rtc.pairs())), "R̄+_G")


def concat_expression(a_pairs, b_pairs) -> RelExpr:
    """Lemma 4 / Eq. (1): ``(A.B)_G = π(A_G ⋈_{A.END_V = B.START_V} B_G)``."""
    a_scan = Scan(Relation.from_pairs(a_pairs), "A_G")
    b_scan = Scan(
        Relation.from_pairs(b_pairs, ("B_START_V", "B_END_V")), "B_G"
    )
    joined = Join(a_scan, b_scan, "END_V", "B_START_V")
    return Project(joined, ("START_V", "B_END_V"))


def theorem2_expression(rtc: ReducedTransitiveClosure) -> RelExpr:
    """Theorem 2 / Eq. (2): ``R+_G`` reconstructed relationally.

    ``π_{SSCC.V, ESCC.V}( ρ_SSCC(SCC) ⋈_{S=START_S} R̄+_G ⋈_{END_S=S}
    ρ_ESCC(SCC) )``
    """
    sscc = Rename(scc_relation(rtc), (("V", "SSCC_V"), ("S", "SSCC_S")))
    escc = Rename(scc_relation(rtc), (("V", "ESCC_V"), ("S", "ESCC_S")))
    closure = rtc_relation(rtc)
    start_join = Join(sscc, closure, "SSCC_S", "START_S")
    full_join = Join(start_join, escc, "END_S", "ESCC_S")
    return Project(full_join, ("SSCC_V", "ESCC_V"))


def batch_unit_expression(
    pre_pairs,
    rtc: ReducedTransitiveClosure,
    post_pairs,
    closure_type: str = "+",
) -> RelExpr:
    """Eq. (6)-(10): the whole batch unit ``(Pre . R{+,*} . Post)_G``.

    * Eq. (6): ``Pre_G(START_V, END_V)``
    * Eq. (7): ``⋈_{END_V = V} SCC(V, S)``
    * Eq. (8): ``⋈_{S = START_S} R̄+_G(START_S, END_S)``
    * Eq. (9): ``⋈_{END_S = S} SCC(V, S)``
    * Eq. (10): ``⋈_{V = START_V} Post_G(START_V, END_V)``, projected to
      ``(Pre_G.START_V, Post_G.END_V)``.

    ``closure_type = '*'`` adds the zero-iteration branch
    ``π(Pre_G ⋈ Post_G)`` via a union, mirroring Algorithm 2's seeding of
    ``ResEq9`` with ``Pre_G``.
    """
    pre_scan = Scan(Relation.from_pairs(pre_pairs), "Pre_G")
    post_scan = Scan(
        Relation.from_pairs(post_pairs, ("POST_START_V", "POST_END_V")), "Post_G"
    )
    sscc = Rename(scc_relation(rtc), (("V", "SCC1_V"), ("S", "SCC1_S")))
    escc = Rename(scc_relation(rtc), (("V", "SCC2_V"), ("S", "SCC2_S")))
    closure = rtc_relation(rtc)

    eq7 = Join(pre_scan, sscc, "END_V", "SCC1_V")
    eq8 = Join(eq7, closure, "SCC1_S", "START_S")
    eq9 = Join(eq8, escc, "END_S", "SCC2_S")
    eq10 = Join(eq9, post_scan, "SCC2_V", "POST_START_V")
    plus_branch: RelExpr = Project(eq10, ("START_V", "POST_END_V"))

    if closure_type == "+":
        return plus_branch
    if closure_type != "*":
        raise ValueError(f"closure type must be '+' or '*', got {closure_type!r}")
    zero_branch = Project(
        Join(pre_scan, post_scan, "END_V", "POST_START_V"),
        ("START_V", "POST_END_V"),
    )
    return Union(plus_branch, zero_branch)
