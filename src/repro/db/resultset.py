"""Rich result objects returned by :meth:`GraphDB.execute`.

A :class:`ResultSet` wraps the bare ``set[(start, end)]`` the engines
produce with everything a service layer wants next to it: the query text,
the engine that ran it, wall-clock and per-phase timings, the
shared-structure size after the run, machine-readable ``to_json()`` and
Graphviz ``to_dot()`` renderings, and set-like access (iteration, ``in``,
``len``, equality against plain sets -- so existing code comparing
against ``engine.evaluate(q)`` output keeps working).

Execution may be deferred: a lazy ResultSet holds a thunk and only runs
the engine when the pairs (or any statistic derived from them) are first
touched, which lets ``execute_many`` build a batch of result handles
cheaply and stream them.

``pairs=`` also accepts a :class:`~repro.bitset.PairBitmap` carrying its
interner: the bitmap is held as-is and vertex tuples materialise only on
first touch, while :attr:`count` and ``len`` answer straight from
``int.bit_count()`` -- counts-only consumers never build a tuple.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator

from repro.bitset.pairbitmap import PairBitmap

__all__ = ["ExecutionStats", "ResultSet"]

Pair = tuple  # (start, end)


@dataclass(frozen=True)
class ExecutionStats:
    """Measurements of one query execution.

    ``phase_times`` holds the engine's per-phase deltas for this query
    (the paper's Shared_Data / PreG_join_RTC / Remainder breakdown);
    ``shared_pairs`` is the shared-structure size after the run.
    """

    total_time: float = 0.0
    phase_times: dict[str, float] = field(default_factory=dict)
    shared_pairs: int = 0


def _pair_sort_key(pair: Pair) -> tuple[str, str]:
    return (str(pair[0]), str(pair[1]))


class ResultSet:
    """The pairs of one evaluated RPQ plus its execution statistics.

    Built by :class:`~repro.db.GraphDB`; not usually constructed by hand.
    Equality compares the pair sets only (statistics are measurement
    noise), and comparing against a plain ``set``/``frozenset`` works, so
    ``db.execute(q) == legacy_engine.evaluate(q)`` is the intended
    cross-check spelling.
    """

    def __init__(
        self,
        query: str,
        engine: str,
        *,
        pairs: set | frozenset | PairBitmap | None = None,
        fetch: Callable[[], tuple[set, ExecutionStats]] | None = None,
        stats: ExecutionStats | None = None,
    ) -> None:
        if (pairs is None) == (fetch is None):
            raise ValueError("provide exactly one of pairs= or fetch=")
        self.query = query
        self.engine = engine
        self._fetch = fetch
        self._bitmap: PairBitmap | None = None
        if isinstance(pairs, PairBitmap):
            self._bitmap = pairs
            self._pairs: frozenset | None = None
        else:
            self._pairs = None if pairs is None else frozenset(pairs)
        self._stats = stats if stats is not None else (
            ExecutionStats() if pairs is not None else None
        )

    # -- materialisation -------------------------------------------------
    @property
    def is_materialised(self) -> bool:
        """True once the engine has actually run (lazy sets start False)."""
        return self._pairs is not None or self._bitmap is not None

    def _materialise(self) -> frozenset:
        if self._pairs is None:
            if self._bitmap is not None:
                self._pairs = frozenset(self._bitmap.pairs)
            else:
                pairs, self._stats = self._fetch()
                if isinstance(pairs, PairBitmap):
                    pairs = pairs.pairs
                self._pairs = frozenset(pairs)
                self._fetch = None
        return self._pairs

    # -- set-like surface ------------------------------------------------
    @property
    def pairs(self) -> frozenset:
        """The ``(start, end)`` pairs (evaluates the query if deferred)."""
        return self._materialise()

    def sorted_pairs(self) -> list[Pair]:
        """Pairs in deterministic (string) order -- what the CLI prints."""
        return sorted(self._materialise(), key=_pair_sort_key)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.sorted_pairs())

    def __len__(self) -> int:
        if self._pairs is None and self._bitmap is not None:
            return self._bitmap.count()
        return len(self._materialise())

    def __contains__(self, pair: object) -> bool:
        if self._pairs is None and self._bitmap is not None:
            return (
                isinstance(pair, tuple)
                and len(pair) == 2
                and self._bitmap.contains(pair[0], pair[1])
            )
        return pair in self._materialise()

    def __bool__(self) -> bool:
        if self._pairs is None and self._bitmap is not None:
            return bool(self._bitmap)
        return bool(self._materialise())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ResultSet):
            return self.pairs == other.pairs
        if isinstance(other, PairBitmap):
            return self.pairs == frozenset(other.pairs)
        if isinstance(other, (set, frozenset)):
            return self.pairs == frozenset(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pairs)

    def __repr__(self) -> str:
        if not self.is_materialised:
            return f"ResultSet(query={self.query!r}, engine={self.engine!r}, deferred)"
        return (
            f"ResultSet(query={self.query!r}, engine={self.engine!r}, "
            f"pairs={len(self)})"
        )

    # -- statistics ------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of result pairs."""
        return len(self)

    @property
    def stats(self) -> ExecutionStats:
        """Execution statistics (evaluates the query if deferred)."""
        self._materialise()
        return self._stats

    @property
    def total_time(self) -> float:
        """Wall-clock seconds this query took inside the engine."""
        return self.stats.total_time

    @property
    def phase_times(self) -> dict[str, float]:
        """Per-phase seconds attributed to this query (copy)."""
        return dict(self.stats.phase_times)

    @property
    def shared_pairs(self) -> int:
        """Shared-structure pairs held by the engine after this query."""
        return self.stats.shared_pairs

    # -- renderings ------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict: query, engine, count, pairs, timings, sharing."""
        stats = self.stats
        return {
            "query": self.query,
            "engine": self.engine,
            "count": len(self),
            "pairs": [list(pair) for pair in self.sorted_pairs()],
            "timings": {
                "total": stats.total_time,
                "phases": dict(stats.phase_times),
            },
            "shared_pairs": stats.shared_pairs,
        }

    def to_json(self, indent: int | None = None) -> str:
        """The :meth:`to_dict` rendering serialised to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_dot(self, name: str = "Results") -> str:
        """Graphviz DOT digraph with one edge per result pair."""

        def quote(value: object) -> str:
            escaped = str(value).replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'

        lines = [f"digraph {quote(name)} {{", "  rankdir=LR;"]
        for source, target in self.sorted_pairs():
            lines.append(f"  {quote(source)} -> {quote(target)};")
        lines.append("}")
        return "\n".join(lines)
