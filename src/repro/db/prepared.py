"""Prepared queries: parse/normalise once, execute many times.

``GraphDB.prepare(q)`` front-loads everything about a query that does not
depend on the graph's *data*: the parsed AST, the DNF clauses (closures
as literals, Algorithm 1 line 2), and each clause's ``(Pre, R, Type,
Post)`` batch-unit decomposition (line 4).  The handle can then be
executed repeatedly -- each execution reuses the parse and rides the
session engine's shared caches -- and can explain itself without running.
"""

from __future__ import annotations

from repro.core.decompose import BatchUnit, decompose_clause
from repro.core.dnf import clause_to_regex, to_dnf
from repro.core.explain import QueryPlan, explain as build_plan
from repro.regex.ast import RegexNode

__all__ = ["PreparedQuery"]


class PreparedQuery:
    """One RPQ, parsed and decomposed, bound to a :class:`GraphDB` session.

    Attributes
    ----------
    text:
        Normalised query text (``node.to_string()``).
    node:
        The parsed :class:`~repro.regex.ast.RegexNode` AST.
    clauses:
        The DNF clauses as normalised regex strings, in clause order.
    units:
        One :class:`~repro.core.decompose.BatchUnit` per clause.
    """

    def __init__(self, db, node: RegexNode, max_clauses: int = 4096) -> None:
        self._db = db
        self.node = node
        self.text = node.to_string()
        self.max_clauses = max_clauses
        self._clause_objects = tuple(to_dnf(node, max_clauses))
        self.clauses: tuple[str, ...] = tuple(
            clause_to_regex(clause).to_string() for clause in self._clause_objects
        )
        self.units: tuple[BatchUnit, ...] = tuple(
            decompose_clause(clause) for clause in self._clause_objects
        )

    @property
    def db(self):
        """The owning :class:`~repro.db.GraphDB` session."""
        return self._db

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    @property
    def batch_units(self) -> tuple[BatchUnit, ...]:
        """The genuine ``Pre.R{+,*}.Post`` units (closure-free clauses excluded)."""
        return tuple(unit for unit in self.units if unit.has_closure)

    def explain(self) -> QueryPlan:
        """Static evaluation plan against the session engine's cache state.

        Nothing is evaluated; repeated calls on an untouched session
        return equal plans (plan stability), and only the per-clause
        ``rtc_cached`` flags may change after executions warm the cache.
        """
        engine = self._db.engine
        return build_plan(
            self._db.graph,
            self.node,
            rtc_cache=getattr(engine, "rtc_cache", None),
            max_clauses=self.max_clauses,
        )

    def execute(self, *, lazy: bool = False):
        """Run this query through the session; returns a :class:`ResultSet`."""
        return self._db.execute(self, lazy=lazy)

    __call__ = execute

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.text!r}, clauses={len(self.clauses)}, "
            f"batch_units={len(self.batch_units)})"
        )
