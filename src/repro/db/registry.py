"""The pluggable engine registry behind :class:`~repro.db.GraphDB`.

A flat ``name -> engine class`` mapping that replaces the hardcoded
dispatch table the old ``repro.core.engines.make_engine`` carried.  The
three paper engines are pre-registered; third-party code adds its own
without touching :mod:`repro.core.engines`::

    from repro.db import register_engine
    from repro.core.engines import RPQEngine

    @register_engine("mine")
    class MyEngine(RPQEngine):
        def _evaluate_node(self, node):
            ...

    db = GraphDB.open("graph.txt", engine="mine")

Names are case-insensitive (normalised to lower case).  Registering an
already-taken name raises unless ``replace=True`` is passed, so an
accidental collision with a built-in is loud.  An engine class only needs
to be constructible as ``EngineClass(graph, **kwargs)`` and expose
``evaluate(query) -> set[pair]``; subclassing
:class:`~repro.core.engines.RPQEngine` additionally lights up the timing
and shared-data columns of :class:`~repro.db.ResultSet`.
"""

from __future__ import annotations

from repro.core.engines import (
    FullSharingEngine,
    NoSharingEngine,
    RTCSharingEngine,
)
from repro.errors import UnknownEngineError
from repro.graph.multigraph import LabeledMultigraph

__all__ = [
    "available_engines",
    "create_engine",
    "get_engine_class",
    "register_engine",
    "unregister_engine",
]

_BUILTIN_ENGINES = {
    "no": NoSharingEngine,
    "full": FullSharingEngine,
    "rtc": RTCSharingEngine,
}

_registry: dict[str, type] = dict(_BUILTIN_ENGINES)


def _normalise(name: str) -> str:
    if not isinstance(name, str) or not name:
        raise TypeError(f"engine name must be a non-empty string, got {name!r}")
    return name.lower()


def register_engine(name: str, engine_class: type | None = None, *, replace: bool = False):
    """Register ``engine_class`` under ``name`` (case-insensitive).

    Usable directly (``register_engine("mine", MyEngine)``) or as a class
    decorator (``@register_engine("mine")``).  Raises ``ValueError`` when
    the name is taken and ``replace`` is not set; returns the class either
    way so the decorator form is transparent.
    """
    key = _normalise(name)

    def _register(cls: type) -> type:
        if not callable(cls):
            raise TypeError(f"engine class must be callable, got {cls!r}")
        if not replace and key in _registry and _registry[key] is not cls:
            raise ValueError(
                f"engine name {name!r} is already registered to "
                f"{_registry[key].__name__}; pass replace=True to override"
            )
        _registry[key] = cls
        return cls

    if engine_class is None:
        return _register
    return _register(engine_class)


def unregister_engine(name: str) -> None:
    """Remove ``name`` from the registry (built-ins included; loud if absent)."""
    key = _normalise(name)
    if key not in _registry:
        raise UnknownEngineError(name, available_engines())
    del _registry[key]


def get_engine_class(name: str) -> type:
    """The engine class registered under ``name``.

    Raises :class:`~repro.errors.UnknownEngineError` (a
    :class:`~repro.errors.ReproError`) for unknown names.
    """
    try:
        return _registry[_normalise(name)]
    except KeyError:
        raise UnknownEngineError(name, available_engines()) from None


def available_engines() -> tuple[str, ...]:
    """Currently registered engine names, sorted."""
    return tuple(sorted(_registry))


def create_engine(name: str, graph: LabeledMultigraph, **kwargs):
    """Instantiate the engine registered under ``name`` on ``graph``.

    The registry-backed replacement for the old
    ``repro.core.engines.make_engine`` dispatch.
    """
    return get_engine_class(name)(graph, **kwargs)


def reset_registry() -> None:
    """Restore the built-in-only registry (test isolation helper)."""
    _registry.clear()
    _registry.update(_BUILTIN_ENGINES)
