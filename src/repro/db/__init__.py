"""Database-style facade over the RPQ engines: ``repro.db``.

The paper's contribution is *sharing* one reduced transitive closure
across many RPQs; this package makes that lifecycle the public API
instead of an engine-construction detail:

* :class:`GraphDB` -- a session owning the graph, the engine and its
  shared caches (``open`` / ``prepare`` / ``execute`` /
  ``execute_many`` / ``update`` / ``close``);
* :class:`PreparedQuery` -- parse + DNF + batch-unit decomposition done
  once, executable many times, with an ``explain()`` plan;
* :class:`ResultSet` -- result pairs plus per-phase timings,
  shared-structure statistics, lazy evaluation, ``to_json()`` and
  ``to_dot()``;
* the **engine registry** -- :func:`register_engine` /
  :func:`available_engines` / :func:`create_engine`, so third-party
  engines plug in by name next to the built-in ``"no"`` / ``"full"`` /
  ``"rtc"`` without touching :mod:`repro.core.engines`.

>>> from repro.db import GraphDB
>>> from repro.graph import paper_figure1_graph
>>> db = GraphDB.open(paper_figure1_graph())
>>> sorted(db.execute("d.(b.c)+.c"))
[(7, 3), (7, 5)]
"""

from repro.db.prepared import PreparedQuery
from repro.db.registry import (
    available_engines,
    create_engine,
    get_engine_class,
    register_engine,
    unregister_engine,
)
from repro.db.resultset import ExecutionStats, ResultSet
from repro.db.session import GraphDB
from repro.errors import UnknownEngineError

__all__ = [
    "GraphDB",
    "PreparedQuery",
    "ResultSet",
    "ExecutionStats",
    "register_engine",
    "unregister_engine",
    "get_engine_class",
    "available_engines",
    "create_engine",
    "UnknownEngineError",
]
