"""The :class:`GraphDB` session -- the library's database-style facade.

One session owns one graph, one engine instance (chosen by name from the
:mod:`repro.db.registry`), that engine's shared caches, and any number of
incremental watchers.  The lifecycle mirrors a classical database
driver::

    with GraphDB.open("graph.txt", engine="rtc") as db:
        plan = db.prepare("d.(b.c)+.c")
        print(plan.explain().describe())
        rs = plan.execute()                  # ResultSet, not a bare set
        for start, end in rs:
            ...
        db.execute_many(["a.(b.c)+", "(b.c)+.c"])   # caches shared

    # streaming: watch a closure body, then feed edge updates
    db = GraphDB.open(graph)
    follows = db.watch("follows")
    db.update(add=[("ann", "follows", "bob")])
    follows.reaches("ann", "bob")

``open`` accepts a :class:`~repro.graph.LabeledMultigraph`, an edge-list
path, or an iterable of ``(source, label, target)`` triples.  Sharing is
the point: every ``execute`` on a session reuses the engine's shared
structures, which is what the paper means by evaluating *multiple* RPQs.

Concurrency contract
--------------------
A session may be shared across threads: every stateful operation
(``execute``'s evaluation step, ``update``, ``watch``, ``stats``,
``close``) is serialised by one internal :class:`threading.RLock`, so
concurrent callers see a consistent graph/watcher/cache state but do
**not** evaluate in parallel.  For parallel evaluation, run multiple
engines over the same (thread-safe) shared-data cache -- that is exactly
what :mod:`repro.server` does with its worker pool, using the session
only for updates, watchers and statistics.  Lazy result sets capture the
session; forcing them from another thread takes the same lock.
"""

from __future__ import annotations

import threading
import time
from os import PathLike
from pathlib import Path
from collections.abc import Iterable, Sequence

from repro.core.incremental import IncrementalRTC
from repro.db.prepared import PreparedQuery
from repro.db.registry import create_engine
from repro.db.resultset import ExecutionStats, ResultSet
from repro.errors import ReproError
from repro.graph.io import load_edge_list
from repro.graph.multigraph import LabeledMultigraph
from repro.regex.ast import RegexNode
from repro.regex.parser import parse

__all__ = ["GraphDB"]


class GraphDB:
    """A session over one graph with one registered engine and its caches."""

    def __init__(
        self,
        graph: LabeledMultigraph,
        engine: str = "rtc",
        **engine_kwargs,
    ) -> None:
        if not isinstance(graph, LabeledMultigraph):
            raise TypeError(
                f"GraphDB binds a LabeledMultigraph, got {type(graph).__name__}; "
                "use GraphDB.open() to load paths or edge iterables"
            )
        self.graph = graph
        self.engine_name = engine.lower()
        self.engine = create_engine(self.engine_name, graph, **engine_kwargs)
        self._watchers: dict[str, IncrementalRTC] = {}
        self._closed = False
        # Serialises execute/update/watch/stats/close across threads --
        # see the module docstring's concurrency contract.
        self._lock = threading.RLock()

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def open(
        cls,
        source: LabeledMultigraph | str | PathLike | Iterable,
        engine: str = "rtc",
        **engine_kwargs,
    ) -> "GraphDB":
        """Open a session over a graph, an edge-list file, or edge triples."""
        if isinstance(source, LabeledMultigraph):
            graph = source
        elif isinstance(source, (str, PathLike, Path)):
            graph = load_edge_list(source)
        else:
            graph = LabeledMultigraph.from_edges(source)
        return cls(graph, engine=engine, **engine_kwargs)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drop shared caches and watchers; further queries raise."""
        with self._lock:
            if self._closed:
                return
            self._reset_engine_cache()
            self._watchers.clear()
            self._closed = True

    def _reset_engine_cache(self) -> None:
        # Minimal duck-typed engines (evaluate() only) have no caches.
        reset = getattr(self.engine, "reset_cache", None)
        if reset is not None:
            reset()

    def __enter__(self) -> "GraphDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("this GraphDB session is closed")

    # -- querying --------------------------------------------------------
    def prepare(self, query: str | RegexNode) -> PreparedQuery:
        """Parse and decompose ``query`` into a reusable handle."""
        self._check_open()
        max_clauses = getattr(self.engine, "max_clauses", 4096)
        return PreparedQuery(self, parse(query), max_clauses=max_clauses)

    def execute(
        self, query: str | RegexNode | PreparedQuery, *, lazy: bool = False
    ) -> ResultSet:
        """Evaluate one RPQ; returns a :class:`ResultSet`.

        ``lazy=True`` defers evaluation until the result's pairs (or any
        derived statistic) are first touched.
        """
        self._check_open()
        if isinstance(query, PreparedQuery):
            text, node = query.text, query.node
        else:
            node = parse(query)
            text, node = node.to_string(), node

        def fetch() -> tuple[set, ExecutionStats]:
            self._check_open()
            return self._run(node)

        result = ResultSet(text, self.engine_name, fetch=fetch)
        if not lazy:
            result.pairs  # noqa: B018 -- force evaluation now
        return result

    def execute_many(
        self, queries: Sequence, *, lazy: bool = False
    ) -> list[ResultSet]:
        """Evaluate a multiple-RPQ set on the shared session caches."""
        return [self.execute(query, lazy=lazy) for query in queries]

    def explain(self, query: str | RegexNode | PreparedQuery):
        """Static evaluation plan of ``query`` (nothing is evaluated)."""
        self._check_open()
        if not isinstance(query, PreparedQuery):
            query = self.prepare(query)
        return query.explain()

    def _run(self, node: RegexNode) -> tuple[set, ExecutionStats]:
        """Evaluate ``node`` and attribute timer deltas to this query.

        Holds the session lock for the whole evaluation: queries on one
        session are serialised against each other and against updates.
        """
        with self._lock:
            engine = self.engine
            timer = getattr(engine, "timer", None)
            before = timer.snapshot() if timer is not None else {}
            started = time.perf_counter()
            pairs = engine.evaluate(node)
            elapsed = time.perf_counter() - started
            after = timer.snapshot() if timer is not None else {}
            phases = {
                phase: after[phase] - before.get(phase, 0.0) for phase in after
            }
            shared_size = getattr(engine, "shared_data_size", lambda: 0)()
        return pairs, ExecutionStats(
            total_time=elapsed, phase_times=phases, shared_pairs=shared_size
        )

    def evaluate_partial(self, nfa, boundary, frontier=None) -> tuple[set, set]:
        """Shard-local partial RPQ evaluation *under the session lock*.

        Runs :func:`repro.rpq.partial.eval_partial_rpq` against this
        session's graph while holding the same lock :meth:`update` takes,
        so a partial traversal never observes a half-applied edge batch.
        Used by the cluster's boundary-join path; see
        :mod:`repro.cluster.backends`.
        """
        from repro.rpq.partial import eval_partial_rpq

        with self._lock:
            self._check_open()
            return eval_partial_rpq(self.graph, nfa, boundary, frontier)

    # -- updates ---------------------------------------------------------
    def watch(self, body: str | RegexNode) -> IncrementalRTC:
        """Maintain the RTC of closure body ``body`` across :meth:`update`.

        Returns the (idempotently created) incremental maintainer; its
        ``reaches``/``snapshot`` answer streaming reachability without
        re-running the batch pipeline.
        """
        key = parse(body).to_string()
        with self._lock:
            self._check_open()
            watcher = self._watchers.get(key)
            if watcher is None:
                watcher = IncrementalRTC(self.graph, key)
                self._watchers[key] = watcher
        return watcher

    @property
    def watchers(self) -> dict[str, IncrementalRTC]:
        """Active incremental watchers, keyed by normalised closure body."""
        with self._lock:
            return dict(self._watchers)

    def reaches(self, body: str | RegexNode, source: object, target: object) -> bool:
        """Streaming reachability: ``(source, target) in (body+)_G``.

        Answered from the (idempotently created) incremental watcher of
        ``body`` *under the session lock*, so a probe never observes the
        torn intermediate state of a concurrent :meth:`update` rebuild.
        """
        watcher = self.watch(body)
        with self._lock:
            return bool(watcher.reaches(source, target))

    def update(
        self,
        add: Iterable[tuple] = (),
        remove: Iterable[tuple] = (),
    ) -> None:
        """Apply streaming edge changes to the graph.

        Inserted edges are repaired incrementally in every watcher
        (:mod:`repro.core.incremental`); removals recompute the watchers
        from the updated graph.  The engine's shared caches are dropped
        either way -- they describe the pre-update graph.

        A failing edge (duplicate insertion, removal of an absent edge)
        raises after the earlier edges of the batch were applied; the
        session stays consistent with the partially-updated graph -- the
        watchers are rebuilt from it and the engine caches dropped before
        the error propagates.
        """
        with self._lock:
            self._update_locked(add, remove)

    def _update_locked(self, add: Iterable[tuple], remove: Iterable[tuple]) -> None:
        self._check_open()
        watchers = list(self._watchers.values())
        mutated = False
        try:
            for source, label, target in add:
                new_vertices = [
                    vertex
                    for vertex in (source, target)
                    if not self.graph.has_vertex(vertex)
                ]
                self.graph.add_edge(source, label, target)
                mutated = True
                for watcher in watchers:
                    watcher.notify_edge_added(source, label, target, new_vertices)
            removed = False
            for source, label, target in remove:
                self.graph.remove_edge(source, label, target)
                mutated = True
                removed = True
            if removed:
                for watcher in watchers:
                    watcher.notify_graph_replaced()
        except BaseException:
            if mutated:
                for watcher in watchers:
                    watcher.notify_graph_replaced()
            raise
        finally:
            self._reset_engine_cache()

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict:
        """Session statistics: the graph, the engine, and its sharing state."""
        with self._lock:
            self._check_open()
            return self._stats_locked()

    def _stats_locked(self) -> dict:
        engine = self.engine
        return {
            "engine": self.engine_name,
            "graph": {
                "vertices": self.graph.num_vertices,
                "edges": self.graph.num_edges,
                "labels": self.graph.num_labels,
            },
            "queries_evaluated": getattr(engine, "queries_evaluated", 0),
            "total_time": getattr(engine, "total_time", 0.0),
            "shared_pairs": getattr(engine, "shared_data_size", lambda: 0)(),
            "watchers": sorted(self._watchers),
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"GraphDB(engine={self.engine_name!r}, |V|={self.graph.num_vertices}, "
            f"|E|={self.graph.num_edges}, {state})"
        )
