"""The :class:`GraphDB` session -- the library's database-style facade.

One session owns one graph, one engine instance (chosen by name from the
:mod:`repro.db.registry`), that engine's shared caches, and any number of
incremental watchers.  The lifecycle mirrors a classical database
driver::

    with GraphDB.open("graph.txt", engine="rtc") as db:
        plan = db.prepare("d.(b.c)+.c")
        print(plan.explain().describe())
        rs = plan.execute()                  # ResultSet, not a bare set
        for start, end in rs:
            ...
        db.execute_many(["a.(b.c)+", "(b.c)+.c"])   # caches shared

    # streaming: watch a closure body, then feed edge updates
    db = GraphDB.open(graph)
    follows = db.watch("follows")
    db.update(add=[("ann", "follows", "bob")])
    follows.reaches("ann", "bob")

``open`` accepts a :class:`~repro.graph.LabeledMultigraph`, an edge-list
path, or an iterable of ``(source, label, target)`` triples.  Sharing is
the point: every ``execute`` on a session reuses the engine's shared
structures, which is what the paper means by evaluating *multiple* RPQs.

Durability contract
-------------------
A session is in-memory unless it is opened with ``storage=`` (a data
directory or a :class:`~repro.storage.ShardStorage`).  With storage
attached:

* **After ``update`` returns**, the applied batch is on disk: it was
  appended to the write-ahead log, flushed and fsync'd *before* the call
  returned, so it survives ``kill -9`` and is replayed on the next open.
  If an update raises partway through a batch, exactly the applied
  prefix was logged -- replay reproduces the same partially-updated
  graph the live session kept serving.
* **After ``checkpoint()`` returns**, the full graph snapshot, the warm
  RTC store (every cached closure and watcher, LSN-stamped) and the
  manifest naming them are committed, and the now-covered WAL has been
  compacted.  Recovery cost is proportional to updates since the last
  checkpoint; warm-start coverage is "whatever was cached at the last
  checkpoint, if no update followed it".
* **Between the two**, the graph is always recoverable (snapshot + WAL
  replay); only the RTC warmth degrades -- entries stamped with an older
  LSN than the recovered log position are discarded, never served
  stale.
* ``close()`` flushes and fsyncs pending WAL state and releases the
  handles; it is idempotent.  It does *not* take an implicit checkpoint
  -- an operator who wants a warm next start calls ``checkpoint()``
  first.

When the data directory already holds state, ``open`` recovers from it
and the ``source`` argument serves only as the seed for a first, empty
start.  See the README's "Durability & warm restarts" section.

Concurrency contract
--------------------
A session may be shared across threads: every stateful operation
(``execute``'s evaluation step, ``update``, ``watch``, ``stats``,
``close``) is serialised by one internal :class:`threading.RLock`, so
concurrent callers see a consistent graph/watcher/cache state but do
**not** evaluate in parallel.  For parallel evaluation, run multiple
engines over the same (thread-safe) shared-data cache -- that is exactly
what :mod:`repro.server` does with its worker pool, using the session
only for updates, watchers and statistics.  Lazy result sets capture the
session; forcing them from another thread takes the same lock.
"""

from __future__ import annotations

import threading
import time
from os import PathLike
from pathlib import Path
from collections.abc import Iterable, Sequence

from repro.core.incremental import IncrementalRTC
from repro.db.prepared import PreparedQuery
from repro.db.registry import create_engine
from repro.db.resultset import ExecutionStats, ResultSet
from repro.errors import ReproError
from repro.graph.io import load_edge_list
from repro.graph.multigraph import LabeledMultigraph
from repro.obs import ambient_span
from repro.regex.ast import RegexNode
from repro.regex.parser import parse

__all__ = ["GraphDB"]


def _coerce_storage(storage):
    """Accept a :class:`ShardStorage` or anything path-like naming one."""
    from repro.storage.recovery import ShardStorage

    if isinstance(storage, ShardStorage):
        return storage
    return ShardStorage(storage)


class GraphDB:
    """A session over one graph with one registered engine and its caches."""

    def __init__(
        self,
        graph: LabeledMultigraph,
        engine: str = "rtc",
        storage: "ShardStorage | str | PathLike | None" = None,
        checkpoint_every: int | None = None,
        **engine_kwargs,
    ) -> None:
        if not isinstance(graph, LabeledMultigraph):
            raise TypeError(
                f"GraphDB binds a LabeledMultigraph, got {type(graph).__name__}; "
                "use GraphDB.open() to load paths or edge iterables"
            )
        if checkpoint_every is not None and (
            not isinstance(checkpoint_every, int) or checkpoint_every < 1
        ):
            raise ValueError(
                f"checkpoint_every must be a positive int or None, got {checkpoint_every!r}"
            )
        self.graph = graph
        self.engine_name = engine.lower()
        self.engine = create_engine(self.engine_name, graph, **engine_kwargs)
        self._watchers: dict[str, IncrementalRTC] = {}
        self._closed = False
        # Serialises execute/update/watch/stats/close across threads --
        # see the module docstring's concurrency contract.
        self._lock = threading.RLock()
        # -- durability (see the module docstring's durability contract) --
        self._storage = None
        self._checkpoint_every = checkpoint_every
        self._updates_since_checkpoint = 0
        self._warm = {"entries": 0, "watchers": 0, "stale": 0}
        if storage is not None:
            storage = _coerce_storage(storage)
            self._warm = storage.bind(self)
            self._storage = storage

    # -- lifecycle -------------------------------------------------------
    @classmethod
    def open(
        cls,
        source: LabeledMultigraph | str | PathLike | Iterable | None = None,
        engine: str = "rtc",
        storage: "ShardStorage | str | PathLike | None" = None,
        checkpoint_every: int | None = None,
        **engine_kwargs,
    ) -> "GraphDB":
        """Open a session over a graph, an edge-list file, or edge triples.

        With ``storage=`` (a data directory or
        :class:`~repro.storage.ShardStorage`), the session is durable:
        updates are write-ahead logged and :meth:`checkpoint` rolls the
        snapshot forward (every ``checkpoint_every`` logged updates,
        automatically).  When the directory already holds state, the
        session recovers from it -- ``source`` is then only the *seed*
        for a first, empty start and may be ``None`` for recover-only
        opens.
        """
        if storage is not None:
            storage = _coerce_storage(storage)
            if storage.recovered is not None:
                graph = storage.recovered.graph
            elif storage.has_state():
                graph = storage.recover().graph
            else:
                graph = None
            if graph is not None:
                return cls(
                    graph,
                    engine=engine,
                    storage=storage,
                    checkpoint_every=checkpoint_every,
                    **engine_kwargs,
                )
        if source is None:
            raise TypeError(
                "GraphDB.open needs a source graph (the storage directory "
                "holds no recoverable state)"
            )
        if isinstance(source, LabeledMultigraph):
            graph = source
        elif isinstance(source, (str, PathLike, Path)):
            graph = load_edge_list(source)
        else:
            graph = LabeledMultigraph.from_edges(source)
        return cls(
            graph,
            engine=engine,
            storage=storage,
            checkpoint_every=checkpoint_every,
            **engine_kwargs,
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drop shared caches and watchers; further queries raise.

        With storage attached, pending WAL state is flushed and fsync'd
        and the handles released first.  Idempotent either way.  No
        implicit checkpoint is taken -- call :meth:`checkpoint` before
        closing when the next start should come back warm.
        """
        with self._lock:
            if self._closed:
                return
            if self._storage is not None:
                self._storage.sync()
                self._storage.close()
            self._reset_engine_cache()
            self._watchers.clear()
            self._closed = True

    def _reset_engine_cache(self) -> None:
        # Minimal duck-typed engines (evaluate() only) have no caches.
        reset = getattr(self.engine, "reset_cache", None)
        if reset is not None:
            reset()

    def __enter__(self) -> "GraphDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("this GraphDB session is closed")

    # -- querying --------------------------------------------------------
    def prepare(self, query: str | RegexNode) -> PreparedQuery:
        """Parse and decompose ``query`` into a reusable handle."""
        self._check_open()
        max_clauses = getattr(self.engine, "max_clauses", 4096)
        return PreparedQuery(self, parse(query), max_clauses=max_clauses)

    def execute(
        self, query: str | RegexNode | PreparedQuery, *, lazy: bool = False
    ) -> ResultSet:
        """Evaluate one RPQ; returns a :class:`ResultSet`.

        ``lazy=True`` defers evaluation until the result's pairs (or any
        derived statistic) are first touched.
        """
        self._check_open()
        if isinstance(query, PreparedQuery):
            text, node = query.text, query.node
        else:
            node = parse(query)
            text, node = node.to_string(), node

        def fetch() -> tuple[set, ExecutionStats]:
            self._check_open()
            return self._run(node)

        result = ResultSet(text, self.engine_name, fetch=fetch)
        if not lazy:
            result.pairs  # noqa: B018 -- force evaluation now
        return result

    def execute_many(
        self, queries: Sequence, *, lazy: bool = False
    ) -> list[ResultSet]:
        """Evaluate a multiple-RPQ set on the shared session caches."""
        return [self.execute(query, lazy=lazy) for query in queries]

    def explain(self, query: str | RegexNode | PreparedQuery):
        """Static evaluation plan of ``query`` (nothing is evaluated)."""
        self._check_open()
        if not isinstance(query, PreparedQuery):
            query = self.prepare(query)
        return query.explain()

    def _run(self, node: RegexNode) -> tuple[set, ExecutionStats]:
        """Evaluate ``node`` and attribute timer deltas to this query.

        Holds the session lock for the whole evaluation: queries on one
        session are serialised against each other and against updates.
        """
        with self._lock:
            engine = self.engine
            timer = getattr(engine, "timer", None)
            before = timer.snapshot() if timer is not None else {}
            with ambient_span("evaluate") as span:
                started = time.perf_counter()
                pairs = engine.evaluate(node)
                elapsed = time.perf_counter() - started
                after = timer.snapshot() if timer is not None else {}
                phases = {
                    phase: after[phase] - before.get(phase, 0.0) for phase in after
                }
                if span is not None:
                    for phase, seconds in phases.items():
                        if seconds > 0:
                            span.attrs[phase] = round(seconds, 6)
            shared_size = getattr(engine, "shared_data_size", lambda: 0)()
        return pairs, ExecutionStats(
            total_time=elapsed, phase_times=phases, shared_pairs=shared_size
        )

    def evaluate_partial(self, nfa, boundary, frontier=None) -> tuple[set, set]:
        """Shard-local partial RPQ evaluation *under the session lock*.

        Runs :func:`repro.rpq.partial.eval_partial_rpq` against this
        session's graph while holding the same lock :meth:`update` takes,
        so a partial traversal never observes a half-applied edge batch.
        Used by the cluster's boundary-join path; see
        :mod:`repro.cluster.backends`.
        """
        from repro.rpq.partial import eval_partial_rpq

        with self._lock:
            self._check_open()
            with ambient_span("partial") as span:
                if span is not None:
                    span.attrs["boundary"] = len(boundary)
                    span.attrs["frontier"] = len(frontier) if frontier else 0
                return eval_partial_rpq(self.graph, nfa, boundary, frontier)

    # -- updates ---------------------------------------------------------
    def watch(self, body: str | RegexNode) -> IncrementalRTC:
        """Maintain the RTC of closure body ``body`` across :meth:`update`.

        Returns the (idempotently created) incremental maintainer; its
        ``reaches``/``snapshot`` answer streaming reachability without
        re-running the batch pipeline.
        """
        key = parse(body).to_string()
        with self._lock:
            self._check_open()
            watcher = self._watchers.get(key)
            if watcher is None:
                watcher = IncrementalRTC(self.graph, key)
                self._watchers[key] = watcher
        return watcher

    @property
    def watchers(self) -> dict[str, IncrementalRTC]:
        """Active incremental watchers, keyed by normalised closure body."""
        with self._lock:
            return dict(self._watchers)

    def reaches(self, body: str | RegexNode, source: object, target: object) -> bool:
        """Streaming reachability: ``(source, target) in (body+)_G``.

        Answered from the (idempotently created) incremental watcher of
        ``body`` *under the session lock*, so a probe never observes the
        torn intermediate state of a concurrent :meth:`update` rebuild.
        """
        watcher = self.watch(body)
        with self._lock:
            return bool(watcher.reaches(source, target))

    def update(
        self,
        add: Iterable[tuple] = (),
        remove: Iterable[tuple] = (),
    ) -> None:
        """Apply streaming edge changes to the graph.

        Inserted edges are repaired incrementally in every watcher
        (:mod:`repro.core.incremental`); removals recompute the watchers
        from the updated graph.  The engine's shared caches are dropped
        either way -- they describe the pre-update graph.

        A failing edge (duplicate insertion, removal of an absent edge)
        raises after the earlier edges of the batch were applied; the
        session stays consistent with the partially-updated graph -- the
        watchers are rebuilt from it and the engine caches dropped before
        the error propagates.

        With storage attached the applied edges are write-ahead logged
        (fsync'd) before this method returns -- including the applied
        prefix of a failing batch, so replay always reproduces the live
        graph.  Edges the storage format cannot persist raise
        :class:`~repro.errors.StorageError` *before* anything mutates.
        """
        with self._lock:
            self._update_locked(add, remove)

    def _update_locked(self, add: Iterable[tuple], remove: Iterable[tuple]) -> None:
        self._check_open()
        add = [tuple(edge) for edge in add]
        remove = [tuple(edge) for edge in remove]
        if self._storage is not None:
            self._storage.validate_edges(add + remove)
        watchers = list(self._watchers.values())
        applied_add: list[tuple] = []
        applied_remove: list[tuple] = []
        try:
            for source, label, target in add:
                new_vertices = [
                    vertex
                    for vertex in (source, target)
                    if not self.graph.has_vertex(vertex)
                ]
                self.graph.add_edge(source, label, target)
                applied_add.append((source, label, target))
                for watcher in watchers:
                    watcher.notify_edge_added(source, label, target, new_vertices)
            for source, label, target in remove:
                self.graph.remove_edge(source, label, target)
                applied_remove.append((source, label, target))
            if applied_remove:
                for watcher in watchers:
                    watcher.notify_graph_replaced()
        except BaseException:
            if applied_add or applied_remove:
                for watcher in watchers:
                    watcher.notify_graph_replaced()
            self._reset_engine_cache()
            # Log exactly the applied prefix: replay must reproduce the
            # partially-updated graph the live session keeps serving.
            self._log_applied(applied_add, applied_remove)
            raise
        self._reset_engine_cache()
        self._log_applied(applied_add, applied_remove)
        self._maybe_auto_checkpoint()

    def _log_applied(self, applied_add: list, applied_remove: list) -> None:
        if self._storage is None or (not applied_add and not applied_remove):
            return
        if self._storage.log_update(applied_add, applied_remove) is not None:
            self._updates_since_checkpoint += 1  # repro: noqa[RPR101] -- every caller (update/_update_locked, checkpoint) already holds self._lock

    def _maybe_auto_checkpoint(self) -> None:
        if (
            self._storage is not None
            and self._checkpoint_every is not None
            and self._updates_since_checkpoint >= self._checkpoint_every
        ):
            self.checkpoint()

    # -- durability ------------------------------------------------------
    @property
    def storage(self):
        """The attached :class:`~repro.storage.ShardStorage`, or ``None``."""
        return self._storage

    @property
    def warm_stats(self) -> dict:
        """What the RTC store installed at open time.

        ``{"entries": n, "watchers": n, "stale": n}`` -- cached closures
        installed, watchers restored without recomputation, and store
        entries skipped because their LSN stamp (or cache mode) no
        longer matched.  All zeros for cold starts and storage-less
        sessions.
        """
        return dict(self._warm)

    def checkpoint(self, extra_sessions: Sequence["GraphDB"] = ()) -> dict:
        """Commit a snapshot + warm RTC store covering the current LSN.

        After this returns, recovery replays *no* WAL records and comes
        back hot for every closure body cached right now (in this session
        or any of the ``extra_sessions`` -- replica siblings that saw the
        same update stream).  Raises
        :class:`~repro.errors.StorageError` without storage attached.
        """
        from repro.errors import StorageError

        with self._lock:
            self._check_open()
            if self._storage is None:
                raise StorageError(
                    "this session has no storage attached; open it with storage="
                )
            info = self._storage.checkpoint(self, tuple(extra_sessions))
            self._updates_since_checkpoint = 0
            return info

    def restore_watcher(
        self, body: str | RegexNode, gr_edges: Iterable[tuple], rtc
    ) -> IncrementalRTC:
        """Install a persisted watcher without re-running ``eval_rpq``.

        The warm-start entry point used by :mod:`repro.storage.rtc_store`;
        ``gr_edges``/``rtc`` come from a store entry whose LSN stamp
        matches the recovered log position, so the state is exact for the
        current graph.
        """
        key = parse(body).to_string()
        with self._lock:
            self._check_open()
            watcher = IncrementalRTC.from_state(self.graph, key, gr_edges, rtc)
            self._watchers[key] = watcher
        return watcher

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict:
        """Session statistics: the graph, the engine, and its sharing state."""
        with self._lock:
            self._check_open()
            return self._stats_locked()

    def _stats_locked(self) -> dict:
        engine = self.engine
        document = {
            "engine": self.engine_name,
            "graph": {
                "vertices": self.graph.num_vertices,
                "edges": self.graph.num_edges,
                "labels": self.graph.num_labels,
            },
            "queries_evaluated": getattr(engine, "queries_evaluated", 0),
            "total_time": getattr(engine, "total_time", 0.0),
            "shared_pairs": getattr(engine, "shared_data_size", lambda: 0)(),
            "watchers": sorted(self._watchers),
        }
        if self._storage is not None:
            document["storage"] = dict(self._storage.stats())
            document["storage"]["warm"] = dict(self._warm)
            document["storage"]["updates_since_checkpoint"] = self._updates_since_checkpoint
            document["storage"]["checkpoint_every"] = self._checkpoint_every
        return document

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"GraphDB(engine={self.engine_name!r}, |V|={self.graph.num_vertices}, "
            f"|E|={self.graph.num_edges}, {state})"
        )
