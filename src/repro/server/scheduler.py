"""The sharing-aware scheduler: micro-batches grouped by closure body.

The paper's economics -- many RPQs become cheap once they share one
reduced transitive closure -- only pay off under concurrency if the
server notices *which* in-flight queries share a closure body.  This
scheduler does exactly that:

1.  Every submitted query is keyed by the set of Kleene-closure bodies
    it contains (:func:`closure_group_key`, the same canonical keys the
    engine caches use, so ``"syntactic"``/``"semantic"`` cache modes
    group identically to how they share).
2.  A dispatcher thread collects requests for one *batch window*
    (or until ``max_batch``), partitions them by group key
    (:func:`group_jobs`), and hands each group to the worker pool as
    one micro-batch.
3.  Workers are plain threads, each holding its own engine handle
    (engines keep per-thread timers/counters) over the **shared,
    lock-protected RTC cache** of the session's primary engine -- so the
    first query of a group computes the RTC and every other query in
    that group (and every later group with the same body) hits the
    cache.  Concurrent first-contact misses on one body across workers
    are collapsed by the cache's ``get_or_compute`` in-flight latch
    (see :mod:`repro.core.cache`); grouping keeps even the latch wait
    rare by landing a body's queries on one worker back to back.

Admission control is a bounded queue (``queue.Full`` surfaces as
:class:`~repro.errors.AdmissionError` *before* any work happens) plus a
per-request deadline: workers drop expired jobs with
:class:`~repro.errors.DeadlineExpiredError` instead of evaluating them.

Graph updates are exclusive: the dispatcher stops batching, drains every
in-flight micro-batch, applies the update through the (thread-safe)
:class:`~repro.db.GraphDB` session -- which repairs watchers and resets
the shared caches -- and only then resumes query dispatch.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

from repro.core.cache import make_key_function
from repro.core.decompose import decompose_clause
from repro.core.dnf import to_dnf
from repro.db.registry import create_engine
from repro.db.session import GraphDB
from repro.errors import AdmissionError, DeadlineExpiredError, ReproError, ServerError
from repro.obs import activate, get_registry
from repro.regex.ast import RegexNode, contains_closure
from repro.regex.parser import parse
from repro.server.metrics import ServerMetrics

__all__ = [
    "QueryJob",
    "UpdateJob",
    "SharingScheduler",
    "closure_group_key",
    "group_jobs",
    "make_worker_engines",
]

#: Sentinel telling the dispatcher thread to exit.
_STOP = object()


def closure_group_key(
    node: RegexNode, key_function, max_clauses: int = 4096
) -> str:
    """The batching key of a query: its sorted closure-body cache keys.

    Walks the DNF/batch-unit decomposition exactly like the engines (and
    :func:`~repro.core.sharing_analysis.analyse_sharing`) do, collecting
    the cache key of every closure body, nested ones included.  Queries
    with equal keys would populate/hit the same shared-cache entries, so
    they belong in one micro-batch.  Closure-free queries key to ``""``.
    Queries whose decomposition fails (e.g. DNF blow-up past
    ``max_clauses``) also key to ``""``; the engine will raise the real
    error at evaluation time.
    """
    keys: set[str] = set()

    def visit(current: RegexNode) -> None:
        for clause in to_dnf(current, max_clauses):
            unit = decompose_clause(clause)
            if unit.r is None:
                continue
            keys.add(key_function(unit.r))
            if contains_closure(unit.pre):
                visit(unit.pre)
            if contains_closure(unit.r):
                visit(unit.r)

    try:
        visit(node)
    except ReproError:
        return ""
    return "|".join(sorted(keys))


@dataclass
class QueryJob:
    """One admitted query waiting for (or undergoing) evaluation.

    ``group_key`` is ``None`` until the dispatcher computes it -- key
    extraction walks the query's DNF, which must happen on the
    dispatcher thread, never on the submitting (event-loop) thread.
    """

    text: str
    node: RegexNode
    future: Future
    group_key: str | None = None
    deadline: float | None = None  # time.monotonic() deadline, None = none
    enqueued_at: float = field(default_factory=time.monotonic)
    # ``(tracer, parent_span_id)`` when the request is traced; None (the
    # overwhelmingly common case) costs nothing anywhere below.
    trace: tuple | None = None
    dequeued_at: float | None = None  # set by the dispatcher on pop

    @property
    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline


@dataclass
class UpdateJob:
    """An exclusive graph update waiting for the dispatcher."""

    add: tuple
    remove: tuple
    future: Future
    trace: tuple | None = None


def group_jobs(jobs: list[QueryJob]) -> list[list[QueryJob]]:
    """Partition a drained batch into micro-batches by group key.

    Order-preserving both across groups (first arrival wins) and within
    a group, so batching never reorders one client's pipeline.  Jobs
    whose key was never computed (``None``) group with the closure-free
    ones.
    """
    groups: dict[str, list[QueryJob]] = {}
    for job in jobs:
        groups.setdefault(job.group_key or "", []).append(job)
    return list(groups.values())


def make_worker_engines(db: GraphDB, count: int, engine_kwargs: dict | None = None):
    """``count`` fresh engine handles sharing the session engine's caches.

    Each worker gets its own engine instance (timers and counters are
    per-engine, hence per-worker), but the shared-data cache objects are
    replaced by the primary engine's -- the lock-protected caches of
    :mod:`repro.core.cache` -- so all workers share one RTC store.
    """
    primary = db.engine
    engines = []
    for _ in range(count):
        engine = create_engine(db.engine_name, db.graph, **(engine_kwargs or {}))
        for attribute in ("rtc_cache", "closure_cache"):
            shared = getattr(primary, attribute, None)
            if shared is not None and hasattr(engine, attribute):
                setattr(engine, attribute, shared)
        engines.append(engine)
    return engines


class SharingScheduler:
    """Bounded-queue admission + sharing-aware micro-batch dispatch.

    Parameters
    ----------
    db:
        The (thread-safe) session; updates and stats go through it, and
        its engine's caches are shared by all workers.
    workers:
        Worker threads = concurrent micro-batches = engine handles.
    max_queue:
        Admission bound: jobs waiting for dispatch beyond the in-flight
        batches.  Full queue -> :class:`~repro.errors.AdmissionError`.
    batch_window:
        Seconds the dispatcher keeps collecting after the first job of a
        batch -- the sharing/latency trade-off knob.
    max_batch:
        Upper bound on one drain, regardless of the window.
    engine_kwargs:
        Forwarded to the per-worker engine constructors (must mirror the
        session's engine options, e.g. ``cache_mode``).
    start:
        Pass ``False`` to create the scheduler stopped (tests use this
        to fill the queue deterministically), then call :meth:`start`.
    """

    def __init__(
        self,
        db: GraphDB,
        workers: int = 4,
        max_queue: int = 256,
        batch_window: float = 0.005,
        max_batch: int = 64,
        engine_kwargs: dict | None = None,
        start: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.db = db
        self.workers = workers
        self.batch_window = batch_window
        self.max_batch = max(1, max_batch)
        self.metrics = ServerMetrics()
        # Always-on per-phase wall-time ledger (rtc vs evaluate vs join
        # vs wal); the bench harness diffs it around each cell.
        self._phase_seconds = get_registry().counter(
            "repro_phase_seconds_total",
            "Wall seconds spent per engine/storage phase.",
            labels=("phase",),
        )
        cache = self.shared_cache
        # `is not None`, not truthiness: the cache defines __len__ and is
        # always empty at construction, so `if cache` would silently key
        # a semantic-mode scheduler syntactically.
        self._key_function = make_key_function(
            cache.mode if cache is not None else "syntactic"
        )
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._engines: queue.SimpleQueue = queue.SimpleQueue()
        for engine in make_worker_engines(db, workers, engine_kwargs):
            self._engines.put(engine)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-worker"
        )
        self._inflight: set[Future] = set()
        self._inflight_lock = threading.Lock()
        # Serialises admission against shutdown: once stop() flips
        # _stopped under this lock, no submit can slip a job past the
        # shutdown drain (which would leave its future forever pending).
        self._admission_lock = threading.Lock()
        self._dispatcher: threading.Thread | None = None
        self._running = False
        self._stopped = False
        if start:
            self.start()

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        if self._running or self._stopped:
            return
        self._running = True
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatcher", daemon=True
        )
        self._dispatcher.start()

    def stop(self) -> None:
        """Drain, stop the dispatcher and the pool; fail leftover jobs."""
        with self._admission_lock:
            if self._stopped:
                return
            self._stopped = True
        was_running = self._running
        self._running = False
        if was_running and self._dispatcher is not None:
            self._queue.put(_STOP)
            self._dispatcher.join()
        self._pool.shutdown(wait=True)
        # Jobs still queued (submitted before _stopped flipped but never
        # dispatched) are failed loudly rather than silently dropped.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is _STOP:
                continue
            if job.future.set_running_or_notify_cancel():
                self.metrics.record_failed()
                job.future.set_exception(self._closed_error())
            else:
                self.metrics.record_cancelled()

    def drain(self) -> None:
        """Block until every currently admitted job has resolved.

        Waits on the metrics conservation law (admitted == completed +
        expired + failed + cancelled + updates) rather than the queue
        size -- a job the dispatcher has popped but is still batch-window
        collecting lives in neither the queue nor the in-flight set, and
        must not slip through.  A quiescence point, not a barrier against
        new work: jobs admitted *while* draining extend the wait.  Used
        by the cluster backends for graceful close and by tests.
        """
        while self._running:
            stats = self.metrics.snapshot()
            resolved = (
                stats["completed"]
                + stats["expired"]
                + stats["failed"]
                + stats["cancelled"]
                + stats["updates"]
            )
            if stats["admitted"] == resolved:
                break
            time.sleep(0.001)
        self._drain_inflight()

    @staticmethod
    def _closed_error() -> ServerError:
        error = ServerError("server is shutting down")
        error.code = "closed"
        return error

    # -- admission -------------------------------------------------------
    def submit(
        self,
        text: str,
        node: RegexNode | None = None,
        timeout: float | None = None,
        trace: tuple | None = None,
    ) -> Future:
        """Admit one query; returns a future of ``(pairs, engine_time)``.

        Raises :class:`~repro.errors.AdmissionError` when the queue is
        full (backpressure) and :class:`~repro.errors.ServerError` after
        :meth:`stop`.  Parse errors propagate as
        :class:`~repro.errors.RPQSyntaxError` before admission.  The
        batching group key is computed later, on the dispatcher thread,
        so a pathological query cannot stall the submitting thread.
        ``trace`` is an optional ``(tracer, parent_span_id)`` pair; the
        worker then records admission-wait / batch-wait / evaluate spans
        for this job.
        """
        if node is None:
            node = parse(text)
        job = QueryJob(
            text=text,
            node=node,
            future=Future(),
            deadline=(time.monotonic() + timeout) if timeout is not None else None,
            trace=trace,
        )
        self._admit(job)
        return job.future

    def submit_update(
        self, add=(), remove=(), block: bool = False, trace: tuple | None = None
    ) -> Future:
        """Admit an exclusive graph update; returns a future of ``None``.

        ``block=True`` waits for a queue slot instead of raising
        :class:`~repro.errors.AdmissionError` when the queue is full --
        the admission mode the cluster's replica broadcast uses, where a
        half-admitted update would leave replica copies diverged.  Never
        call it from a latency-sensitive thread (it can wait for a whole
        batch to drain).
        """
        job = UpdateJob(
            add=tuple(add), remove=tuple(remove), future=Future(), trace=trace
        )
        self._admit(job, block=block)
        return job.future

    def _admit(self, job, block: bool = False) -> None:
        """Enqueue under the admission lock (atomic w.r.t. :meth:`stop`).

        The blocking mode polls instead of holding the admission lock
        through a blocking ``put`` -- :meth:`stop` takes the same lock,
        so a blocked holder would deadlock shutdown.  Each probe
        re-checks ``_stopped`` under the lock, preserving the invariant
        that no job enters the queue after the shutdown drain.
        """
        while True:
            with self._admission_lock:
                if self._stopped:
                    raise self._closed_error()
                try:
                    self._queue.put_nowait(job)
                except queue.Full:
                    if not block:
                        self.metrics.record_rejected()
                        raise AdmissionError(
                            queue_depth=self._queue.qsize()
                        ) from None
                else:
                    self.metrics.record_admitted()
                    return
            time.sleep(0.001)

    # -- dispatch --------------------------------------------------------
    def _dispatch_loop(self) -> None:
        stopping = False
        while not stopping:
            head = self._queue.get()
            if head is _STOP:
                break
            if isinstance(head, UpdateJob):
                self._execute_update(head)
                continue
            head.dequeued_at = time.monotonic()
            batch = [head]
            update_job = None
            window_end = time.monotonic() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = window_end - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _STOP:
                    stopping = True
                    break
                if isinstance(item, UpdateJob):
                    update_job = item
                    break
                item.dequeued_at = time.monotonic()
                batch.append(item)
            # Key extraction (DNF walk) runs here, on the dispatcher --
            # admission threads only parse.
            for job in batch:
                if job.group_key is None:
                    job.group_key = closure_group_key(
                        job.node, self._key_function
                    )
            for group in group_jobs(batch):
                self.metrics.record_batch(len(group))
                future = self._pool.submit(self._run_batch, group)
                with self._inflight_lock:
                    self._inflight.add(future)
                future.add_done_callback(self._forget_inflight)
            if update_job is not None:
                self._execute_update(update_job)

    def _forget_inflight(self, future: Future) -> None:
        with self._inflight_lock:
            self._inflight.discard(future)

    def _drain_inflight(self) -> None:
        while True:
            with self._inflight_lock:
                pending = list(self._inflight)
            if not pending:
                return
            wait(pending)

    #: Engine-timer phases -> the public span/metric phase names.
    _PHASE_NAMES = {
        "shared_data": "rtc",
        "pre_join_rtc": "pre_join",
        "remainder": "remainder",
    }

    def _record_wait_spans(self, job: QueryJob):
        """Retroactive admission/batch-wait spans + the live evaluate span.

        Queue waits are measured with monotonic timestamps; the spans'
        wall-clock starts are reconstructed by offsetting ``time.time()``
        backwards by the monotonic age, which keeps the whole trace on
        one wall-clock axis across processes.
        """
        tracer, parent = job.trace
        now_mono = time.monotonic()
        now_wall = time.time()  # repro: noqa[RPR601] -- reconstructs wall-clock span starts by offsetting monotonic ages; waits themselves are monotonic
        dequeued = job.dequeued_at if job.dequeued_at is not None else now_mono
        tracer.record(
            "admission_wait",
            parent,
            now_wall - (now_mono - job.enqueued_at),
            dequeued - job.enqueued_at,
        )
        tracer.record(
            "batch_wait",
            parent,
            now_wall - (now_mono - dequeued),
            now_mono - dequeued,
        )
        cache = self.shared_cache
        cache_before = cache.snapshot_stats() if cache is not None else None
        return tracer.begin("evaluate", parent=parent), cache_before

    def _publish_phases(self, timer, timer_before, elapsed: float) -> dict:
        """Engine-timer deltas -> the always-on phase ledger; returns them."""
        deltas: dict = {}
        if timer is not None and timer_before is not None:
            for phase, total in timer.snapshot().items():
                delta = total - timer_before.get(phase, 0.0)
                if delta > 0:
                    deltas[self._PHASE_NAMES.get(phase, phase)] = delta
        self._phase_seconds.inc(elapsed, phase="evaluate")
        for phase, delta in deltas.items():
            self._phase_seconds.inc(delta, phase=phase)
        return deltas

    def _finish_evaluate_span(self, job, span, phases, cache_before) -> None:
        """Close the evaluate span with phase children and cache deltas."""
        tracer, _ = job.trace
        offset = span.start
        for phase, seconds in phases.items():
            # Phase children are laid out sequentially from the timer
            # totals (the timer keeps sums, not intervals).
            tracer.record(phase, span.span_id, offset, seconds)
            offset += seconds
        attrs: dict = {"query": job.text}
        cache = self.shared_cache
        if cache is not None and cache_before is not None:
            after = cache.snapshot_stats()
            attrs["cache_hits"] = after.hits - cache_before.hits
            attrs["cache_misses"] = after.misses - cache_before.misses
        tracer.finish(span, **attrs)

    def _run_batch(self, jobs: list[QueryJob]) -> None:
        """Worker body: evaluate one micro-batch on one engine handle."""
        engine = self._engines.get()
        timer = getattr(engine, "timer", None)
        try:
            for job in jobs:
                # Claim the future first: once running, a late cancel()
                # (e.g. all-or-nothing admission rollback) cannot race
                # our set_result/set_exception below.
                if not job.future.set_running_or_notify_cancel():
                    self.metrics.record_cancelled()
                    continue
                if job.expired:
                    self.metrics.record_expired()
                    job.future.set_exception(
                        DeadlineExpiredError(
                            f"deadline expired before evaluating {job.text!r}"
                        )
                    )
                    continue
                eval_span = cache_before = None
                if job.trace is not None:
                    eval_span, cache_before = self._record_wait_spans(job)
                timer_before = timer.snapshot() if timer is not None else None
                try:
                    started = time.perf_counter()
                    if job.trace is not None:
                        with activate(job.trace[0], eval_span.span_id):
                            pairs = engine.evaluate(job.node)
                    else:
                        pairs = engine.evaluate(job.node)
                    elapsed = time.perf_counter() - started
                except Exception as error:  # noqa: BLE001  # repro: noqa[RPR701] -- evaluation outcome boundary: the error becomes the job future's result, never lost
                    if job.trace is not None:
                        job.trace[0].finish(
                            eval_span, error=type(error).__name__
                        )
                    self.metrics.record_failed()
                    job.future.set_exception(error)
                else:
                    phases = self._publish_phases(timer, timer_before, elapsed)
                    if job.trace is not None:
                        self._finish_evaluate_span(
                            job, eval_span, phases, cache_before
                        )
                    self.metrics.record_completed(
                        time.monotonic() - job.enqueued_at
                    )
                    job.future.set_result((pairs, elapsed))
        finally:
            self._engines.put(engine)

    def _execute_update(self, job: UpdateJob) -> None:
        """Apply one update exclusively: drain workers first."""
        tracer = parent = None
        if job.trace is not None:
            tracer, parent = job.trace
            drain_span = tracer.begin("update_drain", parent=parent)
        self._drain_inflight()
        if tracer is not None:
            tracer.finish(drain_span)
        if not job.future.set_running_or_notify_cancel():
            self.metrics.record_cancelled()
            return
        apply_span = (
            tracer.begin("update_apply", parent=parent)
            if tracer is not None
            else None
        )
        started = time.perf_counter()
        try:
            if tracer is not None:
                # Ambient activation lets the storage layer hang its
                # wal_append / checkpoint spans under update_apply.
                with activate(tracer, apply_span.span_id):
                    self.db.update(add=job.add, remove=job.remove)
            else:
                self.db.update(add=job.add, remove=job.remove)
        except Exception as error:  # noqa: BLE001  # repro: noqa[RPR701] -- update outcome boundary: the error becomes the job future's result, never lost
            if tracer is not None:
                tracer.finish(apply_span, error=type(error).__name__)
            self.metrics.record_failed()
            job.future.set_exception(error)
        else:
            self._phase_seconds.inc(
                time.perf_counter() - started, phase="update_apply"
            )
            if tracer is not None:
                tracer.finish(apply_span)
            self.metrics.record_update()
            job.future.set_result(None)

    # -- introspection ---------------------------------------------------
    @property
    def shared_cache(self):
        """The primary engine's shared-data cache (None for ``no``).

        Checked against None explicitly: an *empty* cache is falsy (it
        has ``__len__``), and an idle engine's cache is exactly that.
        """
        engine = self.db.engine
        cache = getattr(engine, "rtc_cache", None)
        if cache is not None:
            return cache
        return getattr(engine, "closure_cache", None)

    def stats(self) -> dict:
        """Scheduler metrics merged with queue and shared-cache state."""
        stats = self.metrics.snapshot()
        stats["queue_depth"] = self._queue.qsize()
        stats["workers"] = self.workers
        cache = self.shared_cache
        if cache is not None:
            cache_stats = cache.snapshot_stats()
            stats["cache"] = {
                "mode": cache.mode,
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "entries": cache_stats.entries,
                "hit_rate": cache_stats.hit_rate,
            }
        return stats
