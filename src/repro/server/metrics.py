"""Live serving metrics: QPS, latency percentiles, batch shapes.

One :class:`ServerMetrics` instance is shared by the asyncio front end,
the scheduler and every worker thread, so all mutators take an internal
lock.  Latencies are kept in a bounded reservoir (the most recent
``window`` completions) -- percentiles describe recent behaviour, not
the full history, which is what a live ``stats`` probe wants.

Every recording also publishes into the process-wide
:class:`repro.obs.MetricsRegistry`, which is what the ``metrics`` wire
verb renders in Prometheus format: the reservoir answers "what were
recent latencies", the registry answers "what happened since boot".

The shared-cache hit/miss counts are *not* tracked here; they live in
the engine's :class:`~repro.core.cache.SharedDataCache` stats and are
merged into the ``stats`` response by the scheduler, so one counter
serves both the library and the server.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque

from repro.obs import get_registry

__all__ = ["ServerMetrics", "percentile"]


def percentile(values: list[float], fraction: float) -> float | None:
    """The ``fraction``-quantile of ``values`` by nearest-rank.

    Nearest-rank: the smallest value such that at least ``fraction`` of
    the sample is <= it, i.e. the 1-based rank ``ceil(fraction * n)``.
    ``percentile([1, 2, 3, 4], 0.5)`` is 2 (not 3: ``int(fraction * n)``
    is the *next* rank whenever ``fraction * n`` is exact).

    An empty sample has no quantiles: returns ``None`` (which JSON
    serialises as ``null``) so a freshly started or idle server's stats
    are distinguishable from a genuinely-zero latency.
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered)) - 1
    return ordered[min(len(ordered) - 1, max(0, rank))]


class ServerMetrics:
    """Thread-safe counters and latency reservoir for one server."""

    def __init__(self, window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._latencies: deque[float] = deque(maxlen=window)
        self.admitted = 0
        self.rejected = 0
        self.expired = 0
        self.failed = 0
        self.cancelled = 0
        self.completed = 0
        self.updates = 0
        self.batches = 0
        self.batched_queries = 0
        self.max_batch_size = 0
        registry = get_registry()
        self._requests_total = registry.counter(
            "repro_requests_total",
            "Queries by final outcome (admitted counts entries, not exits).",
            labels=("outcome",),
        )
        self._latency_histogram = registry.histogram(
            "repro_request_latency_seconds",
            "Admission-to-completion latency of finished queries.",
        )
        self._updates_total = registry.counter(
            "repro_updates_total", "Graph updates applied by the scheduler."
        )
        self._batches_total = registry.counter(
            "repro_batches_total", "Micro-batches dispatched to worker engines."
        )
        self._batched_queries_total = registry.counter(
            "repro_batched_queries_total",
            "Queries dispatched inside micro-batches.",
        )

    # -- recording (one call per event, all under the lock) --------------
    def record_admitted(self) -> None:
        with self._lock:
            self.admitted += 1
        self._requests_total.inc(outcome="admitted")

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1
        self._requests_total.inc(outcome="rejected")

    def record_expired(self) -> None:
        with self._lock:
            self.expired += 1
        self._requests_total.inc(outcome="expired")

    def record_failed(self) -> None:
        with self._lock:
            self.failed += 1
        self._requests_total.inc(outcome="failed")

    def record_cancelled(self) -> None:
        """An admitted job was cancelled before a worker claimed it."""
        with self._lock:
            self.cancelled += 1
        self._requests_total.inc(outcome="cancelled")

    def record_completed(self, latency: float) -> None:
        """One query finished ``latency`` seconds after admission."""
        with self._lock:
            self.completed += 1
            self._latencies.append(latency)
        self._requests_total.inc(outcome="completed")
        self._latency_histogram.observe(latency)

    def record_update(self) -> None:
        with self._lock:
            self.updates += 1
        self._updates_total.inc()

    def record_batch(self, size: int) -> None:
        """One micro-batch of ``size`` queries was dispatched to a worker."""
        with self._lock:
            self.batches += 1
            self.batched_queries += size
            if size > self.max_batch_size:
                self.max_batch_size = size
        self._batches_total.inc()
        self._batched_queries_total.inc(size)

    # -- reading ---------------------------------------------------------
    @property
    def uptime(self) -> float:
        return time.monotonic() - self._started

    def latency_values(self) -> list[float]:
        """A copy of the latency reservoir (cluster-wide percentile pooling)."""
        with self._lock:
            return list(self._latencies)

    def snapshot(self) -> dict:
        """A point-in-time metrics dict (the ``stats`` verb's core)."""
        with self._lock:
            latencies = list(self._latencies)
            uptime = time.monotonic() - self._started
            completed = self.completed
            # Admission counts queries and updates; each leaves in-flight
            # through exactly one of the five outcome counters below.
            in_flight = (
                self.admitted
                - completed
                - self.expired
                - self.failed
                - self.cancelled
                - self.updates
            )
            snapshot = {
                "uptime": uptime,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "expired": self.expired,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "completed": completed,
                "updates": self.updates,
                "in_flight": in_flight,
                "qps": completed / uptime if uptime > 0 else 0.0,
                "batches": self.batches,
                "mean_batch_size": (
                    self.batched_queries / self.batches if self.batches else 0.0
                ),
                "max_batch_size": self.max_batch_size,
            }
        snapshot["latency"] = {
            "window": len(latencies),
            "mean": sum(latencies) / len(latencies) if latencies else None,
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
        }
        return snapshot
