"""A bounded pool of :class:`~repro.server.Client` connections.

One :class:`ClientPool` owns up to ``size`` blocking clients to a single
server address and leases them out one caller at a time::

    pool = ClientPool(host, port, size=8)
    with pool.lease() as client:
        client.query("a.(b.c)+")
    pool.close()

Connections are created lazily (the pool starts empty), reused across
leases, and replaced transparently: a client that comes back poisoned
(see :meth:`Client.broken` -- a transport/protocol failure left its
stream desynchronised) or closed is discarded, and the next lease dials
a fresh connection.  When all ``size`` connections are out on lease,
:meth:`lease` blocks until one is returned (or raises
:class:`~repro.errors.ServerError` after ``lease_timeout`` seconds), so
the pool doubles as a client-side concurrency bound per server.

This is the transport the cluster's process backend uses to fan work out
to its shard worker (:mod:`repro.cluster.backends`), and it is equally
usable standalone for multi-threaded client applications.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.errors import ServerError
from repro.server.client import Client

__all__ = ["ClientPool"]


class ClientPool:
    """Up to ``size`` pooled :class:`Client` connections to one server."""

    def __init__(
        self,
        host: str,
        port: int,
        size: int = 4,
        connect_timeout: float = 10.0,
        socket_timeout: float | None = 120.0,
        lease_timeout: float | None = 60.0,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.host = host
        self.port = int(port)
        self.size = size
        self.connect_timeout = connect_timeout
        self.socket_timeout = socket_timeout
        self.lease_timeout = lease_timeout
        self._idle: list[Client] = []
        self._leased = 0
        self._closed = False
        self._condition = threading.Condition()

    @classmethod
    def connect(cls, address: str | tuple, **kwargs) -> "ClientPool":
        """Open a pool from ``"host:port"`` or a ``(host, port)`` pair."""
        if isinstance(address, str):
            host, separator, port = address.rpartition(":")
            if not separator or not port.isdigit():
                raise ServerError(
                    f"address must look like host:port, got {address!r}"
                )
            return cls(host or "127.0.0.1", int(port), **kwargs)
        host, port = address
        return cls(host, port, **kwargs)

    # -- lease protocol ---------------------------------------------------
    def acquire(self) -> Client:
        """Check one client out of the pool (dialing a new one if needed).

        Blocks while all ``size`` connections are leased; raises
        :class:`~repro.errors.ServerError` if the pool is closed or the
        wait exceeds ``lease_timeout``.
        """
        deadline = (
            None
            if self.lease_timeout is None
            else time.monotonic() + self.lease_timeout
        )
        with self._condition:
            while True:
                if self._closed:
                    raise ServerError("client pool is closed")
                if self._idle:
                    client = self._idle.pop()
                    self._leased += 1
                    return client
                if self._leased < self.size:
                    # Dial outside nothing: connection setup is quick and
                    # holding the lock keeps the accounting simple.
                    self._leased += 1
                    break
                # One deadline for the whole call: a wakeup that loses
                # the idle client to another waiter must not restart the
                # clock, or contention makes the timeout unbounded.
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    expired = True
                else:
                    expired = not self._condition.wait(timeout=remaining)
                if expired:
                    raise ServerError(
                        f"no pooled connection to {self.host}:{self.port} "
                        f"became free within {self.lease_timeout}s"
                    )
        try:
            return Client(
                self.host,
                self.port,
                connect_timeout=self.connect_timeout,
                socket_timeout=self.socket_timeout,
            )
        except BaseException:
            with self._condition:
                self._leased -= 1
                self._condition.notify()
            raise

    def release(self, client: Client) -> None:
        """Return a leased client; broken/closed ones are discarded."""
        reusable = not (client.closed or client.broken)
        with self._condition:
            self._leased -= 1
            if reusable and not self._closed:
                self._idle.append(client)
                client = None
            self._condition.notify()
        if client is not None:
            client.close()

    @contextmanager
    def lease(self):
        """``with pool.lease() as client:`` -- acquire/release in one step."""
        client = self.acquire()
        try:
            yield client
        finally:
            self.release(client)

    # -- lifecycle --------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Live pool occupancy (``idle`` / ``leased`` / ``size``)."""
        with self._condition:
            return {
                "idle": len(self._idle),
                "leased": self._leased,
                "size": self.size,
            }

    def close(self) -> None:
        """Close every idle connection and refuse further leases.

        Clients currently out on lease are closed when they come back
        through :meth:`release`.
        """
        with self._condition:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._condition.notify_all()
        for client in idle:
            client.close()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            f"idle={len(self._idle)}, leased={self._leased}"
        )
        return f"ClientPool({self.host}:{self.port}, size={self.size}, {state})"
