"""A small blocking client for the JSON-lines query server.

One socket, one request/response in flight at a time (the instance is
internally locked, so sharing one ``Client`` between threads serialises
their requests -- give each thread its own client for parallelism).
Server-side failures are re-raised locally as the same
:class:`~repro.errors.ReproError` subclasses the library throws, so code
is portable between embedding :class:`~repro.db.GraphDB` directly and
talking to a server::

    with Client.connect("127.0.0.1:7687") as client:
        result = client.query("a.(b.c)+")
        print(result.count, result.time, sorted(result.pairs))
        client.update(add=[("ann", "follows", "bob")])
        print(client.stats()["scheduler"]["qps"])
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass

from repro.errors import ProtocolError, ServerError
from repro.server import protocol

__all__ = ["Client", "QueryResult"]


@dataclass
class QueryResult:
    """One query's answer as it came over the wire."""

    query: str
    count: int
    time: float
    pairs: set | None  # None when the request asked for counts only

    def __iter__(self):
        if self.pairs is None:
            raise ServerError(
                "this result was fetched with pairs=False; only .count is known"
            )
        return iter(sorted(self.pairs, key=lambda p: (str(p[0]), str(p[1]))))

    def __len__(self) -> int:
        return self.count


class Client:
    """Blocking JSON-lines client; safe to share (requests serialise)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7687,
        connect_timeout: float = 10.0,
        socket_timeout: float | None = 120.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self._lock = threading.Lock()
        self._next_id = 0
        try:
            self._socket = socket.create_connection(
                (self.host, self.port), timeout=connect_timeout
            )
        except OSError as error:
            raise ServerError(
                f"cannot connect to {self.host}:{self.port}: {error}"
            ) from error
        self._socket.settimeout(socket_timeout)
        self._file = self._socket.makefile("rwb")
        self._closed = False
        #: Set to the failure reason after a transport/protocol error.
        #: A poisoned client's stream position is unknown (a half-read
        #: response, or a response still in flight after a timeout), so
        #: every later call fails fast instead of desyncing.
        self._broken: str | None = None

    @classmethod
    def connect(cls, address: str | tuple, **kwargs) -> "Client":
        """Open a client from ``"host:port"`` or a ``(host, port)`` pair."""
        if isinstance(address, str):
            host, separator, port = address.rpartition(":")
            if not separator or not port.isdigit():
                raise ServerError(
                    f"address must look like host:port, got {address!r}"
                )
            return cls(host or "127.0.0.1", int(port), **kwargs)
        host, port = address
        return cls(host, port, **kwargs)

    # -- lifecycle -------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        """True once a transport/protocol error poisoned this connection."""
        return self._broken is not None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transport -------------------------------------------------------
    def _poison(self, reason: str) -> None:
        """Mark the connection unusable and release the socket.

        Called (under the lock) after any failure that leaves the stream
        in an unknown state.  Server-*reported* errors (an ``ok: false``
        response) do not poison: the stream is still framed correctly.
        """
        self._broken = reason
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            try:
                self._socket.close()
            except OSError:
                pass

    def _call(self, payload: dict) -> dict:
        """One request/response round trip; raises on error responses.

        Transport failures (``OSError``, a closed stream) and protocol
        violations (unparseable response, id mismatch) poison the client:
        the next call raises :class:`~repro.errors.ServerError`
        immediately instead of writing onto a desynchronised stream.
        """
        with self._lock:
            if self._closed:
                raise ServerError("client is closed")
            if self._broken is not None:
                error = ServerError(
                    f"client is poisoned after a transport error "
                    f"({self._broken}); open a new Client"
                )
                error.code = "poisoned"
                raise error
            self._next_id += 1
            request_id = self._next_id
            payload = {"id": request_id, **payload}
            try:
                self._file.write(protocol.encode(payload))
                self._file.flush()
                line = self._file.readline()
            except OSError as error:
                self._poison(f"connection lost: {error}")
                raise ServerError(f"connection lost: {error}") from error
            if not line:
                self._poison("server closed the connection")
                raise ServerError("server closed the connection")
            try:
                response = protocol.decode_line(line)
            except ProtocolError as error:
                self._poison(f"unparseable response: {error}")
                raise
            if response.get("id") not in (None, request_id):
                self._poison(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {request_id!r}"
                )
                raise ProtocolError(
                    f"response id {response.get('id')!r} does not match "
                    f"request id {request_id!r}"
                )
        if not response.get("ok"):
            raise protocol.exception_from_payload(response.get("error", {}))
        return response

    # -- verbs -----------------------------------------------------------
    def call(self, op: str, **fields) -> dict:
        """One generic protocol round trip; returns the raw response.

        The escape hatch for protocol extensions the typed helpers below
        do not cover (e.g. the shard workers' ``stats`` detail fields).
        Server-reported failures raise like every other verb.
        """
        return self._call({"op": op, **fields})

    def ping(self) -> int:
        """Liveness check; returns the server's protocol version."""
        return self._call({"op": "ping"})["version"]

    def query(
        self,
        query: str,
        timeout: float | None = None,
        pairs: bool = True,
    ) -> QueryResult:
        """Evaluate one RPQ; raises the server-side error if it failed."""
        return self.query_many([query], timeout=timeout, pairs=pairs)[0]

    def query_traced(
        self,
        query: str,
        timeout: float | None = None,
        pairs: bool = True,
    ) -> tuple[QueryResult, dict | None]:
        """Evaluate one RPQ with distributed tracing turned on.

        Returns ``(result, trace)`` where ``trace`` is the assembled
        cross-process span tree (``{"id": ..., "spans": [...]}``; render
        it with :func:`repro.obs.render_trace`).
        """
        results, response = self.query_call(
            [query], timeout=timeout, pairs=pairs, trace=True
        )
        return results[0], response.get("trace")

    def query_many(
        self,
        queries: list[str],
        timeout: float | None = None,
        pairs: bool = True,
    ) -> list[QueryResult]:
        """Evaluate a multiple-RPQ set in one request.

        The server batches the set (and any concurrently in-flight
        queries sharing the same closure bodies) through its scheduler.
        Raises on the first per-query error.
        """
        results, _response = self.query_call(queries, timeout=timeout, pairs=pairs)
        return results

    def query_call(
        self,
        queries: list[str],
        timeout: float | None = None,
        pairs: bool = True,
        trace: object = None,
        enc: str | None = None,
    ) -> tuple[list[QueryResult], dict]:
        """The raw query round trip: ``(results, full_response)``.

        ``trace`` goes out verbatim as the request's ``trace`` field --
        ``True`` to originate a trace, an ``{"id", "parent"}`` dict to
        join one (how the cluster router propagates to shard workers).
        The caller reads the assembled span tree off
        ``response.get("trace")``.  ``enc="packed"`` asks for the
        packed-rows pair encoding; decoding is transparent, so callers
        see ordinary pair sets either way.
        """
        payload: dict = {"op": "query", "queries": list(queries), "pairs": pairs}
        if timeout is not None:
            payload["timeout"] = timeout
        if trace is not None:
            payload["trace"] = trace
        if enc is not None:
            payload["enc"] = enc
        response = self._call(payload)
        results = []
        for entry in response["results"]:
            if "error" in entry:
                raise protocol.exception_from_payload(entry["error"])
            results.append(
                QueryResult(
                    query=entry["query"],
                    count=entry["count"],
                    time=entry.get("time", 0.0),
                    pairs=(
                        protocol.wire_to_pairs(entry["pairs"])
                        if "pairs" in entry
                        else None
                    ),
                )
            )
        return results, response

    def stats(self) -> dict:
        """The server's live ``stats`` document."""
        return self._call({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The server's metrics registry in Prometheus exposition format."""
        return self._call({"op": "metrics"})["metrics"]

    def update(self, add=(), remove=(), trace: object = None) -> dict:
        """Apply streaming edge changes on the server's session."""
        payload: dict = {
            "op": "update",
            "add": [list(edge) for edge in add],
            "remove": [list(edge) for edge in remove],
        }
        if trace is not None:
            payload["trace"] = trace
        return self._call(payload)

    def watch(self, body: str) -> str:
        """Attach an incremental watcher; returns the normalised body."""
        return self._call({"op": "watch", "body": body})["body"]

    def reaches(self, body: str, source, target) -> bool:
        """One reachability probe against the watcher of ``body``."""
        return self._call(
            {"op": "reaches", "body": body, "source": source, "target": target}
        )["reaches"]

    def __repr__(self) -> str:
        if self._closed:
            state = "closed"
        elif self._broken is not None:
            state = "poisoned"
        else:
            state = "open"
        return f"Client({self.host}:{self.port}, {state})"
