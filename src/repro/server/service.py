"""The asyncio JSON-lines TCP server fronting one :class:`GraphDB`.

The event loop owns the sockets only: requests are decoded, validated
and handed to the :class:`~repro.server.scheduler.SharingScheduler`,
whose worker threads do the CPU-bound evaluation -- the loop stays free
to accept and multiplex clients while workers grind.  Responses are
written back on the connection the request arrived on, tagged with the
request ``id``.

Three entry points:

* :class:`QueryServer` -- the async server proper (``await start()`` /
  ``serve_forever()`` / ``stop()``);
* :meth:`QueryServer.run` -- blocking convenience for the CLI
  (``repro serve``);
* :class:`ServerThread` -- runs the whole server on a background
  daemon thread; the handle tests, benchmarks and examples use
  (``with ServerThread(db) as handle: Client(*handle.address)``).
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time

from dataclasses import dataclass, field

from repro.db.session import GraphDB
from repro.errors import (
    AdmissionError,
    ProtocolError,
    ReproError,
    RPQSyntaxError,
    ServerError,
)
from repro.obs import SlowQueryLog, Tracer, get_registry
from repro.regex.parser import parse
from repro.server import protocol
from repro.server.scheduler import SharingScheduler

__all__ = ["ServerConfig", "QueryServer", "ServerThread"]


@dataclass
class ServerConfig:
    """Tunables of one :class:`QueryServer` (defaults suit tests/dev)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is in server.address
    workers: int = 4
    max_queue: int = 256
    batch_window: float = 0.005
    max_batch: int = 64
    #: Per-request deadline in seconds when the client sends none.
    default_timeout: float | None = 30.0
    #: Forwarded to the per-worker engines (mirror the session's options).
    engine_kwargs: dict = field(default_factory=dict)
    #: Slow-query forensics: JSONL path for completed trace trees of
    #: requests slower than the threshold (None = off).  Enabling it
    #: traces *every* request server-side (the tree must already exist
    #: when the request turns out slow); responses stay unchanged.
    slow_query_log: str | None = None
    slow_query_threshold: float = 1.0


class QueryServer:
    """Concurrent, sharing-aware RPQ server over one session.

    ``scheduler`` defaults to a :class:`SharingScheduler` over ``db``;
    passing another object with the scheduler surface (``start`` /
    ``stop`` / ``submit`` / ``submit_update`` / ``stats``) re-targets the
    same protocol front end -- that is how
    :class:`~repro.cluster.ClusterRouter` serves a sharded deployment.
    """

    def __init__(
        self,
        db: GraphDB,
        config: ServerConfig | None = None,
        scheduler=None,
    ) -> None:
        self.db = db
        self.config = config or ServerConfig()
        self.scheduler = scheduler if scheduler is not None else SharingScheduler(
            db,
            workers=self.config.workers,
            max_queue=self.config.max_queue,
            batch_window=self.config.batch_window,
            max_batch=self.config.max_batch,
            engine_kwargs=self.config.engine_kwargs,
            start=False,
        )
        self._server: asyncio.AbstractServer | None = None
        self._connections = 0
        self._slow_log = (
            SlowQueryLog(
                self.config.slow_query_log, self.config.slow_query_threshold
            )
            if self.config.slow_query_log
            else None
        )
        self._handlers = {
            "query": self._op_query,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "update": self._op_update,
            "watch": self._op_watch,
            "reaches": self._op_reaches,
            "checkpoint": self._op_checkpoint,
            "ping": self._op_ping,
        }

    # -- lifecycle -------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise ServerError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        """Bind the listener and start the scheduler."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close the listener, then drain and stop the scheduler."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # stop() joins worker threads -- keep it off the event loop.
        await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.stop
        )

    def run(self, ready_callback=None, handle_signals: bool = True) -> None:
        """Blocking entry point (the CLI and the cluster's shard workers).

        Serves until interrupted.  When ``handle_signals`` is true and we
        are on the main thread, ``SIGTERM`` and ``SIGINT`` trigger a
        *graceful* shutdown: the listener closes, the scheduler drains
        its in-flight work, and the call returns -- this is how cluster
        worker processes die cleanly when their backend terminates them.
        """

        async def main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()
            stop_requested = asyncio.Event()
            installed: list[signal.Signals] = []
            if (
                handle_signals
                and threading.current_thread() is threading.main_thread()
            ):
                for signum in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(signum, stop_requested.set)
                    except (NotImplementedError, RuntimeError, ValueError):
                        continue  # platform/loop without signal support
                    installed.append(signum)
            # Announce only once the graceful-shutdown handlers are in
            # place: a supervisor may SIGTERM the instant it learns the
            # address (the cluster's process backend does in tests).
            if ready_callback is not None:
                ready_callback(self.address)
            serve_task = asyncio.ensure_future(self._server.serve_forever())
            stop_task = asyncio.ensure_future(stop_requested.wait())
            try:
                await asyncio.wait(
                    {serve_task, stop_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                for task in (serve_task, stop_task):
                    task.cancel()
                outcomes = await asyncio.gather(
                    serve_task, stop_task, return_exceptions=True
                )
                for signum in installed:
                    loop.remove_signal_handler(signum)
                await self.stop()
            # A listener crash is a crash, not a shutdown: re-raise it
            # (after cleanup) so callers -- the CLI, worker_main --
            # exit loudly instead of reporting a clean stop.
            serve_outcome = outcomes[0]
            if isinstance(serve_outcome, BaseException) and not isinstance(
                serve_outcome, asyncio.CancelledError
            ):
                raise serve_outcome

        try:
            asyncio.run(main())
        except KeyboardInterrupt:
            pass

    # -- connection handling ---------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # line longer than the read limit
                    response = protocol.error_response(
                        None, ProtocolError("request line too long")
                    )
                    writer.write(protocol.encode(response))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._handle_line(line)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        request_id = None
        try:
            request = protocol.decode_line(line)
            request_id = request.get("id")
            op = request.get("op")
            handler = self._handlers.get(op)
            if handler is None:
                raise ProtocolError(
                    f"unknown op {op!r}; expected one of {', '.join(protocol.VERBS)}"
                )
            return await handler(request_id, request)
        except Exception as error:  # noqa: BLE001  # repro: noqa[RPR701] -- connection loop: every failure must become an error response, never a dead socket
            return protocol.error_response(request_id, error)

    # -- tracing ---------------------------------------------------------
    def _begin_trace(self, request):
        """Start (or join) this request's distributed trace.

        Returns ``(tracer, parent_span_id, root_span, echo)``:

        * no ``trace`` field and no slow-query log -> all ``None``/False
          -- the zero-cost path; nothing below allocates a span.
        * ``"trace": true`` -- a client-originated trace: fresh tracer,
          a ``request`` root span, and ``echo=True`` (the assembled tree
          goes back in the response).
        * ``"trace": {"id", "parent"}`` -- propagated by a router: join
          the existing trace under the router's span; our spans ship
          back for the router to absorb (``echo=True``), but we own no
          root.
        * slow-query log configured, client silent -> trace server-side
          only (``echo=False``): the tree feeds forensics, the response
          stays byte-identical.
        """
        wire = request.get("trace")
        if wire is None and self._slow_log is None:
            return None, None, None, False
        if isinstance(wire, dict):
            trace_id = wire.get("id")
            tracer = Tracer(str(trace_id) if trace_id else None)
            parent = wire.get("parent")
            return tracer, parent if isinstance(parent, str) else None, None, True
        if wire is not None and wire is not True:
            raise ProtocolError(
                "'trace' must be true or an {'id', 'parent'} object"
            )
        tracer = Tracer()
        root = tracer.begin("request")
        return tracer, root.span_id, root, wire is True

    async def _finish_trace(self, tracer, root_span, queries, started) -> None:
        """Close the root span and feed the slow-query log (off-loop)."""
        if root_span is not None:
            tracer.finish(root_span)
        slow_log = self._slow_log
        if slow_log is None or root_span is None:
            return
        elapsed = time.monotonic() - started
        if elapsed < slow_log.threshold:
            return
        trace_wire = tracer.to_wire()

        def record() -> None:
            plans: dict = {}
            explain = getattr(self.db, "explain", None)
            if explain is not None:
                for text in queries:
                    try:
                        plan = explain(text)
                        describe = getattr(plan, "describe", None)
                        plans[text] = (
                            describe() if callable(describe) else str(plan)
                        )
                    except ReproError:
                        # Forensics only: a query that cannot be planned
                        # (syntax/evaluation errors) just has no plan in
                        # the slow-log entry.  Genuine bugs propagate.
                        continue
            slow_log.maybe_record(queries, elapsed, trace_wire, plans)

        await self._in_executor(record)

    # -- verbs -----------------------------------------------------------
    async def _op_query(self, request_id, request) -> dict:
        queries = request.get("queries")
        if queries is None and "query" in request:
            queries = [request["query"]]
        if (
            not isinstance(queries, list)
            or not queries
            or not all(isinstance(q, str) for q in queries)
        ):
            raise ProtocolError(
                "'query' op needs 'queries' (a non-empty list of strings) "
                "or 'query' (a string)"
            )
        timeout = request.get("timeout", self.config.default_timeout)
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError("'timeout' must be a number of seconds")
        include_pairs = bool(request.get("pairs", True))
        enc = request.get("enc")
        if enc is not None and enc != "packed":
            raise ProtocolError("'enc' must be \"packed\" when present")

        # Parse everything before admitting anything: a syntax error
        # rejects the request without consuming queue slots.
        try:
            nodes = [parse(text) for text in queries]
        except RPQSyntaxError as error:
            return protocol.error_response(request_id, error)

        tracer, parent, root_span, echo = self._begin_trace(request)
        started = time.monotonic()

        futures = []
        try:
            for text, node in zip(queries, nodes):
                trace = None
                if tracer is not None:
                    query_span = tracer.begin("query", parent=parent, query=text)
                    trace = (tracer, query_span.span_id)
                future = self._submit_query(
                    text, node, timeout, include_pairs, trace=trace
                )
                if tracer is not None:
                    future.add_done_callback(
                        lambda _future, span=query_span: tracer.finish(span)
                    )
                futures.append(future)
        except AdmissionError as error:
            # All-or-nothing admission: cancel what we already queued.
            for future in futures:
                future.cancel()
            return protocol.error_response(request_id, error)

        results = []
        for text, future in zip(queries, futures):
            entry: dict = {"query": text}
            try:
                payload, elapsed = await asyncio.wrap_future(future)
            except Exception as error:  # noqa: BLE001  # repro: noqa[RPR701] -- per-query outcome: each query's failure is its own response entry; the batch must not die
                entry["error"] = protocol.error_payload(error)
            else:
                # A counts-aware scheduler (the cluster, when the client
                # asked for counts only) may resolve to a bare int
                # instead of a pair-set.
                entry["count"] = (
                    payload if isinstance(payload, int) else len(payload)
                )
                entry["time"] = elapsed
                if include_pairs:
                    entry["pairs"] = protocol.pairs_to_wire(payload, enc=enc)
            results.append(entry)
        if tracer is None:
            return protocol.ok_response(request_id, results=results)
        await self._finish_trace(tracer, root_span, queries, started)
        if not echo:
            return protocol.ok_response(request_id, results=results)
        return protocol.ok_response(
            request_id, results=results, trace=tracer.to_wire()
        )

    def _submit_query(self, text, node, timeout, include_pairs, trace=None):
        """Admission hook; subclasses may forward the pairs/counts intent.

        The base scheduler always materialises pair-sets in this
        process (returning them is free), so ``include_pairs`` is
        irrelevant here -- the cluster router forwards it so process
        shards can skip serialising pairs nobody asked for.  ``trace``
        is the ``(tracer, parent_span_id)`` of this query's span, or
        None when the request is untraced.
        """
        return self.scheduler.submit(text, node, timeout=timeout, trace=trace)

    async def _op_stats(self, request_id, request) -> dict:
        # db.stats() takes the session lock; keep the wait off the loop.
        session_stats = await self._in_executor(self.db.stats)
        stats = {
            "server": {
                "address": list(self.address),
                "connections": self._connections,
                "version": protocol.PROTOCOL_VERSION,
            },
            "scheduler": self.scheduler.stats(),
            "session": session_stats,
        }
        return protocol.ok_response(request_id, stats=stats)

    @staticmethod
    async def _in_executor(function, *args):
        return await asyncio.get_running_loop().run_in_executor(
            None, function, *args
        )

    async def _op_metrics(self, request_id, request) -> dict:
        """The process-wide metrics registry as Prometheus text."""
        text = await self._in_executor(get_registry().render_prometheus)
        return protocol.ok_response(
            request_id, metrics=text, format="prometheus"
        )

    async def _op_update(self, request_id, request) -> dict:
        add = self._edge_list(request.get("add", ()), "add")
        remove = self._edge_list(request.get("remove", ()), "remove")
        if not add and not remove:
            raise ProtocolError("'update' op needs 'add' and/or 'remove' edges")
        tracer, parent, root_span, echo = self._begin_trace(request)
        started = time.monotonic()
        trace = (tracer, parent) if tracer is not None else None
        future = self.scheduler.submit_update(add=add, remove=remove, trace=trace)
        await asyncio.wrap_future(future)
        if tracer is None:
            return protocol.ok_response(
                request_id, added=len(add), removed=len(remove)
            )
        await self._finish_trace(
            tracer,
            root_span,
            [f"update(+{len(add)},-{len(remove)})"],
            started,
        )
        if not echo:
            return protocol.ok_response(
                request_id, added=len(add), removed=len(remove)
            )
        return protocol.ok_response(
            request_id,
            added=len(add),
            removed=len(remove),
            trace=tracer.to_wire(),
        )

    @staticmethod
    def _edge_list(raw, which: str) -> list[tuple]:
        if not isinstance(raw, (list, tuple)):
            raise ProtocolError(f"'{which}' must be a list of [source, label, target]")
        edges = []
        for entry in raw:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise ProtocolError(
                    f"'{which}' entries must be [source, label, target], got {entry!r}"
                )
            edges.append(tuple(entry))
        return edges

    async def _op_checkpoint(self, request_id, request) -> dict:
        """Commit a durable checkpoint (``{"op": "checkpoint"}``).

        Routed to ``self.db.checkpoint`` -- a storage-backed
        :class:`~repro.db.GraphDB` (or a whole
        :class:`~repro.cluster.GraphCluster`, which fans out per shard).
        Deployments without a data dir answer with the structured error
        the session/cluster raises.  Snapshot writes block, so the
        commit runs off the event loop.
        """
        info = await self._in_executor(self.db.checkpoint)
        return protocol.ok_response(request_id, checkpoint=info)

    async def _op_watch(self, request_id, request) -> dict:
        body = request.get("body")
        if not isinstance(body, str) or not body:
            raise ProtocolError("'watch' op needs 'body' (a closure-body string)")
        # Creating a watcher computes its initial RTC -- off the loop.
        await self._in_executor(self.db.watch, body)
        return protocol.ok_response(request_id, body=parse(body).to_string())

    async def _op_reaches(self, request_id, request) -> dict:
        body = request.get("body")
        if not isinstance(body, str) or not body:
            raise ProtocolError("'reaches' op needs 'body' (a closure-body string)")
        if "source" not in request or "target" not in request:
            raise ProtocolError("'reaches' op needs 'source' and 'target'")

        def probe() -> bool:
            # db.reaches holds the session lock, so the probe cannot see
            # a concurrent update's half-rebuilt watcher state.
            return self.db.reaches(body, request["source"], request["target"])

        return protocol.ok_response(
            request_id, reaches=await self._in_executor(probe)
        )

    async def _op_ping(self, request_id, request) -> dict:
        return protocol.ok_response(
            request_id, pong=True, version=protocol.PROTOCOL_VERSION
        )


class ServerThread:
    """A :class:`QueryServer` on a background daemon thread.

    The in-process deployment used by tests, the benchmark and the
    streaming example::

        with ServerThread(db) as handle:
            client = Client(*handle.address)
            ...

    ``start`` blocks until the listener is bound (so ``address`` is
    immediately usable) and re-raises any startup failure.

    Accepts either a :class:`~repro.db.GraphDB` (wrapped in a fresh
    :class:`QueryServer`) or an already-configured :class:`QueryServer`
    subclass instance, e.g. a :class:`~repro.cluster.ClusterRouter`.
    """

    def __init__(
        self, db: "GraphDB | QueryServer", config: ServerConfig | None = None
    ) -> None:
        if isinstance(db, QueryServer):
            if config is not None:
                raise ValueError(
                    "pass the ServerConfig to the QueryServer itself; "
                    "ServerThread(server, config) would silently ignore it"
                )
            self.server = db
        else:
            self.server = QueryServer(db, config)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    def start(self) -> "ServerThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServerError("server thread failed to start in time")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as error:  # noqa: BLE001  # repro: noqa[RPR701] -- thread main: the startup error is stashed and re-raised by start() on the caller's thread
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=30)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
