"""The JSON-lines wire protocol of the query server.

One request per line, one response per line, both UTF-8 JSON objects.
Requests carry an ``op`` (the protocol verb) and an optional ``id`` the
server echoes back, so clients can pipeline.  Responses always carry
``ok``; failures add an ``error`` object with a machine-readable
``code`` (mirrored by the :class:`~repro.errors.ServerError` hierarchy)
and a human-readable ``message``.

Verbs
-----
``query``
    ``{"op": "query", "queries": ["a.(b.c)+"], "timeout": 5.0,
    "pairs": true}`` -- evaluate one or more RPQs.  ``query`` (a single
    string) is accepted as shorthand for a one-element ``queries``.
    ``pairs: false`` returns only counts (cheaper on the wire).  The
    response carries one entry per query, each either a result
    (``count``/``pairs``/``time``) or a per-query ``error``.

    Shard workers additionally accept ``mode: "partial"`` with a
    ``boundary`` vertex list and an optional ``frontier`` of
    ``[start, vertex, state]`` triples: the worker evaluates the query
    restricted to its shard subgraph and responds with a ``partial``
    object (``accepts`` pairs, ``boundary`` triples, ``time``) instead
    of ``results``.  Router-facing servers do not expose this mode.

    Requests may opt into the **packed-rows encoding** with
    ``"enc": "packed"``: pair and triple payloads in the response are
    then JSON objects ``{"enc": "packed", "vertices": [...],
    "rows": {...}}`` instead of lists.  ``vertices`` is a local
    interner table (vertex of index ``i`` at position ``i``); each
    ``rows`` entry maps a source index (pairs) or
    ``"<start index>:<state>"`` (partial triples) to a hex-encoded
    bitmap over target/vertex indexes.  Decoders
    (:func:`wire_to_pairs` / :func:`wire_to_rows`) are polymorphic, so
    packed payloads are transparent to callers; servers that predate
    the encoding simply keep answering with lists.  Packing shrinks
    closure-heavy responses by an order of magnitude (one hex digit
    carries four pairs) and is what the cluster router requests from
    its shard workers for partial answers and counts-only fan-out.
``stats``
    Live server metrics (QPS, latency percentiles, batch sizes, queue
    depth, shared-cache hits) merged with the session's graph/engine
    statistics.
``metrics``
    ``{"op": "metrics"}`` -- the process-wide metrics registry rendered
    in Prometheus text exposition format; the response is
    ``{"ok": true, "metrics": "<text>", "format": "prometheus"}``.
    Scrape-friendly and append-only: counters are monotonic across
    requests.
``update``
    ``{"op": "update", "add": [["v", "label", "w"], ...],
    "remove": [...]}`` -- streaming edge changes, applied exclusively
    (the scheduler drains in-flight batches first).
``watch`` / ``reaches``
    Attach an incremental watcher to a closure body / answer one
    reachability probe from it.
``ping``
    Liveness check; echoes the protocol version.

Tracing
-------
``query`` and ``update`` requests accept an optional ``trace`` field.
``"trace": true`` (client-originated) asks the server to record a
distributed trace for this request; the response then carries
``"trace": {"id": ..., "spans": [...]}`` -- the flat span list of the
assembled tree (see :mod:`repro.obs.trace`).  Routers propagate by
sending ``"trace": {"id": trace_id, "parent": span_id}`` to shard
workers, whose response spans are absorbed into the router's tree with
parent links intact (span ids are pid-prefixed, hence unique across
the cluster's processes).  Requests without a ``trace`` field are
served exactly as before -- no span objects are allocated and the
response is unchanged.

Error codes
-----------
``bad_request`` (malformed JSON / unknown verb / bad fields),
``syntax`` (RPQ parse error), ``rejected`` (admission control: queue
full), ``deadline`` (request expired before evaluation), ``cluster``
and its namespaced sub-codes (``cluster.topology``,
``cluster.worker_start``, ``cluster.unknown_edge``,
``cluster.unsupported`` -- any code with the ``cluster`` prefix
rehydrates to :class:`~repro.errors.ClusterError`), ``closed`` (server
shutting down), ``evaluation`` and ``internal``.  Cluster errors may
carry ``shards`` and ``detail`` fields alongside ``code``/``message``.
"""

from __future__ import annotations

import json

from repro.bitset.interner import VertexInterner
from repro.bitset.pairbitmap import PairBitmap
from repro.errors import (
    AdmissionError,
    ClusterError,
    DeadlineExpiredError,
    ProtocolError,
    ReproError,
    RPQSyntaxError,
    ServerError,
    StorageError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "VERBS",
    "encode",
    "decode_line",
    "ok_response",
    "error_response",
    "error_payload",
    "pairs_to_wire",
    "wire_to_pairs",
    "rows_to_wire",
    "wire_to_rows",
    "exception_from_payload",
]

#: Bumped on incompatible wire changes; echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Hard cap on one request/response line (also the asyncio read limit).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: The protocol verbs the server dispatches on.  ``checkpoint`` is
#: answered only by storage-backed deployments (``--data-dir``); others
#: respond with a structured ``storage.unsupported``-style error.
VERBS = (
    "query",
    "stats",
    "metrics",
    "update",
    "watch",
    "reaches",
    "checkpoint",
    "ping",
)

_CODE_TO_ERROR = {
    "rejected": AdmissionError,
    "deadline": DeadlineExpiredError,
    "bad_request": ProtocolError,
    "cluster": ClusterError,
    "syntax": RPQSyntaxError,
    "storage": StorageError,
}


def encode(message: dict) -> bytes:
    """Serialise one protocol message to a newline-terminated line."""
    return (
        json.dumps(message, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one wire line into a request/response object.

    Raises :class:`~repro.errors.ProtocolError` for oversized lines,
    invalid JSON and non-object payloads.
    """
    if isinstance(line, str):
        line = line.encode("utf-8")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line exceeds {MAX_LINE_BYTES} bytes ({len(line)} received)"
        )
    try:
        message = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"invalid JSON line: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    return message


def ok_response(request_id: object = None, **payload) -> dict:
    """A success response echoing the request ``id``."""
    response = {"ok": True, **payload}
    if request_id is not None:
        response["id"] = request_id
    return response


def error_payload(error: BaseException) -> dict:
    """The ``{"code", "message"}`` wire form of an exception.

    Cluster errors additionally ship their structured ``shards`` and
    ``detail`` fields (when set), so remote callers can dispatch on
    the same data as local ones.
    """
    if isinstance(error, RPQSyntaxError):
        code = "syntax"
    elif isinstance(error, ServerError):
        code = error.code
    elif isinstance(error, StorageError):
        code = "storage"
    elif isinstance(error, ReproError):
        code = "evaluation"
    else:
        code = "internal"
    payload = {"code": code, "message": str(error)}
    if isinstance(error, ClusterError):
        if error.shards:
            payload["shards"] = list(error.shards)
        if error.detail is not None:
            payload["detail"] = error.detail
    return payload


def error_response(request_id: object, error: BaseException | dict) -> dict:
    """A failure response; ``error`` is an exception or a ready payload."""
    if isinstance(error, BaseException):
        error = error_payload(error)
    response = {"ok": False, "error": error}
    if request_id is not None:
        response["id"] = request_id
    return response


def exception_from_payload(payload: dict) -> ServerError | RPQSyntaxError:
    """Rehydrate a client-side exception from a wire error payload.

    The inverse of :func:`error_payload`, used by
    :class:`repro.server.Client` so callers catch the same
    :class:`~repro.errors.ReproError` subclasses locally and remotely.
    """
    code = payload.get("code", "internal")
    message = payload.get("message", "server error")
    if code == "cluster" or code.startswith("cluster."):
        return ClusterError(
            message,
            code=code,
            shards=tuple(payload.get("shards", ())),
            detail=payload.get("detail"),
        )
    error_class = _CODE_TO_ERROR.get(code)
    if error_class is RPQSyntaxError:
        return RPQSyntaxError(message)
    if error_class is not None:
        return error_class(message)
    error = ServerError(message)
    error.code = code
    return error


def pairs_to_wire(pairs, enc: str | None = None) -> list | dict:
    """Result pairs for the wire; ``enc="packed"`` emits bitmap rows.

    The default (list) encoding is 2-lists in deterministic string
    order.  The packed encoding is self-describing: a local ``vertices``
    interner table plus hex dst bitmaps keyed by source index -- no
    shared id space with the peer is assumed.  Vertices may be ints or
    strings; ordering is by string form purely for wire determinism
    (clients compare as sets).  ``pairs`` may be a set of tuples or a
    :class:`~repro.bitset.PairBitmap`.
    """
    if isinstance(pairs, PairBitmap):
        pairs = pairs.pairs
    ordered = sorted(pairs, key=lambda p: (str(p[0]), str(p[1])))
    if enc != "packed":
        return [list(pair) for pair in ordered]
    table = VertexInterner()
    rows: dict[str, int] = {}
    for source, target in ordered:
        key = str(table.intern(source))
        rows[key] = rows.get(key, 0) | (1 << table.intern(target))
    return {
        "enc": "packed",
        "vertices": table.vertices(),
        "rows": {key: format(mask, "x") for key, mask in rows.items()},
    }


def _unpack_mask(hex_mask: str):
    mask = int(hex_mask, 16)
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def wire_to_pairs(wire: list | dict) -> set:
    """The client-side inverse of :func:`pairs_to_wire` (both encodings)."""
    if isinstance(wire, dict):
        vertices = wire["vertices"]
        pairs = set()
        for key, hex_mask in wire["rows"].items():
            source = vertices[int(key)]
            for index in _unpack_mask(hex_mask):
                pairs.add((source, vertices[index]))
        return pairs
    return {(source, target) for source, target in wire}


def rows_to_wire(rows, enc: str | None = None) -> list | dict:
    """Partial-path triples for the wire; ``enc="packed"`` packs them.

    Used for the ``[start, vertex, state]`` triples of the
    ``mode: "partial"`` query extension -- same string-form ordering
    contract as :func:`pairs_to_wire`.  Packed rows are keyed
    ``"<start index>:<state>"`` with a hex bitmap over vertex indexes
    (states are small automaton ints, kept verbatim in the key).
    """
    ordered = sorted(rows, key=lambda r: (str(r[0]), str(r[1]), str(r[2])))
    if enc != "packed":
        return [list(row) for row in ordered]
    table = VertexInterner()
    packed: dict[str, int] = {}
    for start, vertex, state in ordered:
        key = f"{table.intern(start)}:{int(state)}"
        packed[key] = packed.get(key, 0) | (1 << table.intern(vertex))
    return {
        "enc": "packed",
        "vertices": table.vertices(),
        "rows": {key: format(mask, "x") for key, mask in packed.items()},
    }


def wire_to_rows(wire: list | dict) -> set:
    """The client-side inverse of :func:`rows_to_wire` (both encodings)."""
    if isinstance(wire, dict):
        vertices = wire["vertices"]
        rows = set()
        for key, hex_mask in wire["rows"].items():
            start_index, _, state = key.partition(":")
            start = vertices[int(start_index)]
            state = int(state)
            for index in _unpack_mask(hex_mask):
                rows.add((start, vertices[index], state))
        return rows
    return {(first, second, third) for first, second, third in wire}
