"""``repro.server`` -- a concurrent, sharing-aware RPQ query server.

The subsystem that turns the library into a service: an asyncio
JSON-lines TCP front end (:class:`QueryServer`, ``repro serve`` on the
CLI) over one :class:`~repro.db.GraphDB` session, with

* a **sharing-aware scheduler** (:class:`SharingScheduler`) that
  micro-batches in-flight queries by common Kleene-closure body, so
  concurrent clients amortise one reduced transitive closure exactly
  like the paper's multiple-RPQ sets do;
* a **worker pool** of per-thread engine handles over the session's
  lock-protected shared-data cache;
* **admission control**: a bounded queue (backpressure as
  :class:`~repro.errors.AdmissionError`), per-request deadlines
  (:class:`~repro.errors.DeadlineExpiredError`), exclusive updates;
* live **metrics** (QPS, latency percentiles, batch sizes, cache hits)
  behind the ``stats`` protocol verb;
* a small blocking :class:`Client` mirroring the session API.

>>> from repro.db import GraphDB
>>> from repro.server import Client, ServerThread
>>> from repro.graph import paper_figure1_graph
>>> with ServerThread(GraphDB.open(paper_figure1_graph())) as handle:
...     with Client(*handle.address) as client:
...         sorted(client.query("d.(b.c)+.c").pairs)
[(7, 3), (7, 5)]
"""

from repro.server.client import Client, QueryResult
from repro.server.metrics import ServerMetrics
from repro.server.pool import ClientPool
from repro.server.scheduler import SharingScheduler
from repro.server.service import QueryServer, ServerConfig, ServerThread

__all__ = [
    "Client",
    "ClientPool",
    "QueryResult",
    "QueryServer",
    "ServerConfig",
    "ServerThread",
    "ServerMetrics",
    "SharingScheduler",
]
