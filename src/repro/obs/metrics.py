"""A process-local metrics registry with Prometheus text exposition.

Three instrument kinds, all label-aware and all monotonic-safe under
concurrency (one registry lock; these are counters on a request path,
not a contention hotspot next to fsync and closure joins):

* ``counter`` -- monotonically increasing totals (requests, WAL appends).
* ``gauge``   -- last-write-wins levels (queue depth, last LSN).
* ``histogram`` -- fixed-bucket cumulative histograms (request latency),
  rendered with the standard ``_bucket{le=...}`` / ``_sum`` / ``_count``
  triplet.

The module-level default registry (:func:`get_registry`) is what every
layer publishes into and what the ``metrics`` wire verb renders; tests
that need isolation construct their own :class:`MetricsRegistry`.
:func:`parse_prometheus` is the matching reader, used by the CLI's
``--watch`` table, the bench harness (worker-process phase breakdowns
come back over the wire as exposition text), and the test suite.
"""

from __future__ import annotations

import math
import re
import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "parse_prometheus",
    "phase_totals",
]

# Request latencies on this stack span ~100us (cache-hit count query)
# to tens of seconds (cold boundary join); roughly-log-spaced seconds.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _label_key(label_names: tuple, labels: dict) -> tuple:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Instrument:
    """Shared label-family plumbing for all three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: tuple, lock) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._lock = lock
        self._series: dict = {}

    def _labels_text(self, key: tuple, extra: str = "") -> str:
        parts = [
            f'{name}="{_escape(value)}"'
            for name, value in zip(self.label_names, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""


class Counter(_Instrument):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def render(self) -> list:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} counter",
        ]
        with self._lock:
            series = sorted(self._series.items())
        for key, value in series:
            lines.append(
                f"{self.name}{self._labels_text(key)} {_format_value(value)}"
            )
        return lines


class Gauge(_Instrument):
    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def render(self) -> list:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} gauge",
        ]
        with self._lock:
            series = sorted(self._series.items())
        for key, value in series:
            lines.append(
                f"{self.name}{self._labels_text(key)} {_format_value(value)}"
            )
        return lines


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple,
        lock,
        buckets=DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names, lock)
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.label_names, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
                self._series[key] = series
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series["counts"][index] += 1
            series["sum"] += value
            series["count"] += 1

    def render(self) -> list:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} histogram",
        ]
        with self._lock:
            series = sorted(
                (key, dict(data, counts=list(data["counts"])))
                for key, data in self._series.items()
            )
        for key, data in series:
            for bound, count in zip(self.buckets, data["counts"]):
                le = f'le="{_format_value(bound)}"'
                lines.append(
                    f"{self.name}_bucket{self._labels_text(key, le)} {count}"
                )
            inf_label = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket{self._labels_text(key, inf_label)} "
                f"{data['count']}"
            )
            lines.append(
                f"{self.name}_sum{self._labels_text(key)} {_format_value(data['sum'])}"
            )
            lines.append(
                f"{self.name}_count{self._labels_text(key)} {data['count']}"
            )
        return lines


class MetricsRegistry:
    """Names -> instruments; re-registration with the same shape is a no-op.

    Idempotent registration matters here: several ``SharingScheduler``
    replicas (and, in the test suite, many short-lived servers) live in
    one process and all call ``counter("repro_requests_total", ...)`` --
    they must share one series, not fight over the name.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict = {}

    def _register(self, factory, name, help_text, labels, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, factory) or existing.label_names != tuple(
                    labels
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a different shape"
                    )
                return existing
            instrument = factory(name, help_text, tuple(labels), self._lock, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "", labels=()) -> Counter:
        return self._register(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels=()) -> Gauge:
        return self._register(Gauge, name, help_text, labels)

    def histogram(
        self, name: str, help_text: str = "", labels=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._register(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def render_prometheus(self) -> str:
        with self._lock:
            instruments = [
                self._instruments[name] for name in sorted(self._instruments)
            ]
        lines: list = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """``{metric_name: {label_value_tuple: value}}`` for counters/gauges."""
        with self._lock:
            instruments = list(self._instruments.values())
        out: dict = {}
        for instrument in instruments:
            if isinstance(instrument, Histogram):
                continue
            with self._lock:
                out[instrument.name] = dict(instrument._series)
        return out


_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every layer publishes into."""
    return _DEFAULT_REGISTRY


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text: str) -> dict:
    """Exposition text -> ``{name: {frozenset(label items): float}}``.

    The un-labelled series uses ``frozenset()`` as its key.  Enough of
    the format for our own output and for round-trip tests; not a
    general scraper.
    """
    samples: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            continue
        labels = {}
        if match.group("labels"):
            for label_match in _LABEL_RE.finditer(match.group("labels")):
                raw = label_match.group(2)
                labels[label_match.group(1)] = (
                    raw.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
        raw_value = match.group("value")
        value = math.inf if raw_value == "+Inf" else float(raw_value)
        samples.setdefault(match.group("name"), {})[
            frozenset(labels.items())
        ] = value
    return samples


def phase_totals(registry: MetricsRegistry | None = None) -> dict:
    """``{phase: seconds}`` from ``repro_phase_seconds_total`` -- the
    always-on per-phase wall-time ledger the bench harness diffs
    around each cell to produce its rtc/evaluate/join/wal breakdown."""
    if registry is None:
        registry = get_registry()
    counter = registry.counter(
        "repro_phase_seconds_total",
        "Wall seconds spent per engine/storage phase.",
        labels=("phase",),
    )
    with counter._lock:
        return {key[0]: value for key, value in counter._series.items()}
