"""Distributed tracing: spans, trace trees, and the ambient tracer.

One :class:`Tracer` collects the spans of one request.  A span is cheap
on purpose -- ``__slots__``, a wall-clock start, a duration, a parent
link and a small attribute dict -- because a traced request on a busy
cluster records dozens of them across several processes.

Cross-process shape
-------------------
Span ids are globally unique (``<pid hex>-<counter hex>``), so the
router can absorb a worker's span list verbatim: the worker roots its
spans under the *parent span id* the router sent in the request's
``trace`` field, and the merged flat list still assembles into one tree
(:func:`build_tree`).  The wire form of a whole trace is
``{"id": trace_id, "spans": [{"id", "parent", "name", "start", "dur",
"attrs"?}, ...]}``.

Ambient activation
------------------
Deep layers (the WAL's fsync'd append, the checkpointer) cannot take a
tracer parameter without threading it through every signature between
the socket and the disk.  Instead the instrumented call sites use
:func:`ambient_span`, which consults a thread-local: when a request
handler has :func:`activate`\\ d a tracer on this thread, a span is
recorded under the current parent; otherwise the context manager yields
``None`` without allocating a single object -- the zero-cost-when-off
contract.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "Span",
    "Tracer",
    "new_span_id",
    "new_trace_id",
    "activate",
    "current",
    "ambient_span",
    "build_tree",
    "render_trace",
]

_SPAN_SEQUENCE = itertools.count(1)


def new_span_id() -> str:
    """A span id unique across every process of one cluster.

    The pid prefix separates router and worker processes; the counter
    separates spans within one.  (A recycled pid would need the previous
    process's spans to still be in flight -- not a trace that exists.)
    """
    return f"{os.getpid():x}-{next(_SPAN_SEQUENCE):x}"


def new_trace_id() -> str:
    return os.urandom(8).hex()


class Span:
    """One timed phase of a request; part of exactly one trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "start", "duration", "attrs", "_t0")

    def __init__(
        self,
        name: str,
        parent_id: str | None = None,
        span_id: str | None = None,
        start: float | None = None,
        duration: float | None = None,
        attrs: dict | None = None,
    ) -> None:
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start = start if start is not None else time.time()  # repro: noqa[RPR601] -- span starts are wall-clock epochs so cross-process traces share one axis; durations use the monotonic anchor below
        self.duration = duration
        self.attrs = attrs if attrs is not None else {}
        # Monotonic anchor for finish(); wall clocks can step backwards.
        self._t0 = time.perf_counter()

    def to_wire(self) -> dict:
        span = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "dur": self.duration if self.duration is not None else 0.0,
        }
        if self.attrs:
            span["attrs"] = self.attrs
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"dur={self.duration})"
        )


class Tracer:
    """Collects the (flat) span list of one trace; thread-safe.

    One tracer may be fed from several threads at once -- the router's
    merge callbacks, scheduler workers, and the boundary-join executor
    all record into the same request trace -- so every mutation takes
    the lock.  Spans are appended on *finish*, which keeps the list
    insertion-ordered by completion and never exposes a half-built span.
    """

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id if trace_id else new_trace_id()
        self._lock = threading.Lock()
        self._spans: list[dict] = []

    # -- recording -------------------------------------------------------
    def begin(self, name: str, parent: str | None = None, **attrs) -> Span:
        """Start a live span; pair with :meth:`finish`."""
        return Span(name, parent_id=parent, attrs=dict(attrs) if attrs else None)

    def finish(self, span: Span, **attrs) -> Span:
        """Close a live span (duration from its monotonic anchor) and keep it."""
        if span.duration is None:
            span.duration = time.perf_counter() - span._t0
        if attrs:
            span.attrs.update(attrs)
        with self._lock:
            self._spans.append(span.to_wire())
        return span

    def record(
        self,
        name: str,
        parent: str | None,
        start: float,
        duration: float,
        **attrs,
    ) -> Span:
        """Add an already-measured span (retroactive phases like queue wait)."""
        span = Span(
            name,
            parent_id=parent,
            start=start,
            duration=max(0.0, duration),
            attrs=dict(attrs) if attrs else None,
        )
        with self._lock:
            self._spans.append(span.to_wire())
        return span

    @contextmanager
    def span(self, name: str, parent: str | None = None, **attrs):
        """``with tracer.span("evaluate", parent) as span: ...``"""
        live = self.begin(name, parent=parent, **attrs)
        try:
            yield live
        finally:
            self.finish(live)

    def absorb(self, spans: list | None) -> None:
        """Merge a remote process's wire spans (worker response subtrees)."""
        if not spans:
            return
        cleaned = [span for span in spans if isinstance(span, dict)]
        with self._lock:
            self._spans.extend(cleaned)

    # -- reading ---------------------------------------------------------
    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def to_wire(self) -> dict:
        """The whole trace as one wire/JSON object."""
        return {"id": self.trace_id, "spans": self.spans()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# -- ambient (thread-local) activation ----------------------------------

_AMBIENT = threading.local()


def current() -> tuple[Tracer, str | None] | None:
    """The thread's active ``(tracer, parent_span_id)``, or ``None``."""
    return getattr(_AMBIENT, "context", None)


@contextmanager
def activate(tracer: Tracer, parent: str | None):
    """Make ``tracer`` ambient on this thread for the ``with`` body."""
    previous = getattr(_AMBIENT, "context", None)
    _AMBIENT.context = (tracer, parent)
    try:
        yield
    finally:
        _AMBIENT.context = previous


@contextmanager
def ambient_span(name: str, **attrs):
    """A span under the thread's ambient tracer -- or nothing at all.

    The zero-cost path is the first two lines: no active tracer means no
    allocation, no lock, no timestamps.  With one active, the span nests
    (it becomes the ambient parent for the body, so e.g. ``checkpoint``
    -> ``snapshot`` parent correctly without plumbing).
    """
    context = current()
    if context is None:
        yield None
        return
    tracer, parent = context
    span = tracer.begin(name, parent=parent, **attrs)
    _AMBIENT.context = (tracer, span.span_id)
    try:
        yield span
    finally:
        _AMBIENT.context = context
        tracer.finish(span)


# -- tree assembly and rendering -----------------------------------------


def build_tree(trace: dict) -> list[dict]:
    """Nest a trace's flat span list into root trees by parent links.

    Returns the list of roots (spans whose parent is ``None`` or refers
    outside the trace -- a worker fragment viewed on its own), each with
    a ``children`` list, children ordered by start time.
    """
    spans = [dict(span) for span in trace.get("spans", ())]
    by_id = {span["id"]: span for span in spans}
    for span in spans:
        span["children"] = []
    roots: list[dict] = []
    for span in spans:
        parent = by_id.get(span.get("parent"))
        if parent is None:
            roots.append(span)
        else:
            parent["children"].append(span)
    for span in spans:
        span["children"].sort(key=lambda child: child.get("start", 0.0))
    roots.sort(key=lambda span: span.get("start", 0.0))
    return roots


def _format_duration(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def render_trace(trace: dict) -> str:
    """An indented phase breakdown of one trace (the ``repro trace`` view)."""
    lines = [f"trace {trace.get('id', '?')}"]

    def walk(span: dict, depth: int) -> None:
        attrs = span.get("attrs") or {}
        detail = " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
        lines.append(
            "  " * depth
            + f"- {span['name']}  {_format_duration(span.get('dur', 0.0))}"
            + (f"  [{detail}]" if detail else "")
        )
        for child in span["children"]:
            walk(child, depth + 1)

    for root in build_tree(trace):
        walk(root, 1)
    return "\n".join(lines)
