"""``repro.obs`` -- stdlib-only observability for the serving stack.

Three legs, one package:

* :mod:`repro.obs.trace` -- distributed tracing.  A :class:`Span` tree
  per request, propagated across the router -> backend -> worker process
  boundary through the wire protocol's optional ``trace`` field, with an
  *ambient* (thread-local) activation so deep layers -- the WAL, the
  checkpointer -- can record spans without threading handles through
  every signature.  Zero-cost when off: no active tracer means no span
  objects are allocated anywhere.
* :mod:`repro.obs.metrics` -- a process-local :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket histograms) every layer publishes
  into, rendered in Prometheus text exposition format by the ``metrics``
  wire verb and ``repro stats --connect --prometheus``.
* :mod:`repro.obs.names` -- the declared registry of span, metric, and
  phase names all of the above draw from, enforced statically by
  ``repro lint`` (rule ``RPR501``).
* :mod:`repro.obs.slowlog` -- router-side slow-query forensics: completed
  trace trees (plus the query's ``explain()`` plan, when the serving
  session has one) appended as JSONL whenever a request exceeds a
  configured threshold; rendered by ``repro trace``.
"""

from repro.obs.names import METRIC_NAMES, PHASE_KEYS, SPAN_NAMES
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
    phase_totals,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    Span,
    Tracer,
    activate,
    ambient_span,
    build_tree,
    current,
    render_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "METRIC_NAMES",
    "MetricsRegistry",
    "PHASE_KEYS",
    "SPAN_NAMES",
    "get_registry",
    "parse_prometheus",
    "phase_totals",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "activate",
    "ambient_span",
    "build_tree",
    "current",
    "render_trace",
]
