"""The canonical registry of observability names.

Every span name handed to ``tracer.begin``/``span``/``record`` or
:func:`~repro.obs.trace.ambient_span`, every metric name registered
with :class:`~repro.obs.metrics.MetricsRegistry`, and every ``phase``
label key must appear here.  ``repro lint`` (rule ``RPR501``) enforces
the contract statically: dashboards, ``repro trace``/``repro explain``
forensics, and :func:`~repro.obs.metrics.phase_totals` all key on these
exact strings, so a typo at an instrumentation site silently produces
an empty panel rather than an error.

Adding an instrumentation site means adding its name here first --
which is the point: the registry diff *is* the observability-surface
review.
"""

from __future__ import annotations

__all__ = ["SPAN_NAMES", "METRIC_NAMES", "PHASE_KEYS"]

#: Span names, grouped by the layer that begins them.
SPAN_NAMES = frozenset(
    {
        # server/service.py -- one request, its per-query children.
        "request",
        "query",
        # server/scheduler.py -- queue waits + evaluation.
        "admission_wait",
        "batch_wait",
        "evaluate",
        "update_drain",
        "update_apply",
        # db/session.py -- direct-session evaluation spans.
        "partial",
        # cluster/service.py -- router-side fan-out and joins.
        "shard",
        "shard_update",
        "join_round",
        "join_cache_hit",
        # storage -- durability work.
        "wal_append",
        "checkpoint",
        "snapshot",
        # engine phase children (scheduler._PHASE_NAMES values, recorded
        # as retroactive children of the evaluate span).
        "rtc",
        "pre_join",
        "remainder",
    }
)

#: Metric names (the ``repro_*`` Prometheus-style families).
METRIC_NAMES = frozenset(
    {
        # server/metrics.py
        "repro_requests_total",
        "repro_request_latency_seconds",
        "repro_updates_total",
        "repro_batches_total",
        "repro_batched_queries_total",
        # the cross-layer per-phase wall-time ledger
        "repro_phase_seconds_total",
        # storage/wal.py + storage/recovery.py
        "repro_wal_appends_total",
        "repro_wal_last_lsn",
        "repro_checkpoints_total",
        # cluster/service.py (router-side boundary joins)
        "repro_join_rounds_total",
        "repro_join_cache_hits_total",
    }
)

#: Values of the ``phase`` label on ``repro_phase_seconds_total``.
PHASE_KEYS = frozenset(
    {
        "rtc",
        "pre_join",
        "remainder",
        "evaluate",
        "update_apply",
        "join",
        "wal",
        "checkpoint",
    }
)
