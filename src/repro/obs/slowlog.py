"""Router-side slow-query forensics: a JSONL log of completed traces.

The serving layer calls :meth:`SlowQueryLog.maybe_record` once per
finished request with the request's elapsed wall time, its assembled
trace tree, and (when the serving session can produce one) the
``explain()`` plan for each query text.  Requests under the threshold
cost one float comparison; requests over it append a single JSON line::

    {"ts": ..., "elapsed": ..., "threshold": ..., "queries": [...],
     "trace": {"id": ..., "spans": [...]}, "plans": {...}}

The file is line-buffered append-only JSONL so a crash mid-request
loses at most the last line, and ``repro trace <file>`` renders each
recorded trace as an indented phase breakdown.
"""

from __future__ import annotations

import json
import threading
import time

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Thread-safe JSONL appender for over-threshold request traces."""

    def __init__(self, path: str, threshold: float = 1.0) -> None:
        self.path = str(path)
        self.threshold = float(threshold)
        self._lock = threading.Lock()
        self._recorded = 0

    @property
    def recorded(self) -> int:
        return self._recorded

    def maybe_record(
        self,
        queries,
        elapsed: float,
        trace: dict | None = None,
        plans: dict | None = None,
    ) -> bool:
        """Append one entry when ``elapsed`` meets the threshold.

        Returns whether an entry was written.  IO failures are swallowed
        after the fast-path check -- forensics must never fail a request
        that already succeeded.
        """
        if elapsed < self.threshold:
            return False
        entry = {
            "ts": time.time(),  # repro: noqa[RPR601] -- the log record's wall-clock timestamp; elapsed is measured upstream monotonically
            "elapsed": elapsed,
            "threshold": self.threshold,
            "queries": list(queries),
        }
        if trace is not None:
            entry["trace"] = trace
        if plans:
            entry["plans"] = plans
        line = json.dumps(entry, separators=(",", ":"), default=str)
        try:
            with self._lock:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
                self._recorded += 1
        except OSError:
            return False
        return True

    @staticmethod
    def read(path: str) -> list:
        """All entries of a slow-query log, tolerant of a torn tail."""
        entries: list = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError:
                    break
        return entries
