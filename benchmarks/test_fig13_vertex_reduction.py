"""Fig. 13 -- vertex counts ``|V_R|`` (Full's graph) vs ``|V̄_R|`` (RTC's).

The mechanism behind Figs. 10-12: as the degree grows, more of ``G_R``
collapses into SCCs, so the condensation shrinks while ``G_R`` itself
keeps growing.  Shapes asserted:

* ``|V̄_R| <= |V_R|`` always;
* the reduction factor at the top of the sweep exceeds the bottom's;
* the Yago2s stand-in shows (almost) no reduction (avg SCC size ~1.00).
"""

from bench_common import MAX_N, NUM_SETS, SCALE, SEED, real_fractions, emit, record_rows
from repro.bench.experiments import sharing_statistics
from repro.bench.formatting import format_ratio, format_table
from repro.datasets.rmat import rmat_n
from repro.datasets.standins import load_standin


def _aggregate(rows):
    by_dataset: dict[str, dict] = {}
    for row in rows:
        entry = by_dataset.setdefault(
            row["dataset"],
            {
                "degree": row["degree"],
                "gr": 0,
                "condensed": 0,
                "scc": 0.0,
                "count": 0,
            },
        )
        entry["gr"] += row["gr_vertices"]
        entry["condensed"] += row["condensed_vertices"]
        entry["scc"] += row["avg_scc_size"]
        entry["count"] += 1
    return by_dataset


def _table(by_dataset, title):
    headers = ["dataset", "degree", "|V_R|", "|V̄_R|", "|V_R|/|V̄_R|", "avg SCC"]
    body = []
    for name, entry in by_dataset.items():
        gr = entry["gr"] / entry["count"]
        condensed = entry["condensed"] / entry["count"]
        body.append(
            [
                name,
                f"{entry['degree']:.2f}",
                f"{gr:.1f}",
                f"{condensed:.1f}",
                format_ratio(gr / condensed if condensed else 1.0),
                f"{entry['scc'] / entry['count']:.2f}",
            ]
        )
    return f"{title}\n" + format_table(headers, body)


def test_fig13a_synthetic_vertex_counts(benchmark):
    def collect():
        rows = []
        for n in range(0, MAX_N + 1):
            graph = rmat_n(n, scale=SCALE, seed=SEED + n)
            rows.extend(
                sharing_statistics(
                    graph, f"RMAT_{n}", num_sets=NUM_SETS, seed=SEED + n
                )
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    record_rows("fig13a", rows)
    by_dataset = _aggregate(rows)
    emit("fig13a", _table(by_dataset, "Fig. 13(a): vertex counts (synthetic)"))

    for row in rows:
        assert row["condensed_vertices"] <= row["gr_vertices"]
    first = by_dataset["RMAT_0"]
    last = by_dataset[f"RMAT_{MAX_N}"]
    first_factor = first["gr"] / max(first["condensed"], 1)
    last_factor = last["gr"] / max(last["condensed"], 1)
    assert last_factor > first_factor


def test_fig13b_real_vertex_counts(benchmark):
    def collect():
        rows = []
        for name in ("yago2s", "robots", "advogato", "youtube"):
            fraction = real_fractions().get(name)
            kwargs = {"fraction": fraction} if fraction else {}
            graph = load_standin(name, seed=SEED, **kwargs)
            rows.extend(
                sharing_statistics(graph, name, num_sets=NUM_SETS, seed=SEED)
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    record_rows("fig13b", rows)
    by_dataset = _aggregate(rows)
    emit("fig13b", _table(by_dataset, "Fig. 13(b): vertex counts (real)"))

    yago = by_dataset["yago2s"]
    assert yago["scc"] / yago["count"] < 1.2  # paper: exactly 1.00
    youtube = by_dataset["youtube"]
    assert youtube["gr"] / max(youtube["condensed"], 1) > yago["gr"] / max(
        yago["condensed"], 1
    )
