"""Cluster benchmark: sharded vs single-node QPS under a mixed workload.

Drives the :mod:`repro.cluster` stack (real TCP, real threads) with a
closure-sharing workload over a multi-component R-MAT graph, comparing a
1-shard deployment against an N-shard one at high client concurrency --
once read-only (expected: parity; component-disjoint evaluation is
work-conserving) and once with streaming updates interleaved (expected:
the sharded deployment wins, because an update drains and cache-flushes
only its owning shard instead of the whole service).

Emits ``BENCH_cluster.json`` at the repository root (plus a table under
``benchmarks/results/``).  The headline gate: the sharded rtc
deployment's QPS beats the 1-shard deployment's under the mixed
workload at the full client count.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_cluster.py

Environment overrides: ``REPRO_BENCH_CLUSTER_BLOCKS`` (R-MAT blocks,
default 8), ``REPRO_BENCH_CLUSTER_SCALE`` (log2 vertices per block,
default 6), ``REPRO_BENCH_CLUSTER_SHARDS`` (comma list, default
``1,4``), ``REPRO_BENCH_CLUSTER_REPLICAS`` (default 2),
``REPRO_BENCH_CLUSTER_CLIENTS`` (default 32),
``REPRO_BENCH_CLUSTER_REQUESTS`` (requests per client, default 16),
``REPRO_BENCH_CLUSTER_UPDATE_EVERY`` (default 2).

Not collected by pytest (no ``test_`` prefix); CI runs it as a script.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"
OUTPUT_PATH = REPO_ROOT / "BENCH_cluster.json"

BLOCKS = int(os.environ.get("REPRO_BENCH_CLUSTER_BLOCKS", "8"))
SCALE = int(os.environ.get("REPRO_BENCH_CLUSTER_SCALE", "6"))
SHARD_COUNTS = tuple(
    int(value)
    for value in os.environ.get("REPRO_BENCH_CLUSTER_SHARDS", "1,4").split(",")
)
REPLICAS = int(os.environ.get("REPRO_BENCH_CLUSTER_REPLICAS", "2"))
CLIENTS = int(os.environ.get("REPRO_BENCH_CLUSTER_CLIENTS", "32"))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_CLUSTER_REQUESTS", "16"))
UPDATE_EVERY = int(os.environ.get("REPRO_BENCH_CLUSTER_UPDATE_EVERY", "2"))
WORKERS = int(os.environ.get("REPRO_BENCH_CLUSTER_WORKERS", "2"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


def build_workload():
    """A multi-component R-MAT graph plus closure-sharing queries."""
    from repro.datasets.rmat import rmat_component_graph
    from repro.workloads.generator import generate_workload

    graph = rmat_component_graph(
        components=BLOCKS, scale=SCALE, num_labels=3, seed=SEED
    )
    sets = generate_workload(
        graph,
        num_sets=2,
        lengths=(1, 2),
        max_rpqs=5,
        seed=SEED,
        require_nonempty=True,
    )
    queries = [query for rpq_set in sets for query in rpq_set.queries]
    return graph, queries


def main() -> int:
    from repro.bench.cluster_bench import (
        format_cluster_rows,
        run_cluster_benchmark,
    )

    graph, queries = build_workload()
    print(
        f"cluster benchmark: {BLOCKS} blocks x 2^{SCALE} vertices "
        f"({graph.num_edges} edges), {len(queries)} queries, "
        f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, "
        f"shards {SHARD_COUNTS} x {REPLICAS} replicas, "
        f"1 update per {UPDATE_EVERY} requests in the mixed workload"
    )
    rows = run_cluster_benchmark(
        graph,
        queries,
        shard_counts=SHARD_COUNTS,
        replicas=REPLICAS,
        num_clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        workers=WORKERS,
        update_every=UPDATE_EVERY,
    )
    table = format_cluster_rows(rows)
    print(table)

    def qps(shards: int, update_every: int) -> float:
        for row in rows:
            if row["shards"] == shards and row["update_every"] == update_every:
                return row["qps"]
        raise KeyError((shards, update_every))

    baseline = min(SHARD_COUNTS)
    comparisons = {}
    for shards in SHARD_COUNTS:
        if shards == baseline:
            continue
        comparisons[str(shards)] = {
            "mixed_qps": qps(shards, UPDATE_EVERY),
            "single_shard_mixed_qps": qps(baseline, UPDATE_EVERY),
            "mixed_speedup": qps(shards, UPDATE_EVERY)
            / qps(baseline, UPDATE_EVERY),
            "read_only_qps": qps(shards, 0),
            "single_shard_read_only_qps": qps(baseline, 0),
            "read_only_speedup": qps(shards, 0) / qps(baseline, 0),
        }

    document = {
        "benchmark": (
            "repro.cluster QPS, sharded vs single-shard, "
            "read-only and mixed-update workloads"
        ),
        "config": {
            "blocks": BLOCKS,
            "scale": SCALE,
            "edges": graph.num_edges,
            "labels": graph.num_labels,
            "queries": queries,
            "shard_counts": list(SHARD_COUNTS),
            "replicas": REPLICAS,
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "update_every": UPDATE_EVERY,
            "workers_per_replica": WORKERS,
            "seed": SEED,
        },
        "rows": rows,
        "qps_comparison": comparisons,
    }
    OUTPUT_PATH.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_cluster.txt").write_text(table + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT_PATH}")

    slower = [
        shards
        for shards, entry in comparisons.items()
        if entry["mixed_speedup"] < 1.0
    ]
    if slower:
        print(
            f"WARNING: sharded mixed-workload QPS below the {baseline}-shard "
            f"configuration at {', '.join(slower)} shards",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
