"""Cluster benchmark: sharded vs single-node and thread vs process QPS.

Drives the :mod:`repro.cluster` stack (real TCP, real threads, real
worker processes) with a closure-sharing workload over a multi-component
R-MAT graph, in two sweeps:

1. **Sharding** -- a 1-shard deployment against an N-shard one at high
   client concurrency, once read-only (expected: parity;
   component-disjoint evaluation is work-conserving) and once with
   streaming updates interleaved (expected: the sharded deployment
   wins, because an update drains and cache-flushes only its owning
   shard instead of the whole service).
2. **Shard transport** -- the N-shard topology once with in-process
   (thread) shard backends and once with one worker process per shard
   (``--backend process``), on the CPU-bound read-heavy mix.  On a
   multi-core machine the process backend should clear 1.5x the thread
   backend's QPS at 32 clients (the GIL stops time-slicing the
   evaluation); on a single core the two roughly tie, so the 1.5x gate
   is only *enforced* when more than one CPU is visible (the recorded
   ``cpu_count`` says which regime a given JSON was measured in).

Emits ``BENCH_cluster.json`` at the repository root (plus a table under
``benchmarks/results/``).  The headline gates: the sharded rtc
deployment's QPS beats the 1-shard deployment's under the mixed
workload, and (multi-core only) the process backend beats 1.5x the
thread backend read-only.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_cluster.py

A third sweep covers the **edge-cut** strategy: a single-WCC R-MAT
graph (the shape component partitioning cannot spread) served 1-shard
vs N-shard edge-cut, every sharded answer going through the router's
boundary join, both verified against a single session.

A fourth sweep measures durable **restart**: a ``--data-dir``-backed
cluster is started cold, checkpointed, and restarted warm over the
same directory.  The recorded row compares startup and query times,
but the gate is cache behaviour: the warm replay must serve every
closure from the persisted RTC store (zero RTC constructions).

Every gate decision is recorded explicitly under ``"gates"`` in the
JSON -- in particular the multi-core process-vs-thread gate records
``"skipped (cpu_count=1)"`` on a single-core runner instead of
silently passing.

Environment overrides: ``REPRO_BENCH_CLUSTER_BLOCKS`` (R-MAT blocks,
default 8), ``REPRO_BENCH_CLUSTER_SCALE`` (log2 vertices per block,
default 6), ``REPRO_BENCH_CLUSTER_SHARDS`` (comma list, default
``1,4``), ``REPRO_BENCH_CLUSTER_REPLICAS`` (default 2),
``REPRO_BENCH_CLUSTER_CLIENTS`` (default 32),
``REPRO_BENCH_CLUSTER_REQUESTS`` (requests per client, default 16),
``REPRO_BENCH_CLUSTER_UPDATE_EVERY`` (default 2),
``REPRO_BENCH_CLUSTER_BACKENDS`` (comma list, default
``thread,process``; empty string skips the transport sweep),
``REPRO_BENCH_CLUSTER_EDGECUT_SHARDS`` (default 2; 0 skips the
edge-cut sweep), ``REPRO_BENCH_CLUSTER_EDGECUT_SCALE`` (log2 vertices
of the single-WCC graph, default 6),
``REPRO_BENCH_CLUSTER_RESTART_SHARDS`` (default 2; 0 skips the
cold-vs-warm restart sweep).

Not collected by pytest (no ``test_`` prefix); CI runs it as a script.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"
OUTPUT_PATH = REPO_ROOT / "BENCH_cluster.json"

BLOCKS = int(os.environ.get("REPRO_BENCH_CLUSTER_BLOCKS", "8"))
SCALE = int(os.environ.get("REPRO_BENCH_CLUSTER_SCALE", "6"))
SHARD_COUNTS = tuple(
    int(value)
    for value in os.environ.get("REPRO_BENCH_CLUSTER_SHARDS", "1,4").split(",")
)
REPLICAS = int(os.environ.get("REPRO_BENCH_CLUSTER_REPLICAS", "2"))
CLIENTS = int(os.environ.get("REPRO_BENCH_CLUSTER_CLIENTS", "32"))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_CLUSTER_REQUESTS", "16"))
UPDATE_EVERY = int(os.environ.get("REPRO_BENCH_CLUSTER_UPDATE_EVERY", "2"))
WORKERS = int(os.environ.get("REPRO_BENCH_CLUSTER_WORKERS", "2"))
BACKENDS = tuple(
    value
    for value in os.environ.get(
        "REPRO_BENCH_CLUSTER_BACKENDS", "thread,process"
    ).split(",")
    if value
)
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
EDGECUT_SHARDS = int(os.environ.get("REPRO_BENCH_CLUSTER_EDGECUT_SHARDS", "2"))
EDGECUT_SCALE = int(os.environ.get("REPRO_BENCH_CLUSTER_EDGECUT_SCALE", "6"))
RESTART_SHARDS = int(os.environ.get("REPRO_BENCH_CLUSTER_RESTART_SHARDS", "2"))


def build_workload():
    """A multi-component R-MAT graph plus closure-sharing queries."""
    from repro.datasets.rmat import rmat_component_graph
    from repro.workloads.generator import generate_workload

    graph = rmat_component_graph(
        components=BLOCKS, scale=SCALE, num_labels=3, seed=SEED
    )
    sets = generate_workload(
        graph,
        num_sets=2,
        lengths=(1, 2),
        max_rpqs=5,
        seed=SEED,
        require_nonempty=True,
    )
    queries = [query for rpq_set in sets for query in rpq_set.queries]
    return graph, queries


def build_edgecut_workload():
    """A single-WCC R-MAT graph (the edge-cut scenario) plus queries."""
    from repro.datasets.rmat import rmat_connected_graph
    from repro.workloads.generator import generate_workload

    graph = rmat_connected_graph(
        EDGECUT_SCALE, 6 * (1 << EDGECUT_SCALE), num_labels=3, seed=SEED
    )
    sets = generate_workload(
        graph,
        num_sets=1,
        lengths=(1, 2),
        max_rpqs=5,
        seed=SEED,
        require_nonempty=True,
    )
    queries = [query for rpq_set in sets for query in rpq_set.queries]
    return graph, queries


def wire_comparison_rows(graph, queries):
    """Packed-vs-list wire bytes on this workload's shard payloads.

    Measures the relations the router actually ships: per-query result
    pair sets (the ``query`` verb's payload, which the process backend
    always requests with ``enc: "packed"``).
    """
    from repro.bench.kernel_bench import run_wire_comparison
    from repro.rpq import eval_rpq

    subset = [query for query in queries if "+" in query or "*" in query][:4]
    return run_wire_comparison(
        {query: eval_rpq(graph, query) for query in subset}
    )


def main() -> int:
    from bench_common import environment_metadata
    from repro.bench.cluster_bench import (
        format_cluster_rows,
        format_restart_rows,
        run_backend_comparison,
        run_cluster_benchmark,
        run_edge_cut_benchmark,
        run_restart_benchmark,
    )
    from repro.bench.kernel_bench import format_wire_rows

    environment = environment_metadata()
    cpu_count = environment["cpu_count"]
    graph, queries = build_workload()
    print(
        f"cluster benchmark: {BLOCKS} blocks x 2^{SCALE} vertices "
        f"({graph.num_edges} edges), {len(queries)} queries, "
        f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, "
        f"shards {SHARD_COUNTS} x {REPLICAS} replicas, "
        f"1 update per {UPDATE_EVERY} requests in the mixed workload, "
        f"{cpu_count} CPUs"
    )
    rows = run_cluster_benchmark(
        graph,
        queries,
        shard_counts=SHARD_COUNTS,
        replicas=REPLICAS,
        num_clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        workers=WORKERS,
        update_every=UPDATE_EVERY,
    )

    backend_rows = []
    if BACKENDS:
        backend_rows = run_backend_comparison(
            graph,
            queries,
            shards=max(SHARD_COUNTS),
            replicas=REPLICAS,
            num_clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            workers=WORKERS,
            backends=BACKENDS,
        )
    edgecut_rows = []
    edgecut_queries = []
    if EDGECUT_SHARDS > 1:
        edgecut_graph, edgecut_queries = build_edgecut_workload()
        print(
            f"edge-cut scenario: single-WCC 2^{EDGECUT_SCALE} vertices "
            f"({edgecut_graph.num_edges} edges), "
            f"{len(edgecut_queries)} queries, 1 vs {EDGECUT_SHARDS} shards"
        )
        edgecut_rows = run_edge_cut_benchmark(
            edgecut_graph,
            edgecut_queries,
            shards=EDGECUT_SHARDS,
            workers=WORKERS,
        )

    restart_rows = []
    if RESTART_SHARDS > 1:
        import tempfile

        print(
            f"restart scenario: cold start vs checkpointed warm restart, "
            f"{RESTART_SHARDS} shards over a scratch data directory"
        )
        with tempfile.TemporaryDirectory(prefix="repro-bench-restart-") as scratch:
            restart_rows = run_restart_benchmark(
                graph,
                queries,
                data_dir=scratch,
                shards=RESTART_SHARDS,
                workers=WORKERS,
            )

    table = format_cluster_rows(rows + backend_rows + edgecut_rows)
    print(table)
    if restart_rows:
        table += "\n" + format_restart_rows(restart_rows)
        print(format_restart_rows(restart_rows))

    wire_rows = wire_comparison_rows(graph, queries)
    wire_table = format_wire_rows(wire_rows)
    print(wire_table)
    table += "\n" + wire_table

    def qps(shards: int, update_every: int) -> float:
        for row in rows:
            if row["shards"] == shards and row["update_every"] == update_every:
                return row["qps"]
        raise KeyError((shards, update_every))

    baseline = min(SHARD_COUNTS)
    comparisons = {}
    for shards in SHARD_COUNTS:
        if shards == baseline:
            continue
        comparisons[str(shards)] = {
            "mixed_qps": qps(shards, UPDATE_EVERY),
            "single_shard_mixed_qps": qps(baseline, UPDATE_EVERY),
            "mixed_speedup": qps(shards, UPDATE_EVERY)
            / qps(baseline, UPDATE_EVERY),
            "read_only_qps": qps(shards, 0),
            "single_shard_read_only_qps": qps(baseline, 0),
            "read_only_speedup": qps(shards, 0) / qps(baseline, 0),
        }

    backend_comparison = None
    if backend_rows:
        by_backend = {row["backend"]: row for row in backend_rows}
        thread_qps = by_backend.get("thread", {}).get("qps")
        process_qps = by_backend.get("process", {}).get("qps")
        backend_comparison = {
            "workload": "cpu-bound read-heavy (read-only rtc)",
            "shards": max(SHARD_COUNTS),
            "replicas": REPLICAS,
            "clients": CLIENTS,
            "cpu_count": cpu_count,
            "rows": backend_rows,
        }
        if thread_qps and process_qps:
            backend_comparison["thread_qps"] = thread_qps
            backend_comparison["process_qps"] = process_qps
            backend_comparison["process_speedup"] = process_qps / thread_qps

    edge_cut = None
    if edgecut_rows:
        by_strategy = {row["strategy"]: row for row in edgecut_rows}
        single = by_strategy.get("component", {})
        sharded = by_strategy.get("edge-cut", {})
        edge_cut = {
            "workload": "single-WCC R-MAT, read-only, verified vs session",
            "scale": EDGECUT_SCALE,
            "shards": EDGECUT_SHARDS,
            "queries": edgecut_queries,
            "cut_edges": sharded.get("cut_edges", 0),
            "rows": edgecut_rows,
        }
        if single.get("qps") and sharded.get("qps"):
            edge_cut["single_shard_qps"] = single["qps"]
            edge_cut["edge_cut_qps"] = sharded["qps"]
            edge_cut["edge_cut_speedup"] = sharded["qps"] / single["qps"]

    restart = None
    if restart_rows:
        by_phase = {row["phase"]: row for row in restart_rows}
        restart = {
            "workload": (
                "durable thread cluster: cold start vs checkpointed "
                "warm restart over the same data directory"
            ),
            "shards": RESTART_SHARDS,
            "cold_startup_seconds": by_phase["cold-start"]["startup_seconds"],
            "warm_startup_seconds": by_phase["warm-restart"]["startup_seconds"],
            "warm_entries": by_phase["warm-restart"]["warm_entries"],
            "warm_rtc_constructions": by_phase["warm-restart"]["rtc_constructions"],
            "rows": restart_rows,
        }

    document = {
        "benchmark": (
            "repro.cluster QPS: sharded vs single-shard "
            "(read-only and mixed-update workloads), thread vs process "
            "shard backends (CPU-bound read-heavy workload), and "
            "edge-cut boundary-join serving of a single-WCC graph"
        ),
        "environment": environment,
        "config": {
            "blocks": BLOCKS,
            "scale": SCALE,
            "edges": graph.num_edges,
            "labels": graph.num_labels,
            "queries": queries,
            "shard_counts": list(SHARD_COUNTS),
            "replicas": REPLICAS,
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "update_every": UPDATE_EVERY,
            "workers_per_replica": WORKERS,
            "backends": list(BACKENDS),
            "cpu_count": cpu_count,
            "seed": SEED,
            "edgecut_shards": EDGECUT_SHARDS,
            "edgecut_scale": EDGECUT_SCALE,
        },
        "rows": rows,
        "qps_comparison": comparisons,
        "backend_comparison": backend_comparison,
        "edge_cut": edge_cut,
        "restart": restart,
        "wire_comparison": wire_rows,
    }

    status = 0
    gates = {}
    slower = [
        shards
        for shards, entry in comparisons.items()
        if entry["mixed_speedup"] < 1.0
    ]
    if slower:
        gates["sharded_mixed"] = (
            f"failed: below the {baseline}-shard QPS at "
            f"{', '.join(slower)} shards"
        )
        print(
            f"WARNING: sharded mixed-workload QPS below the {baseline}-shard "
            f"configuration at {', '.join(slower)} shards",
            file=sys.stderr,
        )
        status = 1
    elif comparisons:
        gates["sharded_mixed"] = "passed: sharded mixed QPS beats 1 shard"
    if backend_comparison and "process_speedup" in backend_comparison:
        speedup = backend_comparison["process_speedup"]
        print(
            f"process-backend speedup over thread (read-heavy, "
            f"{CLIENTS} clients): {speedup:.2f}x on {cpu_count} CPUs"
        )
        if cpu_count == 1:
            # One visible CPU cannot show a GIL win; record the skip
            # explicitly so the JSON says which regime produced it.
            gates["process_backend"] = "skipped (cpu_count=1)"
        elif speedup < 1.5:
            gates["process_backend"] = (
                f"failed: {speedup:.2f}x < 1.5x on {cpu_count} CPUs"
            )
            print(
                "WARNING: process-backend QPS below 1.5x the thread "
                f"backend on a {cpu_count}-core machine",
                file=sys.stderr,
            )
            status = 1
        else:
            gates["process_backend"] = (
                f"passed: {speedup:.2f}x >= 1.5x on {cpu_count} CPUs"
            )
        backend_comparison["gate"] = gates["process_backend"]
    if edge_cut is not None:
        # measure_cluster_configuration verifies every cell against a
        # single session; reaching this line means identity held.
        gates["edge_cut_identity"] = (
            f"passed: 1 and {EDGECUT_SHARDS} shard answers match one "
            f"session over {edge_cut['cut_edges']} cut edges"
        )
    if restart is not None:
        # Gate on cache behaviour, not wall-clock: the warm replay must
        # construct nothing (timings are recorded as context only).
        entries = restart["warm_entries"]
        constructions = restart["warm_rtc_constructions"]
        if entries >= 1 and constructions == 0:
            gates["warm_restart"] = (
                f"passed: {entries} warm closures installed, "
                "0 RTC constructions on replay"
            )
        else:
            gates["warm_restart"] = (
                f"failed: {entries} warm closures, "
                f"{constructions} RTC constructions on replay"
            )
            print(
                "WARNING: warm restart recomputed closures "
                f"({entries} entries installed, {constructions} constructions)",
                file=sys.stderr,
            )
            status = 1
    document["gates"] = gates
    OUTPUT_PATH.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_cluster.txt").write_text(table + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT_PATH}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
