"""Ablation -- closure-free clause evaluation: automaton vs label join.

``EvalRPQwithoutKC`` can run either the product-BFS automaton or the
rare-label-anchored join (Koschmieder-style [10]).  Both are timed on the
same closure-free label-sequence workload; results are asserted equal.
"""

import pytest

from bench_common import SCALE, SEED, emit
from repro.bench.formatting import format_table
from repro.datasets.rmat import rmat_n
from repro.rpq.evaluate import eval_rpq
from repro.rpq.label_join import eval_label_sequence

SEQUENCES = [
    ["l0", "l1"],
    ["l1", "l2", "l3"],
    ["l0", "l0", "l1"],
]


@pytest.fixture(scope="module")
def graph():
    return rmat_n(3, scale=SCALE, seed=SEED + 3)


def _automaton(graph):
    return [eval_rpq(graph, ".".join(seq)) for seq in SEQUENCES]


def _label_join(graph, order):
    return [eval_label_sequence(graph, seq, order=order) for seq in SEQUENCES]


def test_automaton_evaluator(benchmark, graph):
    results = benchmark.pedantic(lambda: _automaton(graph), rounds=3, iterations=1)
    assert results == _label_join(graph, "rare-first")


@pytest.mark.parametrize("order", ["left-right", "rare-first"])
def test_label_join_evaluator(benchmark, graph, order):
    results = benchmark.pedantic(
        lambda: _label_join(graph, order), rounds=3, iterations=1
    )
    assert results == _automaton(graph)
    emit(
        f"ablation_clause_{order}",
        format_table(
            ["order", "sequences", "total pairs"],
            [[order, len(SEQUENCES), sum(len(r) for r in results)]],
        ),
    )
