"""Table III -- complexity of computing/storing ``R+_G`` vs the RTC.

Table III is analytic (O(|V_R| x |E_R|) vs O(|V̄_R| x |Ē_R|), space
O(|V_R|^2) vs O(|V̄_R|^2)); this benchmark measures the quantities the
bounds are built from along the degree sweep plus the *actual* wall-clock
of both closure computations on the same ``G_R``.

Shapes asserted: the work product |V̄_R| x |Ē_R| never exceeds
|V_R| x |E_R|, and the measured RTC computation is faster wherever the
degree is high.
"""

import time

from bench_common import MAX_N, SCALE, SEED, emit, record_rows
from repro.bench.formatting import format_seconds, format_table
from repro.core.reduction import edge_level_reduce
from repro.core.rtc import compute_rtc
from repro.datasets.rmat import rmat_n
from repro.graph.transitive_closure import tc_bfs


def _collect():
    rows = []
    for n in range(0, MAX_N + 1):
        graph = rmat_n(n, scale=SCALE, seed=SEED + n)
        gr = edge_level_reduce(graph, "l0")
        started = time.perf_counter()
        full = tc_bfs(gr)
        full_time = time.perf_counter() - started
        started = time.perf_counter()
        rtc = compute_rtc(gr)
        rtc_time = time.perf_counter() - started
        rows.append(
            {
                "dataset": f"RMAT_{n}",
                "degree": graph.average_degree_per_label(),
                "vr": gr.num_vertices,
                "er": gr.num_edges,
                "vbar": rtc.num_sccs,
                "ebar": rtc.condensation.dag.num_edges,
                "full_pairs": len(full),
                "rtc_pairs": rtc.num_pairs,
                "full_time": full_time,
                "rtc_time": rtc_time,
            }
        )
    return rows


def test_table3_complexity_terms(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    record_rows("table3", rows)
    headers = [
        "dataset",
        "|V_R|x|E_R|",
        "|V̄_R|x|Ē_R|",
        "R+_G pairs",
        "RTC pairs",
        "t(R+_G)",
        "t(RTC)",
    ]
    body = [
        [
            row["dataset"],
            row["vr"] * row["er"],
            row["vbar"] * row["ebar"],
            row["full_pairs"],
            row["rtc_pairs"],
            format_seconds(row["full_time"]),
            format_seconds(row["rtc_time"]),
        ]
        for row in rows
    ]
    emit(
        "table3",
        "Table III (measured): closure complexity terms along the sweep\n"
        + format_table(headers, body),
    )

    for row in rows:
        assert row["vbar"] * row["ebar"] <= max(row["vr"] * row["er"], 1)
        assert row["rtc_pairs"] <= max(row["full_pairs"], 1)
    top = rows[-1]
    assert top["rtc_time"] < top["full_time"]
