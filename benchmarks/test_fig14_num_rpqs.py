"""Fig. 14 -- response time as the number of RPQs per set varies.

Experiment 2 (paper): RMAT_3 and Advogato, set sizes {1,2,4,6,8,10}.
The amortisation story asserted:

* the No/RTC ratio does not shrink as sets grow (paper: 23.1x -> 25.4x
  synthetic, 6.76x -> 7.17x real): NoSharing re-pays the closure per RPQ;
* the Full/RTC ratio shrinks (paper: 24.4x -> 4.25x synthetic): Full's
  one-time closure cost amortises across more RPQs.
"""

from bench_common import emit, record_rows
from repro.bench.formatting import format_ratio, format_seconds, format_table


def _table(rows, title):
    headers = ["#RPQs", "No", "Full", "RTC", "No/RTC", "Full/RTC"]
    body = []
    for row in rows:
        rtc = row["total_RTC"] or 1e-12
        body.append(
            [
                row["num_rpqs"],
                format_seconds(row["total_No"]),
                format_seconds(row["total_Full"]),
                format_seconds(row["total_RTC"]),
                format_ratio(row["total_No"] / rtc),
                format_ratio(row["total_Full"] / rtc),
            ]
        )
    return f"{title}\n" + format_table(headers, body)


def _assert_amortisation(rows):
    first, last = rows[0], rows[-1]
    first_full = first["total_Full"] / max(first["total_RTC"], 1e-12)
    last_full = last["total_Full"] / max(last["total_RTC"], 1e-12)
    # Full's advantage over RTC amortises away as sets grow.
    assert last_full < first_full
    # RTC keeps beating NoSharing across the sweep.
    assert last["total_No"] > last["total_RTC"]


def test_fig14a_synthetic(benchmark, exp2_synthetic_rows):
    rows = benchmark.pedantic(
        lambda: exp2_synthetic_rows, rounds=1, iterations=1
    )
    record_rows("fig14a", rows)
    emit("fig14a", _table(rows, "Fig. 14(a): #RPQs sweep on RMAT_3"))
    _assert_amortisation(rows)


def test_fig14b_real(benchmark, exp2_real_rows):
    rows = benchmark.pedantic(lambda: exp2_real_rows, rounds=1, iterations=1)
    record_rows("fig14b", rows)
    emit("fig14b", _table(rows, "Fig. 14(b): #RPQs sweep on Advogato"))
    _assert_amortisation(rows)
