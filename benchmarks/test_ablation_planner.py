"""Ablation -- batch-unit ordering (the paper's "future work").

Measures mean time-to-completion per query when a multiple-RPQ set is
evaluated in workload order vs in the planner's cheap-first order.  Total
work is identical (the RTC cache guarantees it); the scheduling win is in
*average latency*: cheap queries stop waiting behind expensive ones.
"""

import time

from bench_common import SEED, emit, record_rows
from repro.bench.formatting import format_seconds, format_table
from repro.core.engines import RTCSharingEngine
from repro.core.planner import estimate_cost
from repro.regex.parser import parse
from repro.workloads.generator import generate_workload


def _mean_completion(graph, queries) -> float:
    engine = RTCSharingEngine(graph)
    started = time.perf_counter()
    completions = []
    for query in queries:
        engine.evaluate(query)
        completions.append(time.perf_counter() - started)
    return sum(completions) / len(completions)


def _workload(graph):
    sets = generate_workload(graph, num_sets=2, max_rpqs=5, seed=SEED)
    queries = [query for rpq_set in sets for query in rpq_set.subset(5)]
    # Adversarial order: most expensive first (worst case for latency).
    queries.sort(key=lambda q: -estimate_cost(graph, parse(q)))
    return queries


def test_planner_cheap_first_latency(benchmark, rmat3_graph):
    queries = _workload(rmat3_graph)
    planned = sorted(
        queries, key=lambda q: estimate_cost(rmat3_graph, parse(q))
    )

    def run_both():
        return {
            "workload order": _mean_completion(rmat3_graph, queries),
            "planned (cheap first)": _mean_completion(rmat3_graph, planned),
        }

    latencies = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_rows("ablation_planner", [latencies])
    emit(
        "ablation_planner",
        "Ablation: planner ordering (mean per-query completion latency)\n"
        + format_table(
            ["schedule", "mean completion"],
            [[name, format_seconds(value)] for name, value in latencies.items()],
        ),
    )
    # Cheap-first must not be worse; usually strictly better.
    assert latencies["planned (cheap first)"] <= latencies["workload order"] * 1.1
