"""Shared configuration and result recording for the benchmark suite.

Scales default to Python-feasible sizes that preserve the paper's degree
sweep (see DESIGN.md).  Environment variables override them for larger
runs::

    REPRO_BENCH_SCALE=13 REPRO_BENCH_SETS=3 pytest benchmarks/ --benchmark-only

Every benchmark writes its printed table (and raw rows) under
``benchmarks/results/`` so EXPERIMENTS.md can quote the exact output of
the last run even when pytest captures stdout.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def environment_metadata() -> dict:
    """Host facts every ``BENCH_*.json`` records beside its measurements.

    ``cpu_count`` decides which gates are even meaningful (the process
    backend's GIL win needs more than one core); the rest says which
    interpreter and machine produced a given number.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "python_implementation": platform.python_implementation(),
    }

#: log2 of the RMAT vertex count (the paper uses 13; default 9 for Python).
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "9"))
#: multiple-RPQ sets averaged per configuration (the paper uses 90 R draws).
NUM_SETS = int(os.environ.get("REPRO_BENCH_SETS", "2"))
#: highest RMAT_N exponent (paper: 6, i.e. degree 2^4).
MAX_N = int(os.environ.get("REPRO_BENCH_MAX_N", "6"))
#: RPQs per set in Experiment 1 (paper: 4, the median set size).
NUM_RPQS = int(os.environ.get("REPRO_BENCH_RPQS", "4"))
#: scale-down fraction for the Yago2s stand-in (paper size / this).
YAGO_FRACTION = float(os.environ.get("REPRO_BENCH_YAGO_FRACTION", str(1 / 2000)))
#: scale-down fractions for the other real stand-ins (1.0 = published
#: size; a full-size Advogato set takes ~12 min/method in pure Python).
ADVOGATO_FRACTION = float(os.environ.get("REPRO_BENCH_ADVOGATO_FRACTION", str(1 / 8)))
YOUTUBE_FRACTION = float(os.environ.get("REPRO_BENCH_YOUTUBE_FRACTION", str(1 / 4)))
ROBOTS_FRACTION = float(os.environ.get("REPRO_BENCH_ROBOTS_FRACTION", "1.0"))


def real_fractions() -> dict:
    """The per-dataset scale-down mapping the benchmark suite uses."""
    return {
        "yago2s": YAGO_FRACTION,
        "advogato": ADVOGATO_FRACTION,
        "youtube": YOUTUBE_FRACTION,
        "robots": ROBOTS_FRACTION if ROBOTS_FRACTION != 1.0 else None,
    }
#: Experiment-2 set sizes (paper: 1,2,4,6,8,10).
SET_SIZES = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_SET_SIZES", "1,2,4,6,8,10").split(",")
)
#: base RNG seed for workloads and datasets.
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def record_rows(name: str, rows) -> None:
    """Persist raw row dictionaries as JSON for post-processing."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(rows, indent=2, default=str), encoding="utf-8"
    )
