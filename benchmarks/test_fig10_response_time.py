"""Fig. 10 -- query response time of No / Full / RTC as degree varies.

Regenerates both panels:

* (a) synthetic RMAT_N sweep (degree 2^-2 .. 2^4 with 4 labels);
* (b) the four real-dataset stand-ins, normalised by RTCSharing like the
  paper's presentation.

Paper shapes asserted (loosely -- wall-clock, not exact ratios):

* at the highest synthetic degree, RTC beats Full and No outright;
* the Full/RTC ratio grows from the lowest to the highest degree;
* on the degree-0.02 Yago2s stand-in RTC has *no* advantage (ratio near
  or below 1) -- the paper's adversarial case.

The ``benchmark`` fixture times one representative multiple-RPQ set on
the median-degree graph (RMAT_3), giving pytest-benchmark a stable,
repeatable unit while the full sweep lives in session fixtures.
"""

import statistics

from bench_common import NUM_RPQS, NUM_SETS, SCALE, SEED, emit, record_rows
from repro.bench.experiments import experiment1_synthetic
from repro.bench.formatting import format_ratio, format_seconds, format_table
from repro.bench.harness import run_rpq_set
from repro.bench.kernel_bench import format_kernel_rows, run_kernel_comparison
from repro.datasets.rmat import rmat_n
from repro.workloads.generator import generate_workload

METHODS = ("No", "Full", "RTC")


def _table(rows, title):
    headers = ["dataset", "degree", "No", "Full", "RTC", "Full/RTC", "No/RTC"]
    body = []
    for row in rows:
        rtc = row["total_RTC"] or 1e-12
        body.append(
            [
                row["dataset"],
                f"{row['degree']:.2f}",
                format_seconds(row["total_No"]),
                format_seconds(row["total_Full"]),
                format_seconds(row["total_RTC"]),
                format_ratio(row["total_Full"] / rtc),
                format_ratio(row["total_No"] / rtc),
            ]
        )
    return f"{title}\n" + format_table(headers, body)


def test_fig10a_synthetic_sweep(benchmark, exp1_synthetic_rows, rmat3_graph):
    rows = exp1_synthetic_rows
    record_rows("fig10a", rows)
    emit(
        "fig10a",
        _table(rows, "Fig. 10(a): response time vs vertex degree (synthetic)"),
    )

    workload = generate_workload(
        rmat3_graph, num_sets=1, max_rpqs=NUM_RPQS, seed=SEED
    )
    queries = workload[0].subset(NUM_RPQS)
    benchmark.pedantic(
        lambda: run_rpq_set(rmat3_graph, queries), rounds=1, iterations=1
    )

    # Paper shape: RTC wins at the top of the degree sweep...
    top = rows[-1]
    assert top["total_RTC"] < top["total_Full"]
    assert top["total_RTC"] < top["total_No"]
    # ...and the Full/RTC advantage grows with degree (1.88x -> 20.2x in
    # the paper; we only require growth).  The RMAT_0 row is the suite's
    # smallest measurement (single-digit milliseconds of RTC time), so
    # interpreter warm-up or one scheduler hiccup can inflate its ratio
    # past the top row's.  Only when the first sample violates growth,
    # re-measure the low row and assert on the median of three samples --
    # deterministic for real regressions, robust to one noisy run (same
    # treatment as test_ablation_scaling).
    top_ratio = top["total_Full"] / max(top["total_RTC"], 1e-12)

    def _full_rtc_ratio(row):
        return row["total_Full"] / max(row["total_RTC"], 1e-12)

    low_samples = [rows[0]]
    while (
        top_ratio <= statistics.median(map(_full_rtc_ratio, low_samples))
        and len(low_samples) < 3
    ):
        low_samples.append(
            experiment1_synthetic(
                degree_exponents=range(0, 1),
                scale=SCALE,
                num_rpqs=NUM_RPQS,
                num_sets=NUM_SETS,
                seed=SEED,
            )[0]
        )
    assert top_ratio > statistics.median(map(_full_rtc_ratio, low_samples))


def test_fig10b_real_datasets(benchmark, exp1_real_rows, advogato_graph):
    rows = exp1_real_rows
    record_rows("fig10b", rows)
    normalised = []
    for row in rows:
        rtc = row["total_RTC"] or 1e-12
        normalised.append(
            {
                **row,
                "norm_No": row["total_No"] / rtc,
                "norm_Full": row["total_Full"] / rtc,
            }
        )
    headers = ["dataset", "degree", "No/RTC", "Full/RTC"]
    body = [
        [
            row["dataset"],
            f"{row['degree']:.2f}",
            format_ratio(row["norm_No"]),
            format_ratio(row["norm_Full"]),
        ]
        for row in normalised
    ]
    emit(
        "fig10b",
        "Fig. 10(b): normalised response time (real stand-ins)\n"
        + format_table(headers, body),
    )

    workload = generate_workload(
        advogato_graph, num_sets=1, max_rpqs=NUM_RPQS, seed=SEED
    )
    benchmark.pedantic(
        lambda: run_rpq_set(advogato_graph, workload[0].subset(NUM_RPQS)),
        rounds=1,
        iterations=1,
    )

    by_name = {row["dataset"]: row for row in normalised}
    # Yago2s regime: RTC buys (almost) nothing; allow up to a 1.6x loss
    # like the paper's observed 0.74x-advantage inversion.
    assert by_name["yago2s"]["norm_Full"] < 1.6
    # The dense datasets must show a sharing win over NoSharing.
    assert by_name["youtube"]["norm_No"] > 1.0
    assert by_name["advogato"]["norm_No"] > 1.0


#: Minimum set-kernel time for a closure-heavy cell to carry the 2x
#: gate: below this, the measurement is interpreter noise (one dict
#: resize flips the ratio) and the gate decision is recorded as skipped
#: instead of asserted.
GATE_FLOOR_SECONDS = 0.005


def test_fig10c_kernel_before_after(benchmark):
    """PR-10 before/after: set kernel vs bitmap kernel, per query.

    The bitmap kernel must clear 2x on closure-heavy cells of the
    top-degree synthetic graph (where frontier OR-sweeps amortise the
    closure walk).  Cells too fast to measure honestly are excluded
    from the gate and the decision is recorded in the rows artifact.
    """
    graph = rmat_n(6, scale=SCALE, seed=SEED + 6)
    workload = generate_workload(
        graph, num_sets=1, max_rpqs=NUM_RPQS, seed=SEED
    )
    queries = list(workload[0].queries) + ["(l0|l1)+", "(l0.l1)+"]
    rows = run_kernel_comparison(graph, queries)

    gated = [
        row
        for row in rows
        if row["closure_heavy"] and row["sets_seconds"] >= GATE_FLOOR_SECONDS
    ]
    if gated:
        best = max(row["speedup"] for row in gated)
        decision = (
            f"passed: best closure-heavy speedup {best:.2f}x >= 2x "
            f"over {len(gated)} gated cells"
            if best >= 2.0
            else f"failed: best closure-heavy speedup {best:.2f}x < 2x"
        )
    else:
        decision = (
            f"skipped: no closure-heavy cell reached "
            f"{GATE_FLOOR_SECONDS * 1000:.0f}ms of set-kernel time at "
            f"scale {SCALE}; environment too small to measure the gate"
        )
    record_rows("fig10c_kernel", {"gate": decision, "rows": rows})
    emit(
        "fig10c_kernel",
        "Fig. 10(c): kernel before/after (RMAT_6, top degree)\n"
        + format_kernel_rows(rows)
        + f"\ngate: {decision}",
    )

    benchmark.pedantic(
        lambda: run_kernel_comparison(graph, queries[:1], repeats=1),
        rounds=1,
        iterations=1,
    )
    assert not decision.startswith("failed"), decision
