"""Session-scoped fixtures shared by the benchmark modules.

The paper's figures reuse one expensive sweep (Experiment 1 feeds Figs.
10, 11, 12, 13); computing it once per pytest session keeps the benchmark
suite honest *and* fast.  Each figure's ``benchmark`` fixture then times a
representative unit of its own work, while the printed tables come from
the shared sweep.
"""

from __future__ import annotations

import pytest

from bench_common import (
    ADVOGATO_FRACTION,
    MAX_N,
    NUM_RPQS,
    NUM_SETS,
    SCALE,
    SEED,
    SET_SIZES,
    real_fractions,
)
from repro.bench.experiments import (
    experiment1_real,
    experiment1_synthetic,
    experiment2,
)
from repro.datasets.rmat import rmat_n
from repro.datasets.standins import load_standin


@pytest.fixture(scope="session")
def exp1_synthetic_rows():
    """Experiment 1 on the RMAT_N degree sweep (Figs. 10a/11a)."""
    return experiment1_synthetic(
        degree_exponents=range(0, MAX_N + 1),
        scale=SCALE,
        num_rpqs=NUM_RPQS,
        num_sets=NUM_SETS,
        seed=SEED,
    )


@pytest.fixture(scope="session")
def exp1_real_rows():
    """Experiment 1 on the Table-IV stand-ins (Figs. 10b/11b)."""
    return experiment1_real(
        num_rpqs=NUM_RPQS,
        num_sets=NUM_SETS,
        seed=SEED,
        fractions=real_fractions(),
    )


@pytest.fixture(scope="session")
def rmat3_graph():
    """RMAT_3 (degree 2) -- the paper's Experiment-2 synthetic dataset."""
    return rmat_n(3, scale=SCALE, seed=SEED + 3)


@pytest.fixture(scope="session")
def advogato_graph():
    """Advogato stand-in -- the paper's Experiment-2 real dataset."""
    return load_standin("advogato", seed=SEED, fraction=ADVOGATO_FRACTION)


@pytest.fixture(scope="session")
def exp2_synthetic_rows(rmat3_graph):
    """Experiment 2 sweep over #RPQs on RMAT_3 (Figs. 14a/15a)."""
    return experiment2(
        rmat3_graph,
        "RMAT_3",
        set_sizes=SET_SIZES,
        num_sets=NUM_SETS,
        seed=SEED,
    )


@pytest.fixture(scope="session")
def exp2_real_rows(advogato_graph):
    """Experiment 2 sweep over #RPQs on Advogato (Figs. 14b/15b)."""
    return experiment2(
        advogato_graph,
        "advogato",
        set_sizes=SET_SIZES,
        num_sets=NUM_SETS,
        seed=SEED,
    )
