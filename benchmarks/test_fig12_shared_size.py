"""Fig. 12 -- size of the shared data: ``|R+_G|`` vs ``|TC(Ḡ_R)|``.

The paper's space argument: as the degree grows, FullSharing's
materialised closure explodes (toward |V_R|^2) while the RTC stays small
because SCCs swallow the growth.  Shapes asserted:

* RTC pairs <= Full pairs everywhere;
* the Full/RTC size ratio at the top of the synthetic sweep exceeds the
  ratio at the bottom (paper: 2.61x -> 54.94x).
"""

from bench_common import NUM_SETS, SEED, real_fractions, emit, record_rows
from repro.bench.experiments import sharing_statistics
from repro.bench.formatting import format_ratio, format_table
from repro.datasets.rmat import rmat_n
from repro.datasets.standins import load_standin
from bench_common import MAX_N, SCALE


def _collect_synthetic():
    rows = []
    for n in range(0, MAX_N + 1):
        graph = rmat_n(n, scale=SCALE, seed=SEED + n)
        rows.extend(
            sharing_statistics(graph, f"RMAT_{n}", num_sets=NUM_SETS, seed=SEED + n)
        )
    return rows


def _collect_real():
    rows = []
    for name in ("yago2s", "robots", "advogato", "youtube"):
        fraction = real_fractions().get(name)
        kwargs = {"fraction": fraction} if fraction else {}
        graph = load_standin(name, seed=SEED, **kwargs)
        rows.extend(sharing_statistics(graph, name, num_sets=NUM_SETS, seed=SEED))
    return rows


def _aggregate(rows):
    by_dataset: dict[str, dict] = {}
    for row in rows:
        entry = by_dataset.setdefault(
            row["dataset"],
            {"degree": row["degree"], "full": 0, "rtc": 0, "count": 0},
        )
        entry["full"] += row["full_pairs"]
        entry["rtc"] += row["rtc_pairs"]
        entry["count"] += 1
    return by_dataset


def _table(by_dataset, title):
    headers = ["dataset", "degree", "Full pairs", "RTC pairs", "Full/RTC"]
    body = []
    for name, entry in by_dataset.items():
        mean_full = entry["full"] / entry["count"]
        mean_rtc = entry["rtc"] / entry["count"]
        body.append(
            [
                name,
                f"{entry['degree']:.2f}",
                f"{mean_full:.1f}",
                f"{mean_rtc:.1f}",
                format_ratio(mean_full / mean_rtc if mean_rtc else 1.0),
            ]
        )
    return f"{title}\n" + format_table(headers, body)


def test_fig12a_synthetic_shared_size(benchmark):
    rows = benchmark.pedantic(_collect_synthetic, rounds=1, iterations=1)
    record_rows("fig12a", rows)
    by_dataset = _aggregate(rows)
    emit("fig12a", _table(by_dataset, "Fig. 12(a): shared data size (synthetic)"))

    for row in rows:
        assert row["rtc_pairs"] <= max(row["full_pairs"], 1)
    first = by_dataset[f"RMAT_0"]
    last = by_dataset[f"RMAT_{MAX_N}"]
    first_ratio = first["full"] / max(first["rtc"], 1)
    last_ratio = last["full"] / max(last["rtc"], 1)
    assert last_ratio > first_ratio


def test_fig12b_real_shared_size(benchmark):
    rows = benchmark.pedantic(_collect_real, rounds=1, iterations=1)
    record_rows("fig12b", rows)
    by_dataset = _aggregate(rows)
    emit("fig12b", _table(by_dataset, "Fig. 12(b): shared data size (real)"))

    # Paper: ratio ~1 on Yago2s, growing with degree on the others.
    yago = by_dataset["yago2s"]
    youtube = by_dataset["youtube"]
    yago_ratio = yago["full"] / max(yago["rtc"], 1)
    youtube_ratio = youtube["full"] / max(youtube["rtc"], 1)
    assert yago_ratio < 2.0
    assert youtube_ratio > yago_ratio
