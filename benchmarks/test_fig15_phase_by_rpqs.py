"""Fig. 15 -- the three-part split of Full vs RTC as #RPQs varies.

The paper's observation: Shared_Data is paid once per set, so its share
of the response time falls as the set grows -- strongly for FullSharing
(whose Shared_Data dominates), barely for RTCSharing (whose Shared_Data
is already tiny).  Shapes asserted:

* Shared_Data stays (nearly) flat in absolute terms as #RPQs grows for
  both sharing methods (it is computed once);
* RTC's Shared_Data stays below Full's at every set size.
"""

from bench_common import emit, record_rows
from repro.bench.formatting import format_seconds, format_table


def _table(rows, title):
    headers = [
        "#RPQs",
        "Shared Full",
        "Shared RTC",
        "PreG⋈R+G Full",
        "PreG⋈R+G RTC",
        "Remainder Full",
        "Remainder RTC",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row["num_rpqs"],
                format_seconds(row["shared_data_Full"]),
                format_seconds(row["shared_data_RTC"]),
                format_seconds(row["pre_join_Full"]),
                format_seconds(row["pre_join_RTC"]),
                format_seconds(row["remainder_Full"]),
                format_seconds(row["remainder_RTC"]),
            ]
        )
    return f"{title}\n" + format_table(headers, body)


def _assert_shapes(rows):
    for row in rows:
        assert row["shared_data_RTC"] < row["shared_data_Full"]
    # One-time cost: Shared_Data at 10 RPQs is far less than 10x the
    # 1-RPQ cost (allow 3x headroom for noise).
    first, last = rows[0], rows[-1]
    scale = last["num_rpqs"] / first["num_rpqs"]
    assert last["shared_data_Full"] < first["shared_data_Full"] * scale
    assert last["shared_data_RTC"] < max(first["shared_data_RTC"] * scale, 1e-3)


def test_fig15a_synthetic(benchmark, exp2_synthetic_rows):
    rows = benchmark.pedantic(
        lambda: exp2_synthetic_rows, rounds=1, iterations=1
    )
    record_rows("fig15a", rows)
    emit("fig15a", _table(rows, "Fig. 15(a): phase split vs #RPQs (RMAT_3)"))
    _assert_shapes(rows)


def test_fig15b_real(benchmark, exp2_real_rows):
    rows = benchmark.pedantic(lambda: exp2_real_rows, rounds=1, iterations=1)
    record_rows("fig15b", rows)
    emit("fig15b", _table(rows, "Fig. 15(b): phase split vs #RPQs (Advogato)"))
    _assert_shapes(rows)
