"""Ablation -- the four operation eliminations of Algorithm 2.

Runs the Experiment-1 workload on the median synthetic graph with each
optimisation of ``EvalBatchUnit`` disabled in turn, comparing operation
counts (deterministic, unlike wall-clock at this scale):

* redundant-1 off -> more closure-walk starts;
* redundant-2 off -> more Cartesian expansion work;
* useless-2 off   -> duplicate checks re-appear at Eq. (9).

Also verifies the result sets never change (the gate the paper's
correctness rests on), and reports FullSharing's counter profile for
contrast (it performs the useless-1 walks the RTC join never starts).
"""

from bench_common import NUM_RPQS, SEED, emit, record_rows
from repro.bench.formatting import format_table
from repro.core.batch_unit import BatchUnitOptions
from repro.core.engines import FullSharingEngine, RTCSharingEngine
from repro.workloads.generator import generate_workload

VARIANTS = {
    "all-on (paper)": BatchUnitOptions(),
    "redundant1 off": BatchUnitOptions(eliminate_redundant1=False),
    "redundant2 off": BatchUnitOptions(eliminate_redundant2=False),
    "useless2 off": BatchUnitOptions(eliminate_useless2=False),
    "all off": BatchUnitOptions(
        eliminate_redundant1=False,
        eliminate_redundant2=False,
        eliminate_useless2=False,
    ),
}


def _run(graph, queries):
    rows = []
    reference = None
    for name, options in VARIANTS.items():
        engine = RTCSharingEngine(graph, options=options, collect_counters=True)
        results = engine.evaluate_many(queries)
        if reference is None:
            reference = results
        assert results == reference, name
        counters = engine.counters
        rows.append(
            {
                "variant": name,
                "closure_walks": counters.closure_walk_starts,
                "dup_checks": counters.dup_checks,
                "dup_hits": counters.dup_hits,
                "cartesian": counters.cartesian_outputs,
            }
        )
    full = FullSharingEngine(graph, collect_counters=True)
    assert full.evaluate_many(queries) == reference
    rows.append(
        {
            "variant": "FullSharing (contrast)",
            "closure_walks": full.counters.closure_walk_starts,
            "dup_checks": full.counters.dup_checks,
            "dup_hits": full.counters.dup_hits,
            "cartesian": full.counters.cartesian_outputs,
        }
    )
    return rows


def test_ablation_algorithm2_optimisations(benchmark, rmat3_graph):
    workload = generate_workload(
        rmat3_graph, num_sets=1, max_rpqs=NUM_RPQS, seed=SEED
    )
    queries = workload[0].subset(NUM_RPQS)
    rows = benchmark.pedantic(
        lambda: _run(rmat3_graph, queries), rounds=1, iterations=1
    )
    record_rows("ablation_optimizations", rows)
    headers = ["variant", "closure walks", "dup checks", "dup hits", "cartesian ops"]
    body = [
        [
            row["variant"],
            row["closure_walks"],
            row["dup_checks"],
            row["dup_hits"],
            row["cartesian"],
        ]
        for row in rows
    ]
    emit(
        "ablation_optimizations",
        "Ablation: Algorithm 2 operation eliminations (RMAT_3 workload)\n"
        + format_table(headers, body),
    )

    by_variant = {row["variant"]: row for row in rows}
    paper = by_variant["all-on (paper)"]
    assert by_variant["redundant1 off"]["closure_walks"] >= paper["closure_walks"]
    assert by_variant["redundant2 off"]["cartesian"] >= paper["cartesian"]
    assert by_variant["useless2 off"]["dup_checks"] > paper["dup_checks"]
    assert by_variant["all off"]["cartesian"] >= paper["cartesian"]
    # FullSharing's walks are full BFS traversals of G_R (one per vertex,
    # the useless-1 work); RTC's "walks" are O(1) closure lookups.  The
    # numbers are not directly comparable, but Full must have started one
    # walk per G_R vertex of each distinct R (> 0 here).
    assert by_variant["FullSharing (contrast)"]["closure_walks"] > 0
