"""Ablation -- NFA vs DFA product traversal for RPQ evaluation.

The NoSharing baseline simulates an NFA (the paper's Fig. 3 / Example 2);
determinising first bounds the product frontier to one DFA state per
subset at the price of subset construction.  Both evaluators run the same
closure-heavy workload; results are asserted identical and the expanded
product-pair counts are recorded.
"""

import pytest

from bench_common import NUM_RPQS, SEED, emit, record_rows
from repro.bench.formatting import format_table
from repro.rpq.counters import OpCounters
from repro.rpq.dfa_eval import eval_rpq_dfa
from repro.rpq.evaluate import eval_rpq
from repro.workloads.generator import generate_workload


@pytest.fixture(scope="module")
def workload_queries(request):
    return None  # replaced below; kept for API symmetry


def _queries(graph):
    workload = generate_workload(graph, num_sets=1, max_rpqs=NUM_RPQS, seed=SEED)
    return workload[0].subset(NUM_RPQS)


def test_nfa_traversal(benchmark, rmat3_graph):
    queries = _queries(rmat3_graph)
    counters = OpCounters()
    results = benchmark.pedantic(
        lambda: [eval_rpq(rmat3_graph, q, counters=counters) for q in queries],
        rounds=1,
        iterations=1,
    )
    record_rows(
        "ablation_automata_nfa",
        [{"states_expanded": counters.states_expanded}],
    )
    assert results == [eval_rpq_dfa(rmat3_graph, q) for q in queries]


def test_dfa_traversal(benchmark, rmat3_graph):
    queries = _queries(rmat3_graph)
    nfa_counters = OpCounters()
    dfa_counters = OpCounters()
    for query in queries:
        eval_rpq(rmat3_graph, query, counters=nfa_counters)

    results = benchmark.pedantic(
        lambda: [
            eval_rpq_dfa(rmat3_graph, q, counters=dfa_counters) for q in queries
        ],
        rounds=1,
        iterations=1,
    )
    assert results == [eval_rpq(rmat3_graph, q) for q in queries]
    emit(
        "ablation_automata",
        "Ablation: automaton representation (product pairs expanded)\n"
        + format_table(
            ["automaton", "states expanded"],
            [
                ["NFA (paper baseline)", nfa_counters.states_expanded],
                ["DFA (determinised)", dfa_counters.states_expanded],
            ],
        ),
    )
    # Determinisation can only shrink the per-start frontier.
    assert dfa_counters.states_expanded <= nfa_counters.states_expanded
