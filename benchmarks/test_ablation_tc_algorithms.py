"""Ablation -- transitive-closure algorithm choice on ``G_R``.

The paper builds on Purdom/Nuutila-style SCC closures [12], [13].  This
benchmark times all four implemented algorithms on the edge-level reduced
graph of a cyclic (high-degree) RMAT graph, where the SCC-based methods
shine, using pytest-benchmark's proper statistics (several rounds: these
units are small).
"""

import pytest

from bench_common import SCALE, SEED, emit
from repro.bench.formatting import format_table
from repro.core.reduction import edge_level_reduce
from repro.datasets.rmat import rmat_n
from repro.graph.transitive_closure import tc_bfs, tc_nuutila, tc_purdom

ALGORITHMS = {
    "bfs (FullSharing)": tc_bfs,
    "purdom [12]": tc_purdom,
    "nuutila [13]": tc_nuutila,
}


@pytest.fixture(scope="module")
def reduced_graph():
    graph = rmat_n(4, scale=SCALE, seed=SEED + 4)  # degree 4: cyclic G_R
    return edge_level_reduce(graph, "l0")


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_tc_algorithm(benchmark, reduced_graph, name):
    algorithm = ALGORITHMS[name]
    result = benchmark.pedantic(
        lambda: algorithm(reduced_graph), rounds=3, iterations=1
    )
    # All algorithms agree; record size for the log.
    assert result == tc_bfs(reduced_graph)
    emit(
        f"ablation_tc_{name.split()[0]}",
        format_table(
            ["algorithm", "|V_R|", "|E_R|", "closure pairs"],
            [[name, reduced_graph.num_vertices, reduced_graph.num_edges, len(result)]],
        ),
    )
