"""Ablation -- how the method gap scales with graph size at fixed degree.

EXPERIMENTS.md notes that our measured ratios are compressed relative to
the paper because the default graphs are 16x smaller than the paper's
2^13 vertices.  This bench makes that claim measurable: RMAT_3 (degree 2)
at increasing scales, same workload recipe, No/Full/RTC response times.
Expected shape: the Full/RTC and No/RTC ratios grow (or at least do not
shrink) with scale -- extrapolating toward the paper's magnitudes.
"""

import statistics

from bench_common import NUM_RPQS, SEED, emit, record_rows
from repro.bench.formatting import format_ratio, format_seconds, format_table
from repro.bench.harness import run_workload
from repro.datasets.rmat import rmat_n
from repro.workloads.generator import generate_workload

SCALES = (7, 8, 9)
_TOTALS = ("total_No", "total_Full", "total_RTC")

# One source of truth for the ratio gates: the de-flaking retry loop and
# the final assertions must agree, or the loop stops re-measuring on
# samples the assertions then fail.
NO_RTC_FLOOR = 1.5
FULL_RTC_FLOOR = 0.9
CROSS_SCALE_FACTOR = 0.5


def _collect():
    rows = []
    for scale in SCALES:
        graph = rmat_n(3, scale=scale, seed=SEED + scale)
        workload = generate_workload(
            graph, num_sets=3, max_rpqs=NUM_RPQS, seed=SEED
        )
        measurement = run_workload(
            graph, [rpq_set.subset(NUM_RPQS) for rpq_set in workload]
        )
        rows.append(
            {
                "scale": scale,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "total_No": measurement.mean_total["No"],
                "total_Full": measurement.mean_total["Full"],
                "total_RTC": measurement.mean_total["RTC"],
            }
        )
    return rows


def _ratios_hold(rows) -> bool:
    """The sharing-advantage assertions, as a predicate (see below)."""
    for row in rows:
        rtc = max(row["total_RTC"], 1e-12)
        if (
            row["total_No"] / rtc <= NO_RTC_FLOOR
            or row["total_Full"] / rtc <= FULL_RTC_FLOOR
        ):
            return False
    first, last = rows[0], rows[-1]
    first_no = first["total_No"] / max(first["total_RTC"], 1e-12)
    last_no = last["total_No"] / max(last["total_RTC"], 1e-12)
    return last_no >= first_no * CROSS_SCALE_FACTOR


def _median_rows(samples):
    """Per-scale medians of the timing totals across repeated collects."""
    merged = []
    for index in range(len(samples[0])):
        entry = dict(samples[0][index])
        for key in _TOTALS:
            entry[key] = statistics.median(
                sample[index][key] for sample in samples
            )
        merged.append(entry)
    return merged


def test_gap_grows_with_scale(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    # Timing ratios flake under concurrent machine load: a single noisy
    # sample must not fail the tier-1 gate.  Only when the first sample
    # violates the ratios, re-measure and assert on per-scale medians of
    # three runs -- deterministic for real regressions, robust to one
    # scheduler hiccup.
    samples = [rows]
    while not _ratios_hold(_median_rows(samples)) and len(samples) < 3:
        samples.append(_collect())
    rows = _median_rows(samples)
    record_rows("ablation_scaling", rows)
    body = []
    for row in rows:
        rtc = row["total_RTC"] or 1e-12
        body.append(
            [
                f"2^{row['scale']}",
                row["vertices"],
                row["edges"],
                format_seconds(row["total_No"]),
                format_seconds(row["total_Full"]),
                format_seconds(row["total_RTC"]),
                format_ratio(row["total_Full"] / rtc),
                format_ratio(row["total_No"] / rtc),
            ]
        )
    emit(
        "ablation_scaling",
        "Ablation: method gap vs graph scale (RMAT_3, degree 2)\n"
        + format_table(
            ["scale", "|V|", "|E|", "No", "Full", "RTC", "Full/RTC", "No/RTC"],
            body,
        ),
    )
    # The sharing advantage holds at every scale and does not collapse
    # as graphs grow (workload draws make per-scale ratios noisy, so the
    # assertion is on the floor, not strict monotonicity; the cross-scale
    # tolerance is wide because the 2^7 baseline ratio itself carries
    # milliseconds-scale noise).
    for row in rows:
        rtc = max(row["total_RTC"], 1e-12)
        assert row["total_No"] / rtc > NO_RTC_FLOOR, row
        assert row["total_Full"] / rtc > FULL_RTC_FLOOR, row
    first, last = rows[0], rows[-1]
    first_no = first["total_No"] / max(first["total_RTC"], 1e-12)
    last_no = last["total_No"] / max(last["total_RTC"], 1e-12)
    assert last_no >= first_no * CROSS_SCALE_FACTOR
