"""Ablation -- how the method gap scales with graph size at fixed degree.

EXPERIMENTS.md notes that our measured ratios are compressed relative to
the paper because the default graphs are 16x smaller than the paper's
2^13 vertices.  This bench makes that claim measurable: RMAT_3 (degree 2)
at increasing scales, same workload recipe, No/Full/RTC response times.
Expected shape: the Full/RTC and No/RTC ratios grow (or at least do not
shrink) with scale -- extrapolating toward the paper's magnitudes.
"""

from bench_common import NUM_RPQS, SEED, emit, record_rows
from repro.bench.formatting import format_ratio, format_seconds, format_table
from repro.bench.harness import run_workload
from repro.datasets.rmat import rmat_n
from repro.workloads.generator import generate_workload

SCALES = (7, 8, 9)


def _collect():
    rows = []
    for scale in SCALES:
        graph = rmat_n(3, scale=scale, seed=SEED + scale)
        workload = generate_workload(
            graph, num_sets=3, max_rpqs=NUM_RPQS, seed=SEED
        )
        measurement = run_workload(
            graph, [rpq_set.subset(NUM_RPQS) for rpq_set in workload]
        )
        rows.append(
            {
                "scale": scale,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "total_No": measurement.mean_total["No"],
                "total_Full": measurement.mean_total["Full"],
                "total_RTC": measurement.mean_total["RTC"],
            }
        )
    return rows


def test_gap_grows_with_scale(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    record_rows("ablation_scaling", rows)
    body = []
    for row in rows:
        rtc = row["total_RTC"] or 1e-12
        body.append(
            [
                f"2^{row['scale']}",
                row["vertices"],
                row["edges"],
                format_seconds(row["total_No"]),
                format_seconds(row["total_Full"]),
                format_seconds(row["total_RTC"]),
                format_ratio(row["total_Full"] / rtc),
                format_ratio(row["total_No"] / rtc),
            ]
        )
    emit(
        "ablation_scaling",
        "Ablation: method gap vs graph scale (RMAT_3, degree 2)\n"
        + format_table(
            ["scale", "|V|", "|E|", "No", "Full", "RTC", "Full/RTC", "No/RTC"],
            body,
        ),
    )
    # The sharing advantage holds at every scale and does not collapse
    # as graphs grow (workload draws make per-scale ratios noisy, so the
    # assertion is on the floor, not strict monotonicity).
    for row in rows:
        rtc = max(row["total_RTC"], 1e-12)
        assert row["total_No"] / rtc > 1.5, row
        assert row["total_Full"] / rtc > 0.9, row
    first, last = rows[0], rows[-1]
    first_no = first["total_No"] / max(first["total_RTC"], 1e-12)
    last_no = last["total_No"] / max(last["total_RTC"], 1e-12)
    assert last_no >= first_no * 0.6
