"""Ablation -- what structure to share: RTC vs materialised closure.

Head-to-head on one graph and one workload, isolating the *shared
structure* decision from everything else (the engines share the DNF,
decomposition, Pre/Post machinery):

* build cost   (Shared_Data phase),
* stored pairs (the Fig. 12 quantity),
* join cost    (PreG ⋈ R+G phase).

Also measures the semantic-vs-syntactic cache-key extension: with
language-equal closure bodies spelled differently, the semantic key
computes one RTC where the syntactic key computes two.
"""

from bench_common import NUM_RPQS, SEED, emit, record_rows
from repro.bench.formatting import format_seconds, format_table
from repro.core.engines import FullSharingEngine, RTCSharingEngine
from repro.workloads.generator import generate_workload


def test_shared_structure_head_to_head(benchmark, rmat3_graph):
    workload = generate_workload(
        rmat3_graph, num_sets=1, max_rpqs=NUM_RPQS, seed=SEED
    )
    queries = workload[0].subset(NUM_RPQS)

    def run():
        rows = []
        reference = None
        for engine in (
            FullSharingEngine(rmat3_graph),
            RTCSharingEngine(rmat3_graph),
        ):
            results = engine.evaluate_many(queries)
            if reference is None:
                reference = results
            assert results == reference
            rows.append(
                {
                    "structure": engine.name,
                    "build": engine.timer.get("shared_data"),
                    "join": engine.timer.get("pre_join_rtc"),
                    "pairs": engine.shared_data_size(),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("ablation_shared_structure", rows)
    emit(
        "ablation_shared_structure",
        "Ablation: shared structure (RMAT_3 workload)\n"
        + format_table(
            ["structure", "build time", "join time", "stored pairs"],
            [
                [
                    row["structure"],
                    format_seconds(row["build"]),
                    format_seconds(row["join"]),
                    row["pairs"],
                ]
                for row in rows
            ],
        ),
    )
    full, rtc = rows
    assert rtc["pairs"] <= full["pairs"]
    assert rtc["build"] < full["build"]


def test_semantic_cache_key_extension(benchmark, rmat3_graph):
    # Two spellings of the same closure language.
    spellings = ["l0.(l1.l2|l1.l3)+", "l0.(l1.(l2|l3))+"]

    def run():
        syntactic = RTCSharingEngine(rmat3_graph)
        semantic = RTCSharingEngine(rmat3_graph, cache_mode="semantic")
        results = {}
        for name, engine in (("syntactic", syntactic), ("semantic", semantic)):
            answers = [engine.evaluate(query) for query in spellings]
            results[name] = {
                "answers": answers,
                "entries": engine.rtc_cache.stats.entries,
                "build": engine.timer.get("shared_data"),
            }
        assert results["syntactic"]["answers"] == results["semantic"]["answers"]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_cache_keys",
        "Ablation: cache key mode on language-equal closure spellings\n"
        + format_table(
            ["mode", "RTC entries", "build time"],
            [
                [
                    name,
                    entry["entries"],
                    format_seconds(entry["build"]),
                ]
                for name, entry in results.items()
            ],
        ),
    )
    assert results["semantic"]["entries"] == 1
    assert results["syntactic"]["entries"] == 2
