"""Server benchmark: QPS and p95 latency at 1/8/32 concurrent clients.

Drives the :mod:`repro.server` stack (real TCP, real threads) with a
closure-sharing R-MAT workload, once with the paper's ``rtc`` engine and
once with the ``no``-sharing baseline, and emits ``BENCH_server.json``
at the repository root (plus a table under ``benchmarks/results/``).
The headline check: the rtc engine's cached closures keep its QPS at or
above the no-sharing engine's at every concurrency level, with cache
hits >> constructions.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_server.py

Environment overrides: ``REPRO_BENCH_SERVER_SCALE`` (log2 vertices,
default 7), ``REPRO_BENCH_SERVER_REQUESTS`` (requests per client,
default 8), ``REPRO_BENCH_SERVER_CLIENTS`` (comma list, default
``1,8,32``), ``REPRO_BENCH_SERVER_WORKERS`` (default 4).

Not collected by pytest (no ``test_`` prefix); CI runs it as a script.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"
OUTPUT_PATH = REPO_ROOT / "BENCH_server.json"

SCALE = int(os.environ.get("REPRO_BENCH_SERVER_SCALE", "7"))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_SERVER_REQUESTS", "8"))
CLIENT_COUNTS = tuple(
    int(value)
    for value in os.environ.get("REPRO_BENCH_SERVER_CLIENTS", "1,8,32").split(",")
)
WORKERS = int(os.environ.get("REPRO_BENCH_SERVER_WORKERS", "4"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


def build_workload():
    """An R-MAT graph plus a closure-sharing multiple-RPQ query list."""
    from repro.datasets.rmat import rmat_graph
    from repro.workloads.generator import generate_workload

    graph = rmat_graph(
        scale=SCALE, num_edges=6 * (1 << SCALE), num_labels=3, seed=SEED
    )
    sets = generate_workload(
        graph,
        num_sets=2,
        lengths=(1, 2),
        max_rpqs=5,
        seed=SEED,
        require_nonempty=True,
    )
    queries = [query for rpq_set in sets for query in rpq_set.queries]
    return graph, queries


def kernel_and_wire_rows(graph, queries):
    """PR-10 microbenches: kernel before/after + wire byte footprint.

    The kernel rows time a closure-heavy subset of the server workload
    under both eval kernels; the wire rows compare the list and packed
    encodings on the same queries' result relations -- the exact
    payloads the query verb ships when a client negotiates
    ``enc: "packed"``.
    """
    from repro.bench.kernel_bench import run_kernel_comparison, run_wire_comparison
    from repro.rpq import eval_rpq

    subset = [query for query in queries if "+" in query or "*" in query][:4]
    kernel_rows = run_kernel_comparison(graph, subset)
    relations = {query: eval_rpq(graph, query) for query in subset}
    wire_rows = run_wire_comparison(relations)
    return kernel_rows, wire_rows


def main() -> int:
    from bench_common import environment_metadata
    from repro.bench.kernel_bench import format_kernel_rows, format_wire_rows
    from repro.bench.server_bench import format_benchmark_rows, run_server_benchmark

    graph, queries = build_workload()
    print(
        f"server benchmark: 2^{SCALE} vertices, {graph.num_edges} edges, "
        f"{len(queries)} queries ({REQUESTS_PER_CLIENT} requests/client, "
        f"{WORKERS} workers)"
    )
    rows = run_server_benchmark(
        graph,
        queries,
        engines=("rtc", "no"),
        client_counts=CLIENT_COUNTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        workers=WORKERS,
    )
    table = format_benchmark_rows(rows)
    print(table)

    kernel_rows, wire_rows = kernel_and_wire_rows(graph, queries)
    kernel_table = format_kernel_rows(kernel_rows)
    wire_table = format_wire_rows(wire_rows)
    print(kernel_table)
    print(wire_table)
    table += "\n" + kernel_table + "\n" + wire_table

    qps = {(row["engine"], row["clients"]): row["qps"] for row in rows}
    comparisons = {
        str(clients): {
            "rtc_qps": qps[("rtc", clients)],
            "no_qps": qps[("no", clients)],
            "speedup": qps[("rtc", clients)] / qps[("no", clients)],
        }
        for clients in CLIENT_COUNTS
    }
    document = {
        "benchmark": "repro.server QPS/latency, rtc vs no-sharing",
        "environment": environment_metadata(),
        "config": {
            "scale": SCALE,
            "edges": graph.num_edges,
            "labels": graph.num_labels,
            "queries": queries,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "client_counts": list(CLIENT_COUNTS),
            "workers": WORKERS,
            "seed": SEED,
        },
        "rows": rows,
        "qps_comparison": comparisons,
        "kernel_comparison": kernel_rows,
        "wire_comparison": wire_rows,
    }
    OUTPUT_PATH.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_server.txt").write_text(table + "\n", encoding="utf-8")
    print(f"wrote {OUTPUT_PATH}")

    slower = [
        clients
        for clients, entry in comparisons.items()
        if entry["speedup"] < 1.0
    ]
    if slower:
        print(
            f"WARNING: rtc QPS below no-sharing QPS at {', '.join(slower)} "
            "clients",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
