"""Fig. 11 -- three-part computation-time split of Full vs RTC.

The paper divides response time into ``Shared_Data`` (building the shared
closure structure), ``PreG ⋈ R+G`` (the closure join) and ``Remainder``
(identical work in both methods: ``Pre_G``, ``R_G``, the Post join).

Shapes asserted:

* RTC's Shared_Data is cheaper than Full's wherever the degree is >= 1
  (paper: 7.78x - 9013x);
* the Shared_Data advantage grows along the synthetic degree sweep.
"""

import time

from bench_common import SCALE, SEED, emit, record_rows
from repro.bench.formatting import format_ratio, format_seconds, format_table
from repro.core.batch_unit import join_pre_with_rtc, join_pre_with_rtc_bits
from repro.core.engines import FullSharingEngine, RTCSharingEngine
from repro.core.rtc import compute_rtc
from repro.datasets.rmat import rmat_n


def _phase_table(rows, title):
    headers = [
        "dataset",
        "degree",
        "Shared_Data Full",
        "Shared_Data RTC",
        "PreG⋈R+G Full",
        "PreG⋈R+G RTC",
        "Remainder Full",
        "Remainder RTC",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row["dataset"],
                f"{row['degree']:.2f}",
                format_seconds(row["shared_data_Full"]),
                format_seconds(row["shared_data_RTC"]),
                format_seconds(row["pre_join_Full"]),
                format_seconds(row["pre_join_RTC"]),
                format_seconds(row["remainder_Full"]),
                format_seconds(row["remainder_RTC"]),
            ]
        )
    return f"{title}\n" + format_table(headers, body)


def test_fig11a_synthetic_phases(benchmark, exp1_synthetic_rows, rmat3_graph):
    rows = exp1_synthetic_rows
    record_rows("fig11a", rows)
    emit("fig11a", _phase_table(rows, "Fig. 11(a): phase split (synthetic)"))

    # Benchmark one Shared_Data computation on the median graph: the
    # quantity this figure is about.
    def shared_data_once():
        engine = RTCSharingEngine(rmat3_graph)
        engine.evaluate("l0.(l1)+.l2")
        return engine.timer.get("shared_data")

    benchmark.pedantic(shared_data_once, rounds=1, iterations=1)

    top = rows[-1]
    assert top["shared_data_RTC"] < top["shared_data_Full"]
    low = rows[0]
    low_ratio = low["shared_data_Full"] / max(low["shared_data_RTC"], 1e-12)
    top_ratio = top["shared_data_Full"] / max(top["shared_data_RTC"], 1e-12)
    assert top_ratio > low_ratio


def test_fig11b_real_phases(benchmark, exp1_real_rows, advogato_graph):
    rows = exp1_real_rows
    record_rows("fig11b", rows)
    emit("fig11b", _phase_table(rows, "Fig. 11(b): phase split (real stand-ins)"))

    def full_shared_data_once():
        engine = FullSharingEngine(advogato_graph)
        engine.evaluate("l0.(l1)+.l2")
        return engine.timer.get("shared_data")

    benchmark.pedantic(full_shared_data_once, rounds=1, iterations=1)

    by_name = {row["dataset"]: row for row in rows}
    # Dense real datasets: RTC computes the shared data faster.
    for name in ("advogato", "youtube"):
        assert by_name[name]["shared_data_RTC"] < by_name[name]["shared_data_Full"]


def test_fig11c_closure_join_kernel(benchmark):
    """PR-10 before/after on the ``PreG ⋈ R+G`` phase in isolation.

    Times the set closure join against the bitmap row-OR join on the
    top-degree synthetic graph, with ``Pre_G = l1``-edges and the RTC of
    the ``l0``-subgraph -- the exact shapes the RTC engine feeds the
    phase.  Identity is asserted; the timing rows are recorded as the
    fig11 kernel cell (the response-time gate itself lives in fig10c).
    """
    graph = rmat_n(6, scale=SCALE, seed=SEED + 6)
    rtc = compute_rtc(graph.edges_with_label("l0"))
    pre_pairs = set(graph.edges_with_label("l1"))

    def best_of(measure, repeats=3):
        best, value = float("inf"), None
        for _ in range(repeats):
            started = time.perf_counter()
            value = measure()
            best = min(best, time.perf_counter() - started)
        return best, value

    sets_seconds, sets_joined = best_of(
        lambda: join_pre_with_rtc(pre_pairs, rtc)
    )
    bits_seconds, bits_joined = best_of(
        lambda: join_pre_with_rtc_bits(pre_pairs, rtc, graph.interner)
    )
    assert bits_joined.pairs == sets_joined

    row = {
        "dataset": "RMAT_6",
        "phase": "pre_join",
        "pairs": len(sets_joined),
        "sets_seconds": sets_seconds,
        "bits_seconds": bits_seconds,
        "speedup": sets_seconds / max(bits_seconds, 1e-12),
    }
    record_rows("fig11c_kernel", [row])
    emit(
        "fig11c_kernel",
        "Fig. 11(c): PreG ⋈ R+G before/after (set join vs bitmap join)\n"
        + format_table(
            ["dataset", "pairs", "sets", "bits", "speedup"],
            [[
                row["dataset"],
                str(row["pairs"]),
                format_seconds(row["sets_seconds"]),
                format_seconds(row["bits_seconds"]),
                format_ratio(row["speedup"]),
            ]],
        ),
    )
    benchmark.pedantic(
        lambda: join_pre_with_rtc_bits(pre_pairs, rtc, graph.interner),
        rounds=1,
        iterations=1,
    )
