"""Table IV -- statistics of every dataset used in the experiments.

Regenerates the table (|V|, |E|, |Sigma|, |E|/(|V||Sigma|)) for the four
real-dataset stand-ins and the RMAT_N sweep, asserting each stand-in
matches the published degree regime at its configured scale-down
fraction (1.0 = published size; see bench_common / DESIGN.md).
"""

import pytest

from bench_common import MAX_N, SCALE, SEED, real_fractions, emit, record_rows
from repro.bench.experiments import dataset_statistics
from repro.bench.formatting import format_table
from repro.datasets.rmat import rmat_n
from repro.datasets.standins import TABLE4_SPECS, load_standin

PUBLISHED_DEGREES = {
    "yago2s": 0.02,
    "robots": 0.52,
    "advogato": 2.61,
    "youtube": 11.42,
}


def _collect():
    rows = []
    for name in ("yago2s", "robots", "advogato", "youtube"):
        fraction = real_fractions().get(name)
        kwargs = {"fraction": fraction} if fraction else {}
        graph = load_standin(name, seed=SEED, **kwargs)
        rows.append(dataset_statistics(graph, name))
    for n in range(0, MAX_N + 1):
        graph = rmat_n(n, scale=SCALE, seed=SEED + n)
        rows.append(dataset_statistics(graph, f"RMAT_{n}"))
    return rows


def test_table4_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    record_rows("table4", rows)
    headers = ["dataset", "|V|", "|E|", "|Σ|", "|E|/(|V||Σ|)"]
    body = [
        [
            row["dataset"],
            row["num_vertices"],
            row["num_edges"],
            row["num_labels"],
            f"{row['degree']:.2f}",
        ]
        for row in rows
    ]
    emit("table4", "Table IV: dataset statistics\n" + format_table(headers, body))

    by_name = {row["dataset"]: row for row in rows}
    # The degree regime -- the quantity the paper's analysis keys on --
    # must match the published Table IV at any scale-down fraction.
    for name, degree in PUBLISHED_DEGREES.items():
        assert by_name[name]["degree"] == pytest.approx(degree, rel=0.15), name
    # Sizes are the published ones scaled by the configured fractions.
    fractions = real_fractions()
    for name in ("robots", "advogato", "youtube"):
        spec = TABLE4_SPECS[name]
        fraction = fractions.get(name) or 1.0
        assert by_name[name]["num_vertices"] == max(2, round(spec.num_vertices * fraction))
        assert by_name[name]["num_edges"] == max(1, round(spec.num_edges * fraction))
    # The synthetic sweep covers the paper's degree range 2^-2 .. 2^4.
    degrees = [by_name[f"RMAT_{n}"]["degree"] for n in range(0, MAX_N + 1)]
    assert degrees[0] == pytest.approx(0.25)
    assert degrees[-1] == pytest.approx(2 ** (MAX_N - 2))
