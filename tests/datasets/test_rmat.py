"""Tests for the R-MAT generator."""

import numpy as np
import pytest

from repro.datasets.rmat import default_labels, rmat_edges, rmat_graph, rmat_n
from repro.errors import WorkloadError


class TestRmatEdges:
    def test_shape_and_range(self):
        rng = np.random.default_rng(0)
        pairs = rmat_edges(scale=6, num_edges=500, rng=rng)
        assert pairs.shape == (500, 2)
        assert pairs.min() >= 0
        assert pairs.max() < 64

    def test_determinism(self):
        first = rmat_edges(5, 100, np.random.default_rng(42))
        second = rmat_edges(5, 100, np.random.default_rng(42))
        assert (first == second).all()

    def test_skew_toward_low_ids(self):
        # Quadrant a = 0.57 concentrates mass near vertex 0.
        rng = np.random.default_rng(1)
        pairs = rmat_edges(scale=10, num_edges=20_000, rng=rng)
        low_half = (pairs[:, 0] < 512).mean()
        assert low_half > 0.6  # strongly skewed, not uniform


class TestRmatGraph:
    def test_exact_edge_count(self):
        graph = rmat_graph(scale=7, num_edges=300, num_labels=4, seed=3)
        assert graph.num_edges == 300
        assert graph.num_vertices == 128  # all vertices materialised

    def test_labels_used(self):
        graph = rmat_graph(scale=6, num_edges=200, num_labels=3, seed=5)
        assert set(graph.labels()) <= set(default_labels(3))

    def test_determinism(self):
        first = rmat_graph(6, 150, 4, seed=9)
        second = rmat_graph(6, 150, 4, seed=9)
        assert first == second

    def test_different_seeds_differ(self):
        first = rmat_graph(6, 150, 4, seed=1)
        second = rmat_graph(6, 150, 4, seed=2)
        assert first != second

    def test_invalid_labels(self):
        with pytest.raises(WorkloadError):
            rmat_graph(4, 10, 0)

    def test_saturation_raises(self):
        # 2-vertex graph with 1 label holds at most 4 labeled edges.
        with pytest.raises(WorkloadError):
            rmat_graph(1, 100, 1)


class TestRmatN:
    def test_paper_parameters(self):
        graph = rmat_n(2, scale=8, num_labels=4, seed=0)
        assert graph.num_vertices == 256
        assert graph.num_edges == 2 ** (2 + 8)
        assert graph.average_degree_per_label() == pytest.approx(1.0)

    def test_degree_sweep(self):
        degrees = [
            rmat_n(n, scale=7, seed=0).average_degree_per_label()
            for n in range(3)
        ]
        assert degrees == pytest.approx([0.25, 0.5, 1.0])

    def test_negative_n_rejected(self):
        with pytest.raises(WorkloadError):
            rmat_n(-1)
