"""Tests for the Table-IV dataset stand-ins."""

import pytest

from repro.datasets.standins import (
    TABLE4_SPECS,
    DatasetSpec,
    load_standin,
    make_standin,
    robots_like,
    yago2s_like,
    youtube_like,
)
from repro.errors import WorkloadError


class TestSpecs:
    def test_published_degrees(self):
        assert TABLE4_SPECS["yago2s"].degree == pytest.approx(0.02, abs=0.005)
        assert TABLE4_SPECS["robots"].degree == pytest.approx(0.52, abs=0.01)
        assert TABLE4_SPECS["advogato"].degree == pytest.approx(2.61, abs=0.01)
        assert TABLE4_SPECS["youtube"].degree == pytest.approx(11.42, abs=0.01)

    def test_scaling_preserves_degree(self):
        spec = TABLE4_SPECS["yago2s"].scaled(1 / 1000)
        assert spec.degree == pytest.approx(TABLE4_SPECS["yago2s"].degree, rel=0.05)
        assert spec.num_vertices == round(108_048_761 / 1000)

    def test_capacity_guard(self):
        impossible = DatasetSpec("x", num_vertices=2, num_edges=100, num_labels=1)
        with pytest.raises(WorkloadError):
            make_standin(impossible)


class TestGeneratedGraphs:
    def test_robots_exact_size(self):
        graph = robots_like(seed=0)
        spec = TABLE4_SPECS["robots"]
        assert graph.num_vertices == spec.num_vertices
        assert graph.num_edges == spec.num_edges
        assert graph.num_labels <= spec.num_labels
        assert graph.average_degree_per_label() == pytest.approx(
            spec.degree, rel=0.05
        )

    def test_youtube_degree_regime(self):
        graph = youtube_like(seed=0)
        assert graph.average_degree_per_label() == pytest.approx(11.42, rel=0.05)

    def test_yago_fraction_and_sparsity(self):
        graph = yago2s_like(fraction=1 / 20000, seed=0)
        assert graph.num_vertices == round(108_048_761 / 20000)
        # Degree regime preserved: extremely sparse per label.
        assert graph.average_degree_per_label() < 0.03

    def test_determinism(self):
        assert robots_like(seed=4) == robots_like(seed=4)

    def test_loader(self):
        graph = load_standin("ROBOTS", seed=1)
        assert graph.num_edges == TABLE4_SPECS["robots"].num_edges
        with pytest.raises(WorkloadError):
            load_standin("friendster")
