"""Per-rule corpus tests: each family must fire on its bad fixture and
stay silent on the good one."""

from pathlib import Path

import pytest

from repro.analysis import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


def lint(path: Path, *rules: str):
    return run_lint([str(path)], select=list(rules) or None)


def rule_ids(result) -> set:
    return {finding.rule for finding in result.findings}


def lines(result, rule: str) -> set:
    return {
        finding.line for finding in result.findings if finding.rule == rule
    }


class TestLockGuard:
    def test_bad_flags_unlocked_write(self):
        result = lint(FIXTURES / "rpr101" / "bad.py", "RPR101")
        assert rule_ids(result) == {"RPR101"}
        [finding] = result.findings
        assert finding.detail["attribute"] == "value"
        assert finding.detail["method"] == "reset"

    def test_good_is_clean(self):
        assert lint(FIXTURES / "rpr101" / "good.py", "RPR101").ok


class TestLockOrder:
    def test_bad_flags_cycle(self):
        result = lint(FIXTURES / "rpr102" / "bad.py", "RPR102")
        assert rule_ids(result) == {"RPR102"}
        [finding] = result.findings
        assert set(finding.detail["cycle"]) == {
            "Transfer._source_lock",
            "Transfer._target_lock",
        }

    def test_good_is_clean(self):
        assert lint(FIXTURES / "rpr102" / "good.py", "RPR102").ok


class TestAsyncBlocking:
    def test_bad_flags_every_blocking_shape(self):
        result = lint(FIXTURES / "rpr201" / "bad.py", "RPR201")
        assert rule_ids(result) == {"RPR201"}
        messages = " | ".join(f.message for f in result.findings)
        assert "time.sleep" in messages
        assert "subprocess.run" in messages
        assert "work_queue.get" in messages
        assert ".submit(...).result()" in messages
        assert len(result.findings) == 4

    def test_good_is_clean(self):
        assert lint(FIXTURES / "rpr201" / "good.py", "RPR201").ok


class TestWireVerbs:
    def test_bad_flags_both_directions(self):
        result = lint(FIXTURES / "rpr301" / "bad", "RPR301")
        assert rule_ids(result) == {"RPR301"}
        verbs = {finding.detail["verb"] for finding in result.findings}
        assert verbs == {"flush", "stats"}
        by_verb = {f.detail["verb"]: f for f in result.findings}
        assert by_verb["flush"].path.endswith("client.py")
        assert by_verb["stats"].path.endswith("service.py")

    def test_good_is_clean(self):
        assert lint(FIXTURES / "rpr301" / "good", "RPR301").ok

    def test_sender_alone_is_not_cross_referenced(self):
        # Without any handler module in the linted set there is nothing
        # to drift from; partial lints must not spray false positives.
        result = lint(FIXTURES / "rpr301" / "bad" / "client.py", "RPR301")
        assert result.ok


class TestErrorCodes:
    def test_bad_flags_undeclared_code(self):
        result = lint(FIXTURES / "rpr302" / "bad", "RPR302")
        assert rule_ids(result) == {"RPR302"}
        [finding] = result.findings
        assert finding.detail["code"] == "mystery"

    def test_good_is_clean(self):
        assert lint(FIXTURES / "rpr302" / "good", "RPR302").ok


class TestWalBeforeAck:
    def test_bad_flags_unlogged_and_early_return(self):
        result = lint(FIXTURES / "rpr401" / "bad.py", "RPR401")
        assert rule_ids(result) == {"RPR401"}
        methods = {finding.detail["method"] for finding in result.findings}
        assert methods == {"apply", "apply_maybe"}

    def test_good_and_recovery_are_clean(self):
        assert lint(FIXTURES / "rpr401" / "good.py", "RPR401").ok


class TestObsNames:
    def test_bad_flags_each_kind(self):
        result = lint(FIXTURES / "rpr501" / "bad", "RPR501")
        assert rule_ids(result) == {"RPR501"}
        kinds = {
            finding.detail["kind"]: finding.detail["name"]
            for finding in result.findings
        }
        assert kinds == {
            "SPAN_NAMES": "reqest",
            "METRIC_NAMES": "repro_requets_total",
            "PHASE_KEYS": "walx",
        }

    def test_good_is_clean(self):
        assert lint(FIXTURES / "rpr501" / "good", "RPR501").ok


class TestWallClock:
    def test_bad_flags_both_calls(self):
        result = lint(FIXTURES / "rpr601" / "bad.py", "RPR601")
        assert rule_ids(result) == {"RPR601"}
        assert len(result.findings) == 2

    def test_good_is_clean(self):
        assert lint(FIXTURES / "rpr601" / "good.py", "RPR601").ok


class TestBroadExcept:
    def test_bad_flags_broad_and_bare(self):
        result = lint(FIXTURES / "rpr701" / "bad.py", "RPR701")
        assert rule_ids(result) == {"RPR701"}
        assert len(result.findings) == 2
        assert all(f.severity == "warning" for f in result.findings)

    def test_good_specific_and_reraise_are_clean(self):
        assert lint(FIXTURES / "rpr701" / "good.py", "RPR701").ok


class TestPairSets:
    def test_bad_flags_every_construction_shape(self):
        result = lint(FIXTURES / "rpr801" / "bad", "RPR801")
        assert rule_ids(result) == {"RPR801"}
        # annotated accumulator, tuple SetComp, set() generator,
        # frozenset() of tuple() calls
        assert len(result.findings) == 4

    def test_good_rows_boundary_noqa_and_scalars_are_clean(self):
        assert lint(FIXTURES / "rpr801" / "good", "RPR801").ok

    def test_outside_hot_packages_is_out_of_scope(self):
        # The same constructions in a non-rpq/relalg path do not fire.
        result = lint(FIXTURES / "rpr701" / "bad.py", "RPR801")
        assert result.ok


@pytest.mark.parametrize(
    "family",
    ["rpr101", "rpr102", "rpr201", "rpr301", "rpr302", "rpr401", "rpr501", "rpr601", "rpr701", "rpr801"],
)
def test_every_family_has_a_failing_fixture(family):
    rule = family.upper()
    result = lint(FIXTURES / family / "bad.py", rule) if (
        FIXTURES / family / "bad.py"
    ).exists() else lint(FIXTURES / family / "bad", rule)
    assert not result.ok
    assert rule_ids(result) == {rule}
