"""The error-code registry and its wire round-trip.

Satellite of the RPR302 contract: ``errors.ERROR_CODES`` is canonical,
and every declared code survives ``exception_from_payload`` ->
``error_payload`` -> JSON intact, so a client can rehydrate exactly the
set of codes servers can emit.
"""

import json

import pytest

from repro.errors import (
    AdmissionError,
    ClusterError,
    DeadlineExpiredError,
    ERROR_CODES,
    ProtocolError,
    ReproError,
    RPQSyntaxError,
    ServerError,
    StorageError,
)
from repro.server.protocol import (
    decode_line,
    encode,
    error_payload,
    error_response,
    exception_from_payload,
)


def test_registry_shape():
    assert isinstance(ERROR_CODES, dict)
    for code, meaning in ERROR_CODES.items():
        assert isinstance(code, str) and code
        assert isinstance(meaning, str) and meaning, f"{code} needs a meaning"
    # The codes the serving stack is built around must all be declared.
    assert {
        "syntax", "storage", "evaluation", "internal", "rejected",
        "deadline", "closed", "poisoned", "bad_request", "cluster",
        "cluster.topology", "cluster.unsupported", "cluster.unknown_edge",
        "cluster.worker_start",
    } <= set(ERROR_CODES)


@pytest.mark.parametrize("code", sorted(ERROR_CODES))
def test_every_code_round_trips_through_the_wire(code):
    # Server side: a payload carrying the code crosses the wire...
    response = error_response(7, {"code": code, "message": f"boom [{code}]"})
    wire = decode_line(encode(response))
    # ...the client rehydrates it into a ReproError...
    error = exception_from_payload(wire["error"])
    assert isinstance(error, ReproError)
    assert error.code == code
    assert f"boom [{code}]" in str(error)
    # ...and re-serialising that exception preserves the code exactly.
    assert error_payload(error)["code"] == code


def test_known_codes_rehydrate_to_their_classes():
    cases = {
        "syntax": RPQSyntaxError,
        "storage": StorageError,
        "rejected": AdmissionError,
        "deadline": DeadlineExpiredError,
        "bad_request": ProtocolError,
        "cluster": ClusterError,
        "cluster.topology": ClusterError,
        "cluster.unknown_edge": ClusterError,
    }
    for code, expected in cases.items():
        error = exception_from_payload({"code": code, "message": "x"})
        assert isinstance(error, expected), code


def test_cluster_payload_round_trips_structured_fields():
    original = ClusterError(
        "edge crosses shards",
        code="cluster.unknown_edge",
        shards=(1, 2),
        detail=["a", "label", "b"],
    )
    payload = json.loads(json.dumps(error_payload(original)))
    rebuilt = exception_from_payload(payload)
    assert isinstance(rebuilt, ClusterError)
    assert rebuilt.code == "cluster.unknown_edge"
    assert rebuilt.shards == (1, 2)
    assert rebuilt.detail == ["a", "label", "b"]


def test_unregistered_code_still_reaches_the_caller():
    # Forward compatibility: a code a newer server emits must not be
    # dropped by an older client, even before the registry learns it.
    error = exception_from_payload({"code": "future.surprise", "message": "x"})
    assert isinstance(error, ServerError)
    assert error.code == "future.surprise"
