"""Framework tests: suppressions, selection, rendering, loading, CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis import all_rules, get_rule, run_lint
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SUPPRESS = FIXTURES / "suppress"


class TestSuppressions:
    def test_noqa_with_rationale_silences_the_finding(self):
        result = run_lint([str(SUPPRESS / "suppressed.py")])
        assert result.ok

    def test_unused_suppression_warns_rpr000(self):
        result = run_lint([str(SUPPRESS / "unused.py")])
        [finding] = result.findings
        assert finding.rule == "RPR000"
        assert "unused suppression" in finding.message
        assert result.exit_code == 1

    def test_used_suppression_without_rationale_warns_rpr000(self):
        result = run_lint([str(SUPPRESS / "norationale.py")])
        [finding] = result.findings
        assert finding.rule == "RPR000"
        assert "rationale" in finding.message

    def test_subset_runs_skip_unused_warnings(self):
        # Under --select the RPR601 suppression in suppressed.py could
        # look "unused" when RPR601 is not selected; it must not warn.
        result = run_lint([str(SUPPRESS / "suppressed.py")], select=["RPR701"])
        assert result.ok


class TestSelection:
    def test_family_prefix_expands(self):
        result = run_lint([str(FIXTURES / "rpr601" / "bad.py")], select=["RPR6"])
        assert {finding.rule for finding in result.findings} == {"RPR601"}

    def test_ignore_removes_a_family(self):
        result = run_lint(
            [str(FIXTURES / "rpr601" / "bad.py")], ignore=["RPR6"]
        )
        assert result.ok

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            run_lint([str(FIXTURES / "rpr601" / "bad.py")], select=["NOPE"])


class TestRegistry:
    def test_rule_pack_metadata(self):
        rules = all_rules()
        # The contract: at least the six mandated families, stable ids.
        for rule_id in (
            "RPR101", "RPR102", "RPR201", "RPR301", "RPR302",
            "RPR401", "RPR501", "RPR601", "RPR701",
        ):
            assert rule_id in rules
            rule = rules[rule_id]
            assert rule.rationale, f"{rule_id} must explain itself"
            assert rule.severity in ("error", "warning")
        assert get_rule("RPR401") is rules["RPR401"]
        assert get_rule("RPR999") is None


class TestRendering:
    def test_text_findings_are_file_line_rule_message(self):
        result = run_lint([str(FIXTURES / "rpr601" / "bad.py")])
        line = result.render_text().splitlines()[0]
        path, lineno, rest = line.split(":", 2)
        assert path.endswith("bad.py")
        assert int(lineno) > 0
        assert rest.strip().startswith("RPR601 ")

    def test_json_schema(self):
        result = run_lint([str(FIXTURES / "rpr601" / "bad.py")])
        document = json.loads(result.render_json())
        assert set(document) == {"ok", "modules", "rules", "findings"}
        assert document["ok"] is False
        assert document["modules"] == 1
        for finding in document["findings"]:
            assert set(finding) >= {
                "rule", "path", "line", "col", "severity", "message",
            }
            assert finding["rule"] == "RPR601"

    def test_findings_sorted_by_path_then_line(self):
        result = run_lint([str(FIXTURES / "rpr601" / "bad.py")])
        keys = [(f.path, f.line) for f in result.findings]
        assert keys == sorted(keys)


class TestLoading:
    def test_syntax_error_becomes_rpr001(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def nope(:\n", encoding="utf-8")
        result = run_lint([str(bad)])
        [finding] = result.findings
        assert finding.rule == "RPR001"
        assert result.exit_code == 1

    def test_directories_expand_and_skip_caches(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text(
            "def nope(:\n", encoding="utf-8"
        )
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        result = run_lint([str(tmp_path)])
        assert result.ok
        assert result.modules == 1


class TestCli:
    def test_lint_command_reports_and_exits_nonzero(self, capsys):
        code = main(["lint", str(FIXTURES / "rpr601" / "bad.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RPR601" in out

    def test_lint_json_artifact(self, capsys):
        code = main(
            ["lint", str(FIXTURES / "rpr601" / "bad.py"), "--json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["ok"] is False

    def test_lint_explain(self, capsys):
        assert main(["lint", "--explain", "RPR401"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("RPR401 ")
        assert "WAL" in out

    def test_lint_explain_unknown_rule(self, capsys):
        assert main(["lint", "--explain", "RPR999"]) == 2

    def test_lint_unknown_select_is_usage_error(self, capsys):
        assert main(["lint", "--select", "NOPE"]) == 2
