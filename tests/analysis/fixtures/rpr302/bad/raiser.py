"""RPR302 bad fixture: raises a code absent from ERROR_CODES."""


def fail(make_error):
    raise make_error("boom", code="mystery")  # undeclared -> RPR302


def tag(error):
    error.code = "known"  # declared: fine
    return error
