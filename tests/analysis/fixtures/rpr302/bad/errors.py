"""RPR302 bad fixture: a registry that misses a code in use."""

ERROR_CODES = {
    "known": "a declared failure mode",
}
