"""RPR302 good fixture: raised codes all appear in the registry."""


def fail(make_error):
    raise make_error("boom", code="mystery")


def tag(error):
    error.code = "known"
    return error
