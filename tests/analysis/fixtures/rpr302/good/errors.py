"""RPR302 good fixture: every code in use is declared."""

ERROR_CODES = {
    "known": "a declared failure mode",
    "mystery": "now declared, with its meaning",
}
