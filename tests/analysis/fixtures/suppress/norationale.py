"""Suppression fixture: a used noqa that never says why."""

import time


def stamp():
    return time.time()  # repro: noqa[RPR601]
