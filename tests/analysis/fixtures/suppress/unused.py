"""Suppression fixture: a noqa on a line with nothing to suppress."""


def clean():
    return 1  # repro: noqa[RPR601] -- nothing here to excuse
