"""Suppression fixture: a finding silenced with a rationale."""

import time


def stamp():
    return time.time()  # repro: noqa[RPR601] -- wall-clock log timestamp
