"""RPR401 good fixture: mutate, append, then ack."""


class Store:
    def __init__(self, graph, storage):
        self.graph = graph
        self._storage = storage

    def apply(self, source, label, target):
        self.graph.add_edge(source, label, target)
        self._storage.log_update([(source, label, target)], [])
        return True

    def recover_edges(self, records):
        # Replay applies already-logged records; logging again would
        # double them -- the rule's recover*/replay* exemption.
        for source, label, target in records:
            self.graph.add_edge(source, label, target)
