"""RPR401 bad fixture: storage-bound mutations without (or before) the
WAL append."""


class Store:
    def __init__(self, graph, storage):
        self.graph = graph
        self._storage = storage

    def apply(self, source, label, target):
        # Mutates, never logs -> the ack is not durable.
        self.graph.add_edge(source, label, target)
        return True

    def apply_maybe(self, source, label, target, dry_run):
        self.graph.add_edge(source, label, target)
        if dry_run:
            return False  # early ack between mutation and append
        self._storage.log_update([(source, label, target)], [])
        return True
