"""RPR701 bad fixture: broad handlers that swallow."""


def risky(task):
    try:
        return task()
    except Exception:  # swallows bugs -> RPR701
        return None


def riskier(task):
    try:
        return task()
    except:  # noqa: E722 -- bare except, also RPR701
        return None
