"""RPR701 good fixture: specific types, or broad with a re-raise."""


def risky(task):
    try:
        return task()
    except ValueError:
        return None


def logged(task, log):
    try:
        return task()
    except Exception:
        log.exception("task failed")
        raise  # catch-log-reraise: the good broad pattern
