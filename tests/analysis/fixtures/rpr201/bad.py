"""RPR201 bad fixture: blocking calls directly in async def bodies."""

import subprocess
import time


async def handler(request, work_queue, pool):
    time.sleep(0.1)  # blocks the loop
    subprocess.run(["true"])  # blocks the loop
    item = work_queue.get()  # blocking queue read
    answer = pool.submit(len, request).result()  # sync future wait
    return item, answer
