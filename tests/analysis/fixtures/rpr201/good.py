"""RPR201 good fixture: blocking work routed off the event loop."""

import asyncio
import time


async def handler(request, work_queue):
    loop = asyncio.get_running_loop()
    # The blocking callable is *referenced*, never called on the loop.
    await loop.run_in_executor(None, time.sleep, 0.1)
    item = work_queue.get_nowait()
    await asyncio.sleep(0)  # async sleep is fine
    return item
