"""RPR101 good fixture: every post-init write holds the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # pre-publication write: exempt

    def bump(self):
        with self._lock:
            self.value += 1

    def reset(self):
        with self._lock:
            self.value = 0
