"""RPR101 bad fixture: lock-guarded attribute written without the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump(self):
        with self._lock:
            self.value += 1

    def reset(self):
        self.value = 0  # written without self._lock -> RPR101

    def deferred_bump(self):
        with self._lock:
            # A closure defined under the lock runs later, without it.
            return lambda: setattr(self, "other", 1)
