"""RPR801 good fixture: bitmap rows, boundary materialisation, rationales."""


def evaluate(graph, label, interner):
    rows: dict[int, int] = {}  # PairBitmap-style big-int rows: no findings
    for source, target in graph.edges_with_label(label):
        source_id = interner.intern(source)
        rows[source_id] = rows.get(source_id, 0) | (1 << interner.intern(target))
    return rows


def boundary(bitmap):
    pairs: set[tuple[object, object]] = bitmap.pairs  # repro: noqa[RPR801] -- declared API boundary: callers receive tuples
    return pairs


def not_pairs(vertices):
    # A plain set of scalars is not a pair relation.
    seen: set[object] = set()
    for vertex in vertices:
        seen.add(vertex)
    return seen
