"""RPR801 bad fixture: pair-set construction inside an rpq/ path."""


def evaluate(graph, label):
    results: set[tuple[object, object]] = set()  # annotated accumulator
    for source, target in graph.edges_with_label(label):
        results.add((source, target))
    return results


def comprehension(pairs):
    return {(target, source) for source, target in pairs}  # tuple SetComp


def generator(rows):
    return set((s, t) for s, t in rows)  # set() over a tuple generator


def frozen(rows):
    return frozenset(tuple(row) for row in rows)  # frozenset() of tuples
