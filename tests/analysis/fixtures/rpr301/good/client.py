"""RPR301 good fixture: every constructed verb has a handler."""


class Client:
    def _call(self, request):
        raise NotImplementedError

    def ping(self):
        return self._call({"op": "ping"})

    def stats(self):
        return self._call({"op": "stats"})
