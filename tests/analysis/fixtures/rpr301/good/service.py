"""RPR301 good fixture: handlers mirror the constructed verbs."""


class Server:
    def __init__(self):
        self._handlers = {
            "ping": self._op_ping,
            "stats": self._op_stats,
        }

    def _op_ping(self, request):
        return {"ok": True}

    def _op_stats(self, request):
        return {"ok": True}
