"""RPR301 bad fixture (handler side): registers a verb nobody sends."""


class Server:
    def __init__(self):
        self._handlers = {
            "ping": self._op_ping,
            # No client constructs "stats" -> RPR301.
            "stats": self._op_stats,
        }

    def _op_ping(self, request):
        return {"ok": True}

    def _op_stats(self, request):
        return {"ok": True}
