"""RPR301 bad fixture (sender side): constructs a verb nobody handles."""


class Client:
    def _call(self, request):
        raise NotImplementedError

    def ping(self):
        return self._call({"op": "ping"})

    def flush(self):
        # No handler registers "flush" -> RPR301.
        return self._call({"op": "flush"})
