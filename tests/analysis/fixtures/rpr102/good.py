"""RPR102 good fixture: one global acquisition order."""

import threading


class Transfer:
    def __init__(self):
        self._source_lock = threading.Lock()
        self._target_lock = threading.Lock()

    def forward(self):
        with self._source_lock:
            with self._target_lock:
                pass

    def backward(self):
        with self._source_lock:
            with self._target_lock:
                pass
