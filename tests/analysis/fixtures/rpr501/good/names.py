"""RPR501 good fixture: the declared observability-name registry."""

SPAN_NAMES = frozenset({"request"})
METRIC_NAMES = frozenset({"repro_requests_total"})
PHASE_KEYS = frozenset({"wal"})
