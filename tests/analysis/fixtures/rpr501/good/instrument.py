"""RPR501 good fixture: every instrumentation literal is declared."""


def work(tracer, registry):
    span = tracer.begin("request")
    counter = registry.counter("repro_requests_total", "documented")
    counter.inc(1.0, phase="wal")
    return span
