"""RPR501 bad fixture: typo'd span/metric/phase names."""


def work(tracer, registry):
    span = tracer.begin("reqest")  # typo -> RPR501
    counter = registry.counter("repro_requets_total", "typo")  # RPR501
    counter.inc(1.0, phase="walx")  # undeclared phase -> RPR501
    return span
