"""RPR601 bad fixture: wall-clock elapsed measurement."""

import time


def timed(work):
    started = time.time()  # RPR601
    work()
    return time.time() - started  # RPR601
