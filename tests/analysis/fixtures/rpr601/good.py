"""RPR601 good fixture: monotonic elapsed measurement."""

import time


def timed(work):
    started = time.perf_counter()
    work()
    return time.perf_counter() - started
