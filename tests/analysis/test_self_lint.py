"""The meta-test: the repo must satisfy its own invariant checker.

This is the CI gate in test form -- ``repro lint src/repro`` exits 0,
meaning every contract rule passes and every suppression in the tree
both matches a real finding and carries a rationale (stale or
unexplained suppressions surface as RPR000 and fail this test).
"""

from pathlib import Path

import repro
from repro.analysis import run_lint
from repro.cli import main

PACKAGE = Path(repro.__file__).parent


def test_repo_source_is_lint_clean():
    result = run_lint([str(PACKAGE)])
    assert result.findings == [], result.render_text()
    assert result.exit_code == 0
    # Sanity: the run actually covered the tree and the full rule pack.
    assert result.modules >= 90
    assert len(result.rules) >= 9


def test_cli_default_paths_lint_the_package(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out
