"""Tests for the paper's formal expressions (Lemma 4, Theorem 2, Eq. 6-10)."""

import pytest

from repro.core.batch_unit import eval_batch_unit
from repro.core.rtc import compute_rtc
from repro.relalg.builders import (
    batch_unit_expression,
    concat_expression,
    rtc_relation,
    scc_relation,
    theorem2_expression,
)
from repro.rpq.evaluate import eval_rpq
from repro.rpq.restricted import RestrictedEvaluator


class TestLemma4:
    def test_concatenation_is_a_join(self, fig1):
        a_pairs = eval_rpq(fig1, "b")
        b_pairs = eval_rpq(fig1, "c")
        expression = concat_expression(a_pairs, b_pairs)
        assert expression.evaluate().to_pairs() == eval_rpq(fig1, "b.c")

    def test_lemma4_on_arbitrary_splits(self, fig1):
        for left, right in [("d", "b"), ("b.c", "c"), ("a", "c.c")]:
            expression = concat_expression(
                eval_rpq(fig1, left), eval_rpq(fig1, right)
            )
            assert expression.evaluate().to_pairs() == eval_rpq(
                fig1, f"{left}.{right}"
            ), (left, right)


class TestBaseRelations:
    def test_scc_relation(self, fig1):
        rtc = compute_rtc(eval_rpq(fig1, "b.c"))
        relation = scc_relation(rtc).evaluate()
        assert relation.columns == ("V", "S")
        assert relation.cardinality == 5  # |V_R|

    def test_rtc_relation(self, fig1):
        rtc = compute_rtc(eval_rpq(fig1, "b.c"))
        relation = rtc_relation(rtc).evaluate()
        assert relation.columns == ("START_S", "END_S")
        assert relation.cardinality == 3


class TestTheorem2:
    def test_reconstructs_plus_result(self, fig1):
        rtc = compute_rtc(eval_rpq(fig1, "b.c"))
        expression = theorem2_expression(rtc)
        assert expression.evaluate().to_pairs() == eval_rpq(fig1, "(b.c)+")

    def test_algebra_string_mentions_joins(self, fig1):
        rtc = compute_rtc(eval_rpq(fig1, "b.c"))
        text = theorem2_expression(rtc).to_algebra()
        assert "⋈" in text and "SCC" in text

    @pytest.mark.parametrize("r", ["c", "b", "b|c", "c.c"])
    def test_other_closure_bodies(self, fig1, r):
        rtc = compute_rtc(eval_rpq(fig1, r))
        assert theorem2_expression(rtc).evaluate().to_pairs() == eval_rpq(
            fig1, f"({r})+"
        )


class TestBatchUnitExpression:
    def test_plus_matches_algorithm2(self, fig1):
        rtc = compute_rtc(eval_rpq(fig1, "b.c"))
        pre_pairs = eval_rpq(fig1, "d")
        post_pairs = eval_rpq(fig1, "c")
        expression = batch_unit_expression(pre_pairs, rtc, post_pairs, "+")
        declarative = expression.evaluate().to_pairs()
        imperative = eval_batch_unit(
            fig1, pre_pairs, rtc, "+", RestrictedEvaluator("c")
        )
        assert declarative == imperative == {(7, 5), (7, 3)}

    def test_star_matches_algorithm2(self, fig1):
        rtc = compute_rtc(eval_rpq(fig1, "b.c"))
        pre_pairs = eval_rpq(fig1, "d")
        post_pairs = eval_rpq(fig1, "c")
        expression = batch_unit_expression(pre_pairs, rtc, post_pairs, "*")
        imperative = eval_batch_unit(
            fig1, pre_pairs, rtc, "*", RestrictedEvaluator("c")
        )
        assert expression.evaluate().to_pairs() == imperative

    def test_epsilon_post_via_identity_relation(self, fig1):
        rtc = compute_rtc(eval_rpq(fig1, "b.c"))
        pre_pairs = eval_rpq(fig1, "d")
        identity = {(v, v) for v in fig1.vertices()}
        expression = batch_unit_expression(pre_pairs, rtc, identity, "+")
        imperative = eval_batch_unit(fig1, pre_pairs, rtc, "+", None)
        assert expression.evaluate().to_pairs() == imperative

    def test_invalid_type(self, fig1):
        rtc = compute_rtc(eval_rpq(fig1, "b.c"))
        with pytest.raises(ValueError):
            batch_unit_expression(set(), rtc, set(), "?")

    @pytest.mark.parametrize("seed", range(4))
    def test_random_cross_validation(self, fig1, seed):
        import random

        rng = random.Random(seed)
        labels = ["a", "b", "c", "d"]
        r = rng.choice(["b.c", "c", "b", "b|c"])
        pre_label = rng.choice(labels)
        post_label = rng.choice(labels)
        rtc = compute_rtc(eval_rpq(fig1, r))
        pre_pairs = eval_rpq(fig1, pre_label)
        post_pairs = eval_rpq(fig1, post_label)
        expression = batch_unit_expression(pre_pairs, rtc, post_pairs, "+")
        imperative = eval_batch_unit(
            fig1, pre_pairs, rtc, "+", RestrictedEvaluator(post_label)
        )
        reference = eval_rpq(fig1, f"{pre_label}.({r})+.{post_label}")
        assert expression.evaluate().to_pairs() == imperative == reference
